//! Campaign metrics, in two senses:
//!
//! * the **evaluation** metrics of the paper's comparative study —
//!   coverage, representativeness (Jensen–Shannon distance to a field
//!   fault profile), and tester effort;
//! * the **operational** metrics of the long-running service —
//!   [`RuntimeSnapshot`] gathers the process-wide cache counters, the
//!   job-queue gauges, and the incremental-store totals into the one
//!   JSON document `GET /v1/metrics` serves.

use crate::cache::CacheStats;
use nfi_sfi::FaultClass;
use nfi_telemetry::{families, prom::PromText, Histogram};
use std::collections::BTreeMap;

/// Job-queue gauges and counters of a serving daemon.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Jobs waiting in the queue right now.
    pub depth: usize,
    /// Concurrent scheduler lanes draining the queue.
    pub lanes: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Jobs accepted since startup.
    pub submitted: u64,
    /// Jobs finished successfully since startup.
    pub completed: u64,
    /// Jobs that ended in an error since startup.
    pub failed: u64,
}

/// Job-journal counters of a serving daemon: how much the crash-safe
/// journal has recorded this run and what its startup replay recovered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records appended since startup.
    pub appended: u64,
    /// Unfinished jobs the startup replay re-enqueued.
    pub recovered_queued: u64,
    /// Finished jobs the startup replay restored.
    pub recovered_finished: u64,
    /// Journal lines the startup replay skipped as corrupt.
    pub corrupt_lines: u64,
    /// Journal compactions performed (startup + threshold-triggered).
    pub compactions: u64,
}

/// Serving-edge rejection counters: requests the daemon turned away
/// before they reached the scheduler (auth, admission control, and
/// slow-client timeouts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeStats {
    /// Requests rejected with `401` (missing or wrong bearer token).
    pub unauthorized: u64,
    /// Requests shed with `429` by the per-client token bucket.
    pub rate_limited: u64,
    /// Submissions shed with `503` because the job queue was full or a
    /// tenant quota was exceeded.
    pub queue_shed: u64,
    /// Connections refused with `503` at the connection cap.
    pub connections_shed: u64,
    /// Connections dropped with `408` for exceeding the per-request
    /// read deadline (slowloris bound).
    pub timeouts: u64,
}

/// Worker-supervision counters: everything the lane watchdog and the
/// retry loop did to keep jobs finishing without a daemon restart.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Worker children retried on a fresh process (crash or timeout).
    pub retries: u64,
    /// Worker children killed by the lane watchdog for exceeding
    /// their execution budget.
    pub watchdog_kills: u64,
    /// Jobs that expired in the queue past their deadline.
    pub deadline_expiries: u64,
    /// Work units that exhausted every retry and finished with a
    /// per-unit failure outcome.
    pub failed_units: u64,
}

/// Remote-worker fleet counters of a serving daemon: registry
/// liveness, protocol traffic, and assignment lifecycle events for the
/// `nfi worker` dispatch tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Registered workers currently live (heartbeating).
    pub workers_live: u64,
    /// Workers marked lost after a heartbeat timeout.
    pub workers_lost: u64,
    /// Successful worker registrations (rejoins included).
    pub registrations: u64,
    /// Accepted heartbeats.
    pub heartbeats: u64,
    /// Accepted assignment polls.
    pub polls: u64,
    /// Assignments created by dispatching lanes.
    pub assignments_dispatched: u64,
    /// Assignments completed by a worker result.
    pub assignments_completed: u64,
    /// Assignment requeues (heartbeat loss, rejoin, failure).
    pub assignments_requeued: u64,
    /// Worker-reported failures and undecodable shard documents.
    pub assignments_failed: u64,
    /// Late duplicate results discarded (first result wins).
    pub duplicate_results: u64,
    /// Requests refused for carrying a stale registration generation.
    pub stale_rejections: u64,
    /// Assignments the dispatching lane executed locally after the
    /// fleet could not (requeue cap exhausted or no live workers).
    pub local_fallbacks: u64,
}

/// Incremental-store totals across every job a daemon has run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreTotals {
    /// Campaign work units planned across all completed jobs.
    pub units: u64,
    /// Units replayed from the on-disk store (fast-path verbatim
    /// replays plus anchor-fallback replays).
    pub replayed: u64,
    /// Units that had to execute (store misses + corrupt lines).
    pub executed: u64,
    /// Of `replayed`, units recovered through the anchor fallback — a
    /// warm edit replaying the previous segment by structural anchor.
    pub anchor_hits: u64,
    /// Units the anchor fallback was consulted for but could not cover
    /// (the changed-function remainder of warm edits).
    pub anchor_misses: u64,
}

impl StoreTotals {
    /// Store hit fraction in `[0, 1]` (0 when nothing ran yet).
    pub fn hit_rate(&self) -> f64 {
        if self.units == 0 {
            0.0
        } else {
            self.replayed as f64 / self.units as f64
        }
    }
}

/// Latency distributions summarized from the process-wide telemetry
/// registry: HTTP request duration (all routes merged), queue wait,
/// and each orchestrator phase — the `latency` section of
/// `/v1/metrics`.
#[derive(Debug, Clone, Default)]
pub struct LatencySummary {
    /// HTTP request duration, every route/status series merged.
    pub http: Histogram,
    /// Accept-to-lane-start queue wait.
    pub queue_wait: Histogram,
    /// Orchestrator phase durations, keyed by phase name, sorted.
    pub phases: Vec<(String, Histogram)>,
}

impl LatencySummary {
    /// Summarizes the current state of the global histogram registry.
    pub fn capture() -> LatencySummary {
        let mut summary = LatencySummary::default();
        let mut phases: BTreeMap<String, Histogram> = BTreeMap::new();
        for series in nfi_telemetry::registry().snapshot() {
            match series.family.as_str() {
                f if f == families::HTTP => summary.http.merge(&series.hist),
                f if f == families::QUEUE_WAIT => summary.queue_wait.merge(&series.hist),
                f if f == families::PHASE => {
                    let phase = series
                        .labels
                        .iter()
                        .find(|(k, _)| k == "phase")
                        .map(|(_, v)| v.clone())
                        .unwrap_or_else(|| "unknown".to_string());
                    phases.entry(phase).or_default().merge(&series.hist);
                }
                _ => {}
            }
        }
        summary.phases = phases.into_iter().collect();
        summary
    }

    fn render_hist(h: &Histogram) -> String {
        format!(
            "{{\"count\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"max_us\":{}}}",
            h.count,
            h.p50_micros(),
            h.p90_micros(),
            h.p99_micros(),
            h.max_micros,
        )
    }

    /// Renders the `latency` section value of the metrics JSON.
    pub fn render_json(&self) -> String {
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|(name, h)| {
                format!(
                    "\"{}\":{}",
                    nfi_telemetry::json::escape(name),
                    Self::render_hist(h)
                )
            })
            .collect();
        format!(
            "{{\"http\":{},\"queue_wait\":{},\"phases\":{{{}}}}}",
            Self::render_hist(&self.http),
            Self::render_hist(&self.queue_wait),
            phases.join(","),
        )
    }
}

/// A point-in-time operational snapshot: cache, store, and queue stats.
#[derive(Debug, Clone, Default)]
pub struct RuntimeSnapshot {
    /// Process-wide mutant-cache counters.
    pub mutant_cache: CacheStats,
    /// Process-wide experiment-cache counters.
    pub experiment_cache: CacheStats,
    /// Process-wide pristine-suite memo counters.
    pub suite_cache: CacheStats,
    /// Process-wide compiled-code cache counters (aggregated across
    /// worker threads).
    pub code_cache: CacheStats,
    /// Job-queue gauges (zeroed outside a daemon).
    pub queue: QueueStats,
    /// Store replay/execute totals (zeroed outside a daemon).
    pub store: StoreTotals,
    /// Job-journal counters (zeroed outside a daemon).
    pub journal: JournalStats,
    /// Serving-edge rejection counters (zeroed outside a daemon).
    pub edge: EdgeStats,
    /// Worker-supervision counters (zeroed outside a daemon).
    pub retry: RetryStats,
    /// Remote-worker fleet counters (zeroed outside a daemon).
    pub fleet: FleetStats,
    /// Latency distributions from the global telemetry registry.
    pub latency: LatencySummary,
}

impl RuntimeSnapshot {
    /// Captures the process-wide cache counters alongside the
    /// caller-tracked queue, store, journal, edge, retry, and fleet
    /// numbers.
    pub fn capture(
        queue: QueueStats,
        store: StoreTotals,
        journal: JournalStats,
        edge: EdgeStats,
        retry: RetryStats,
        fleet: FleetStats,
    ) -> RuntimeSnapshot {
        RuntimeSnapshot {
            mutant_cache: crate::cache::MutantCache::global().stats(),
            experiment_cache: nfi_inject::memo::ExperimentCache::global().stats(),
            suite_cache: nfi_inject::memo::SuiteCache::global().stats(),
            code_cache: nfi_inject::codecache::CodeCache::global().stats(),
            queue,
            store,
            journal,
            edge,
            retry,
            fleet,
            latency: LatencySummary::capture(),
        }
    }

    /// Renders the snapshot as a small stable JSON document.
    pub fn render_json(&self) -> String {
        let cache = |s: &CacheStats| {
            format!(
                "{{\"hits\":{},\"misses\":{},\"hit_rate\":{:.3},\"entries\":{},\"evictions\":{},\"capacity\":{}}}",
                s.hits,
                s.misses,
                s.hit_rate(),
                s.entries,
                s.evictions,
                s.capacity
                    .map_or("null".to_string(), |c| c.to_string()),
            )
        };
        let mut body = format!(
            "{{\"queue\":{{\"depth\":{},\"lanes\":{},\"running\":{},\"submitted\":{},\"completed\":{},\"failed\":{}}},\"store\":{{\"units\":{},\"replayed\":{},\"executed\":{},\"anchor_hits\":{},\"anchor_misses\":{},\"hit_rate\":{:.3}}},\"journal\":{{\"appended\":{},\"recovered_queued\":{},\"recovered_finished\":{},\"corrupt_lines\":{},\"compactions\":{}}},\"edge\":{{\"unauthorized\":{},\"rate_limited\":{},\"queue_shed\":{},\"connections_shed\":{},\"timeouts\":{}}},\"retry\":{{\"retries\":{},\"watchdog_kills\":{},\"deadline_expiries\":{},\"failed_units\":{}}},\"mutant_cache\":{},\"experiment_cache\":{},\"suite_cache\":{},\"code_cache\":{}}}",
            self.queue.depth,
            self.queue.lanes,
            self.queue.running,
            self.queue.submitted,
            self.queue.completed,
            self.queue.failed,
            self.store.units,
            self.store.replayed,
            self.store.executed,
            self.store.anchor_hits,
            self.store.anchor_misses,
            self.store.hit_rate(),
            self.journal.appended,
            self.journal.recovered_queued,
            self.journal.recovered_finished,
            self.journal.corrupt_lines,
            self.journal.compactions,
            self.edge.unauthorized,
            self.edge.rate_limited,
            self.edge.queue_shed,
            self.edge.connections_shed,
            self.edge.timeouts,
            self.retry.retries,
            self.retry.watchdog_kills,
            self.retry.deadline_expiries,
            self.retry.failed_units,
            cache(&self.mutant_cache),
            cache(&self.experiment_cache),
            cache(&self.suite_cache),
            cache(&self.code_cache),
        );
        // The latency and fleet sections ride at the end so every
        // pre-existing section keeps its byte position for substring
        // consumers.
        body.truncate(body.len() - 1);
        body.push_str(",\"latency\":");
        body.push_str(&self.latency.render_json());
        body.push_str(&format!(
            ",\"fleet\":{{\"workers_live\":{},\"workers_lost\":{},\"registrations\":{},\"heartbeats\":{},\"polls\":{},\"assignments_dispatched\":{},\"assignments_completed\":{},\"assignments_requeued\":{},\"assignments_failed\":{},\"duplicate_results\":{},\"stale_rejections\":{},\"local_fallbacks\":{}}}",
            self.fleet.workers_live,
            self.fleet.workers_lost,
            self.fleet.registrations,
            self.fleet.heartbeats,
            self.fleet.polls,
            self.fleet.assignments_dispatched,
            self.fleet.assignments_completed,
            self.fleet.assignments_requeued,
            self.fleet.assignments_failed,
            self.fleet.duplicate_results,
            self.fleet.stale_rejections,
            self.fleet.local_fallbacks,
        ));
        body.push('}');
        body
    }

    /// Renders the snapshot in Prometheus text exposition format —
    /// every `/v1/metrics` counter as a `nfi_*` family, plus the
    /// latency histograms straight from the telemetry registry (per
    /// series, with their route/status/phase labels).
    pub fn render_prometheus(&self) -> String {
        let mut p = PromText::new();
        p.gauge(
            "nfi_queue_depth",
            "Jobs waiting in the queue.",
            &[],
            self.queue.depth as f64,
        );
        p.gauge(
            "nfi_queue_lanes",
            "Concurrent scheduler lanes.",
            &[],
            self.queue.lanes as f64,
        );
        p.gauge(
            "nfi_queue_running",
            "Jobs currently executing.",
            &[],
            self.queue.running as f64,
        );
        p.counter(
            "nfi_jobs_submitted_total",
            "Jobs accepted since startup.",
            &[],
            self.queue.submitted,
        );
        p.counter(
            "nfi_jobs_completed_total",
            "Jobs finished successfully.",
            &[],
            self.queue.completed,
        );
        p.counter(
            "nfi_jobs_failed_total",
            "Jobs that ended in an error.",
            &[],
            self.queue.failed,
        );
        p.counter(
            "nfi_store_units_total",
            "Campaign work units planned.",
            &[],
            self.store.units,
        );
        p.counter(
            "nfi_store_replayed_total",
            "Units replayed from the store.",
            &[],
            self.store.replayed,
        );
        p.counter(
            "nfi_store_executed_total",
            "Units that had to execute.",
            &[],
            self.store.executed,
        );
        p.counter(
            "nfi_store_anchor_hits_total",
            "Units replayed via the anchor fallback.",
            &[],
            self.store.anchor_hits,
        );
        p.counter(
            "nfi_store_anchor_misses_total",
            "Units the anchor fallback could not cover.",
            &[],
            self.store.anchor_misses,
        );
        p.counter(
            "nfi_journal_appended_total",
            "Journal records appended.",
            &[],
            self.journal.appended,
        );
        p.counter(
            "nfi_journal_recovered_queued_total",
            "Unfinished jobs re-enqueued at startup.",
            &[],
            self.journal.recovered_queued,
        );
        p.counter(
            "nfi_journal_recovered_finished_total",
            "Finished jobs restored at startup.",
            &[],
            self.journal.recovered_finished,
        );
        p.counter(
            "nfi_journal_corrupt_lines_total",
            "Journal lines skipped as corrupt.",
            &[],
            self.journal.corrupt_lines,
        );
        p.counter(
            "nfi_journal_compactions_total",
            "Journal compactions performed.",
            &[],
            self.journal.compactions,
        );
        const EDGE_HELP: &str = "Requests rejected at the serving edge, by reason.";
        p.counter(
            "nfi_edge_rejections_total",
            EDGE_HELP,
            &[("reason", "unauthorized")],
            self.edge.unauthorized,
        );
        p.counter(
            "nfi_edge_rejections_total",
            EDGE_HELP,
            &[("reason", "rate_limited")],
            self.edge.rate_limited,
        );
        p.counter(
            "nfi_edge_rejections_total",
            EDGE_HELP,
            &[("reason", "queue_shed")],
            self.edge.queue_shed,
        );
        p.counter(
            "nfi_edge_rejections_total",
            EDGE_HELP,
            &[("reason", "connections_shed")],
            self.edge.connections_shed,
        );
        p.counter(
            "nfi_edge_rejections_total",
            EDGE_HELP,
            &[("reason", "timeout")],
            self.edge.timeouts,
        );
        const WORKER_HELP: &str = "Worker-supervision events, by kind.";
        p.counter(
            "nfi_worker_events_total",
            WORKER_HELP,
            &[("kind", "retry")],
            self.retry.retries,
        );
        p.counter(
            "nfi_worker_events_total",
            WORKER_HELP,
            &[("kind", "watchdog_kill")],
            self.retry.watchdog_kills,
        );
        p.counter(
            "nfi_worker_events_total",
            WORKER_HELP,
            &[("kind", "deadline_expiry")],
            self.retry.deadline_expiries,
        );
        p.counter(
            "nfi_worker_events_total",
            WORKER_HELP,
            &[("kind", "failed_unit")],
            self.retry.failed_units,
        );
        p.gauge(
            "nfi_fleet_workers",
            "Registered remote workers, by liveness state.",
            &[("state", "live")],
            self.fleet.workers_live as f64,
        );
        const FLEET_EVENT_HELP: &str = "Remote-worker fleet protocol events, by kind.";
        p.counter(
            "nfi_fleet_events_total",
            FLEET_EVENT_HELP,
            &[("kind", "registration")],
            self.fleet.registrations,
        );
        p.counter(
            "nfi_fleet_events_total",
            FLEET_EVENT_HELP,
            &[("kind", "heartbeat")],
            self.fleet.heartbeats,
        );
        p.counter(
            "nfi_fleet_events_total",
            FLEET_EVENT_HELP,
            &[("kind", "poll")],
            self.fleet.polls,
        );
        p.counter(
            "nfi_fleet_events_total",
            FLEET_EVENT_HELP,
            &[("kind", "worker_lost")],
            self.fleet.workers_lost,
        );
        p.counter(
            "nfi_fleet_events_total",
            FLEET_EVENT_HELP,
            &[("kind", "stale_rejection")],
            self.fleet.stale_rejections,
        );
        const FLEET_ASSIGN_HELP: &str = "Fleet assignment lifecycle events, by kind.";
        p.counter(
            "nfi_fleet_assignments_total",
            FLEET_ASSIGN_HELP,
            &[("kind", "dispatched")],
            self.fleet.assignments_dispatched,
        );
        p.counter(
            "nfi_fleet_assignments_total",
            FLEET_ASSIGN_HELP,
            &[("kind", "completed")],
            self.fleet.assignments_completed,
        );
        p.counter(
            "nfi_fleet_assignments_total",
            FLEET_ASSIGN_HELP,
            &[("kind", "requeued")],
            self.fleet.assignments_requeued,
        );
        p.counter(
            "nfi_fleet_assignments_total",
            FLEET_ASSIGN_HELP,
            &[("kind", "failed")],
            self.fleet.assignments_failed,
        );
        p.counter(
            "nfi_fleet_assignments_total",
            FLEET_ASSIGN_HELP,
            &[("kind", "duplicate")],
            self.fleet.duplicate_results,
        );
        p.counter(
            "nfi_fleet_assignments_total",
            FLEET_ASSIGN_HELP,
            &[("kind", "local_fallback")],
            self.fleet.local_fallbacks,
        );
        for (name, stats) in [
            ("mutant", &self.mutant_cache),
            ("experiment", &self.experiment_cache),
            ("suite", &self.suite_cache),
            ("code", &self.code_cache),
        ] {
            let labels = [("cache", name)];
            p.counter(
                "nfi_cache_hits_total",
                "Cache hits, by cache.",
                &labels,
                stats.hits,
            );
            p.counter(
                "nfi_cache_misses_total",
                "Cache misses, by cache.",
                &labels,
                stats.misses,
            );
            p.counter(
                "nfi_cache_evictions_total",
                "Cache evictions, by cache.",
                &labels,
                stats.evictions,
            );
            p.gauge(
                "nfi_cache_entries",
                "Resident cache entries, by cache.",
                &labels,
                stats.entries as f64,
            );
        }
        for series in nfi_telemetry::registry().snapshot() {
            let labels: Vec<(&str, &str)> = series
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            let (name, help) = match series.family.as_str() {
                f if f == families::HTTP => (
                    "nfi_http_request_duration_seconds",
                    "HTTP request duration, by route and status class.",
                ),
                f if f == families::QUEUE_WAIT => (
                    "nfi_queue_wait_seconds",
                    "Job wait from accept to lane start.",
                ),
                f if f == families::PHASE => (
                    "nfi_phase_duration_seconds",
                    "Orchestrator phase duration, by phase.",
                ),
                _ => continue,
            };
            p.histogram(name, help, &labels, &series.hist);
        }
        p.finish()
    }
}

/// A synthetic *field fault profile*: the share of each fault class
/// among faults observed in deployed systems.
///
/// The shape follows the software-fault literature the paper builds on
/// (Durães & Madeira's ODC-based field study and the cloud-system
/// studies of the paper's refs 15 and 16): omission-style faults dominate, followed
/// by wrong values and mishandled errors, with concurrency/timing/
/// resource faults in a long tail. Absolute numbers are synthetic —
/// DESIGN.md records this substitution.
pub fn field_profile() -> BTreeMap<FaultClass, f64> {
    let mut m = BTreeMap::new();
    m.insert(FaultClass::Omission, 0.38);
    m.insert(FaultClass::WrongValue, 0.22);
    m.insert(FaultClass::ExceptionHandling, 0.12);
    m.insert(FaultClass::Interface, 0.08);
    m.insert(FaultClass::Concurrency, 0.08);
    m.insert(FaultClass::Timing, 0.05);
    m.insert(FaultClass::ResourceLeak, 0.04);
    m.insert(FaultClass::BufferOverflow, 0.03);
    m
}

/// Normalizes class counts into a distribution over all classes.
pub fn distribution(counts: &BTreeMap<FaultClass, usize>) -> BTreeMap<FaultClass, f64> {
    let total: usize = counts.values().sum();
    let mut m = BTreeMap::new();
    for class in FaultClass::ALL {
        let c = *counts.get(&class).unwrap_or(&0);
        m.insert(
            class,
            if total == 0 {
                0.0
            } else {
                c as f64 / total as f64
            },
        );
    }
    m
}

/// Jensen–Shannon distance (square root of the JS divergence, base-2
/// logarithm) between two class distributions. Bounded in `[0, 1]`.
pub fn js_distance(p: &BTreeMap<FaultClass, f64>, q: &BTreeMap<FaultClass, f64>) -> f64 {
    let kl = |a: &BTreeMap<FaultClass, f64>, b: &BTreeMap<FaultClass, f64>| -> f64 {
        FaultClass::ALL
            .iter()
            .map(|c| {
                let pa = *a.get(c).unwrap_or(&0.0);
                let pb = *b.get(c).unwrap_or(&0.0);
                if pa == 0.0 || pb == 0.0 {
                    0.0
                } else {
                    pa * (pa / pb).log2()
                }
            })
            .sum()
    };
    let mut mix = BTreeMap::new();
    for c in FaultClass::ALL {
        let pa = *p.get(&c).unwrap_or(&0.0);
        let pb = *q.get(&c).unwrap_or(&0.0);
        mix.insert(c, 0.5 * (pa + pb));
    }
    let js = 0.5 * kl(p, &mix) + 0.5 * kl(q, &mix);
    js.max(0.0).sqrt()
}

/// Number of distinct fault classes present in a campaign.
pub fn classes_covered(counts: &BTreeMap<FaultClass, usize>) -> usize {
    counts.values().filter(|c| **c > 0).count()
}

/// The tester-effort model used by experiment E3 (§II-3: "manual effort
/// and expertise requirements").
///
/// *Neural*: the tester writes one NL description and reviews each
/// generated round; selection, configuration, and integration are
/// automated.
///
/// *Conventional*: for each realized fault the tester must pick an
/// operator from the catalogue, inspect candidate sites to choose one
/// (one inspection interaction per `sites_per_screen` candidates), and
/// write a configuration entry; scenarios outside the predefined model
/// cost the full scan and still fail (counted but unrealized).
#[derive(Debug, Clone)]
pub struct EffortModel {
    /// Candidate sites a tester can triage in one interaction.
    pub sites_per_screen: usize,
}

impl Default for EffortModel {
    fn default() -> Self {
        EffortModel {
            sites_per_screen: 10,
        }
    }
}

impl EffortModel {
    /// Interactions for the neural workflow: one description plus one
    /// review per round.
    pub fn neural(&self, rounds: usize) -> usize {
        1 + rounds
    }

    /// Interactions for the conventional workflow on a realizable
    /// scenario: operator choice + site triage + config entry.
    pub fn conventional(&self, candidate_sites: usize) -> usize {
        let triage = candidate_sites.div_ceil(self.sites_per_screen).max(1);
        1 + triage + 1
    }

    /// Interactions wasted on a scenario the predefined model cannot
    /// express (catalogue scan + giving up).
    pub fn conventional_unrealizable(&self, catalogue_size: usize) -> usize {
        self.sites_per_screen.min(catalogue_size).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_profile_sums_to_one() {
        let total: f64 = field_profile().values().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn js_distance_properties() {
        let p = field_profile();
        assert!(js_distance(&p, &p) < 1e-9, "identical distributions");
        let mut q = BTreeMap::new();
        q.insert(FaultClass::BufferOverflow, 1.0);
        let d = js_distance(&p, &q);
        assert!(d > 0.5, "disjoint-ish distributions are far: {d}");
        assert!(d <= 1.0 + 1e-9);
        // Symmetry.
        assert!((js_distance(&p, &q) - js_distance(&q, &p)).abs() < 1e-12);
    }

    #[test]
    fn distribution_normalizes_counts() {
        let mut counts = BTreeMap::new();
        counts.insert(FaultClass::Omission, 3usize);
        counts.insert(FaultClass::Timing, 1usize);
        let d = distribution(&counts);
        assert!((d[&FaultClass::Omission] - 0.75).abs() < 1e-9);
        assert!((d[&FaultClass::Timing] - 0.25).abs() < 1e-9);
        assert_eq!(d[&FaultClass::Concurrency], 0.0);
        assert_eq!(classes_covered(&counts), 2);
    }

    #[test]
    fn effort_model_favors_neural_for_complex_scenarios() {
        let e = EffortModel::default();
        assert_eq!(e.neural(1), 2);
        assert_eq!(e.conventional(25), 1 + 3 + 1);
        assert!(e.conventional(100) > e.neural(3));
        assert!(e.conventional_unrealizable(22) >= 1);
    }

    #[test]
    fn empty_distribution_is_all_zero() {
        let d = distribution(&BTreeMap::new());
        assert!(d.values().all(|v| *v == 0.0));
    }

    #[test]
    fn runtime_snapshot_renders_parseable_sections() {
        let snap = RuntimeSnapshot {
            mutant_cache: CacheStats {
                hits: 3,
                misses: 1,
                entries: 1,
                evictions: 0,
                capacity: Some(64),
            },
            experiment_cache: CacheStats::default(),
            suite_cache: CacheStats {
                hits: 5,
                misses: 1,
                entries: 1,
                evictions: 0,
                capacity: Some(65_536),
            },
            code_cache: CacheStats {
                hits: 8,
                misses: 2,
                entries: 2,
                evictions: 0,
                capacity: Some(4096),
            },
            queue: QueueStats {
                depth: 2,
                lanes: 4,
                running: 1,
                submitted: 7,
                completed: 4,
                failed: 0,
            },
            store: StoreTotals {
                units: 100,
                replayed: 75,
                executed: 25,
                anchor_hits: 30,
                anchor_misses: 10,
            },
            journal: JournalStats {
                appended: 11,
                recovered_queued: 2,
                recovered_finished: 3,
                corrupt_lines: 1,
                compactions: 1,
            },
            edge: EdgeStats {
                unauthorized: 5,
                rate_limited: 9,
                queue_shed: 2,
                connections_shed: 1,
                timeouts: 4,
            },
            retry: RetryStats {
                retries: 6,
                watchdog_kills: 2,
                deadline_expiries: 1,
                failed_units: 3,
            },
            fleet: FleetStats {
                workers_live: 3,
                workers_lost: 1,
                registrations: 4,
                heartbeats: 12,
                polls: 30,
                assignments_dispatched: 8,
                assignments_completed: 7,
                assignments_requeued: 2,
                assignments_failed: 1,
                duplicate_results: 1,
                stale_rejections: 2,
                local_fallbacks: 1,
            },
            latency: {
                let mut l = LatencySummary::default();
                l.http.record_micros(100);
                l.http.record_micros(3_000);
                l.queue_wait.record_micros(40);
                let mut execute = Histogram::new();
                execute.record_micros(2_000_000);
                l.phases = vec![("execute".to_string(), execute)];
                l
            },
        };
        let json = snap.render_json();
        assert!(json.contains("\"depth\":2"));
        assert!(json.contains("\"lanes\":4"));
        assert!(json.contains("\"submitted\":7"));
        assert!(json.contains("\"hit_rate\":0.750"));
        assert!(json.contains("\"anchor_hits\":30,\"anchor_misses\":10"));
        assert!(json.contains("\"capacity\":64"));
        assert!(json.contains("\"capacity\":null"));
        assert!(json.contains("\"journal\":{\"appended\":11"));
        assert!(json.contains("\"recovered_queued\":2"));
        assert!(json.contains("\"edge\":{\"unauthorized\":5,\"rate_limited\":9"));
        assert!(json.contains("\"retry\":{\"retries\":6,\"watchdog_kills\":2"));
        assert!(json.contains("\"code_cache\":{\"hits\":8,\"misses\":2,\"hit_rate\":0.800"));
        assert!(json.contains("\"suite_cache\":{\"hits\":5,\"misses\":1,\"hit_rate\":0.833"));
        assert!(json.contains("\"capacity\":4096"));
        // The latency section rides at the end with per-histogram
        // percentile summaries.
        assert!(json.contains("\"latency\":{\"http\":{\"count\":2"));
        assert!(json.contains("\"queue_wait\":{\"count\":1"));
        assert!(json.contains("\"phases\":{\"execute\":{\"count\":1"));
        assert!(json.contains("\"p99_us\":"));
        // The fleet section follows latency at the tail.
        assert!(json.contains("\"fleet\":{\"workers_live\":3,\"workers_lost\":1"));
        assert!(json.contains("\"assignments_dispatched\":8"));
        assert!(json.contains("\"duplicate_results\":1"));
        assert!(json.contains("\"local_fallbacks\":1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn prometheus_page_carries_every_counter_and_conforms() {
        let mut snap = RuntimeSnapshot {
            queue: QueueStats {
                depth: 1,
                lanes: 2,
                running: 1,
                submitted: 9,
                completed: 7,
                failed: 1,
            },
            store: StoreTotals {
                units: 50,
                replayed: 40,
                executed: 10,
                anchor_hits: 5,
                anchor_misses: 2,
            },
            journal: JournalStats {
                appended: 3,
                ..JournalStats::default()
            },
            edge: EdgeStats {
                unauthorized: 4,
                rate_limited: 2,
                ..EdgeStats::default()
            },
            retry: RetryStats {
                retries: 1,
                ..RetryStats::default()
            },
            fleet: FleetStats {
                workers_live: 2,
                registrations: 3,
                assignments_dispatched: 5,
                assignments_completed: 4,
                ..FleetStats::default()
            },
            ..RuntimeSnapshot::default()
        };
        snap.latency.http.record_micros(250);
        let page = snap.render_prometheus();
        nfi_telemetry::prom::check_conformance(&page)
            .unwrap_or_else(|e| panic!("non-conformant page: {e}\n{page}"));
        // Every JSON counter has a Prometheus family.
        for needle in [
            "nfi_queue_depth 1",
            "nfi_queue_lanes 2",
            "nfi_jobs_submitted_total 9",
            "nfi_jobs_completed_total 7",
            "nfi_jobs_failed_total 1",
            "nfi_store_units_total 50",
            "nfi_store_replayed_total 40",
            "nfi_store_executed_total 10",
            "nfi_store_anchor_hits_total 5",
            "nfi_store_anchor_misses_total 2",
            "nfi_journal_appended_total 3",
            "nfi_edge_rejections_total{reason=\"unauthorized\"} 4",
            "nfi_edge_rejections_total{reason=\"rate_limited\"} 2",
            "nfi_worker_events_total{kind=\"retry\"} 1",
            "nfi_fleet_workers{state=\"live\"} 2",
            "nfi_fleet_events_total{kind=\"registration\"} 3",
            "nfi_fleet_assignments_total{kind=\"dispatched\"} 5",
            "nfi_fleet_assignments_total{kind=\"completed\"} 4",
            "nfi_fleet_assignments_total{kind=\"local_fallback\"} 0",
            "nfi_cache_hits_total{cache=\"mutant\"}",
            "nfi_cache_entries{cache=\"code\"}",
        ] {
            assert!(page.contains(needle), "missing {needle:?} in:\n{page}");
        }
    }

    #[test]
    fn latency_summary_captures_the_global_registry() {
        // Record through the shared registry the way the serving path
        // does, then check both renderers see it.
        nfi_telemetry::registry()
            .histogram(
                nfi_telemetry::families::HTTP,
                &[("route", "/test/latency_summary"), ("status", "2xx")],
            )
            .record_micros(500);
        nfi_telemetry::registry()
            .histogram(nfi_telemetry::families::PHASE, &[("phase", "test_phase")])
            .record_micros(900);
        let summary = LatencySummary::capture();
        assert!(summary.http.count >= 1);
        assert!(summary
            .phases
            .iter()
            .any(|(name, h)| name == "test_phase" && h.count >= 1));
        let page = RuntimeSnapshot::capture(
            QueueStats::default(),
            StoreTotals::default(),
            JournalStats::default(),
            EdgeStats::default(),
            RetryStats::default(),
            FleetStats::default(),
        )
        .render_prometheus();
        nfi_telemetry::prom::check_conformance(&page).expect("captured page conforms");
        assert!(page.contains("nfi_http_request_duration_seconds_bucket{route=\"/test/latency_summary\",status=\"2xx\",le="));
        assert!(page.contains("nfi_phase_duration_seconds_count{phase=\"test_phase\"}"));
    }

    #[test]
    fn capture_reads_the_global_caches() {
        let snap = RuntimeSnapshot::capture(
            QueueStats::default(),
            StoreTotals::default(),
            JournalStats::default(),
            EdgeStats::default(),
            RetryStats::default(),
            FleetStats::default(),
        );
        assert_eq!(snap.queue, QueueStats::default());
        assert!(
            snap.mutant_cache.capacity.is_some(),
            "global cache is bounded"
        );
    }
}
