//! The content-addressed mutant cache.
//!
//! Applying a fault plan is deterministic: the same operator at the
//! same site of the same module always yields the same mutant. Yet the
//! seed-state drivers re-applied identical mutants from scratch on
//! every run — each E-driver rerun, each sequential-vs-parallel bench
//! pair, each shard re-patching what a sibling already patched.
//!
//! [`MutantCache`] memoizes [`nfi_sfi::apply_plan`] behind
//! `Arc<InjectedFault>` keyed by **(module fingerprint, plan hash)**:
//!
//! * the module fingerprint ([`nfi_pylite::fingerprint`]) addresses the
//!   *content* being mutated, so two campaigns over equal sources share
//!   entries while a one-line edit invalidates them;
//! * the plan hash ([`nfi_sfi::plan_hash`]) addresses the mutation
//!   itself (operator key + site), independent of which process or
//!   shard enumerated it.
//!
//! A hit hands back the same `Arc` the miss created — no re-patching,
//! no AST clone — which is what lets repeated campaign runs scale with
//! the cost of the *experiments* instead of the mutations.

use nfi_inject::memo::Memo;
use nfi_pylite::Module;
use nfi_sfi::{apply_plan, plan_hash, FaultPlan, InjectedFault};
use std::sync::{Arc, OnceLock};

pub use nfi_inject::codecache::{CodeCache, CODE_CACHE_CAPACITY};
pub use nfi_inject::memo::{CacheStats, SuiteCache, DEFAULT_CACHE_CAPACITY};

/// A memoized mutant: the applied fault plus the mutated module's own
/// fingerprint, computed once at miss time so warm hits never re-print
/// the AST to re-derive it (it doubles as the experiment-cache key).
#[derive(Debug, Clone)]
pub struct CachedMutant {
    /// The applied fault (module, site, provenance) behind a shared
    /// pointer — hits hand back the same allocation the miss created.
    pub fault: Arc<InjectedFault>,
    /// Fingerprint of `fault.module`.
    pub module_fp: u64,
}

/// Content-addressed memo table for applied mutants, keyed by
/// (module fingerprint, plan hash). `None` entries record stale plans
/// whose site vanished — staleness is memoized too.
pub struct MutantCache {
    memo: Memo<(u64, u64), Option<CachedMutant>>,
}

impl MutantCache {
    /// An empty unbounded cache (tests; the shared one is
    /// [`MutantCache::global`]).
    pub fn new() -> MutantCache {
        MutantCache { memo: Memo::new() }
    }

    /// An empty cache holding at most `capacity` mutants, evicting
    /// least-recently-used beyond it.
    pub fn bounded(capacity: usize) -> MutantCache {
        MutantCache {
            memo: Memo::bounded(capacity),
        }
    }

    /// The process-wide cache the execution engine and campaign service
    /// share — bounded at [`DEFAULT_CACHE_CAPACITY`] entries so
    /// long-lived campaign streams cannot grow it past memory (far
    /// above what the corpus benches populate, so hit rates are
    /// unchanged; evictions surface in [`CacheStats::evictions`]).
    pub fn global() -> &'static MutantCache {
        static GLOBAL: OnceLock<MutantCache> = OnceLock::new();
        GLOBAL.get_or_init(|| MutantCache::bounded(DEFAULT_CACHE_CAPACITY))
    }

    /// Applies (or replays) `plan` against `module`, whose fingerprint
    /// the caller computed once for the whole campaign.
    pub fn apply(&self, module: &Module, module_fp: u64, plan: &FaultPlan) -> Option<CachedMutant> {
        self.memo
            .get_or_insert_with((module_fp, plan_hash(plan)), || {
                apply_plan(module, plan).map(|fault| CachedMutant {
                    module_fp: nfi_pylite::fingerprint(&fault.module),
                    fault: Arc::new(fault),
                })
            })
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.memo.stats()
    }

    /// Drops every entry and zeroes the counters (cold-start benches).
    pub fn clear(&self) {
        self.memo.clear();
    }
}

impl Default for MutantCache {
    fn default() -> Self {
        MutantCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfi_pylite::{fingerprint, parse};
    use nfi_sfi::Campaign;

    fn module() -> Module {
        parse("def f(x):\n    log(x)\n    return x + 1\ndef test_f():\n    assert f(1) == 2\n")
            .unwrap()
    }

    #[test]
    fn hit_returns_the_same_mutant_arc() {
        let m = module();
        let fp = fingerprint(&m);
        let campaign = Campaign::full(&m);
        let cache = MutantCache::new();
        let plan = &campaign.plans()[0];
        let a = cache.apply(&m, fp, plan).expect("applies");
        let b = cache.apply(&m, fp, plan).expect("applies");
        assert!(Arc::ptr_eq(&a.fault, &b.fault), "hit must not re-patch");
        assert_eq!(a.module_fp, nfi_pylite::fingerprint(&a.fault.module));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn cached_mutants_equal_direct_application() {
        let m = module();
        let fp = fingerprint(&m);
        let campaign = Campaign::full(&m);
        let cache = MutantCache::new();
        for plan in campaign.plans() {
            let cached = cache.apply(&m, fp, plan).expect("applies");
            let direct = campaign.apply(plan).expect("applies");
            assert_eq!(
                nfi_pylite::print_module(&cached.fault.module),
                nfi_pylite::print_module(&direct.module)
            );
            assert_eq!(cached.fault.description, direct.description);
        }
    }

    #[test]
    fn distinct_modules_do_not_share_entries() {
        let a = module();
        let b =
            parse("def f(x):\n    log(x)\n    return x + 2\ndef test_f():\n    assert f(1) == 3\n")
                .unwrap();
        let campaign = Campaign::full(&a);
        let plan = &campaign.plans()[0];
        let cache = MutantCache::new();
        cache.apply(&a, fingerprint(&a), plan);
        cache.apply(&b, fingerprint(&b), plan);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn bounded_cache_evicts_but_stays_correct() {
        let m = module();
        let fp = fingerprint(&m);
        let campaign = Campaign::full(&m);
        let plans = campaign.plans();
        assert!(plans.len() > 2, "corpus module should enumerate > 2 plans");
        let cache = MutantCache::bounded(2);
        for plan in plans {
            cache.apply(&m, fp, plan);
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.capacity, Some(2));
        assert_eq!(stats.evictions as usize, plans.len() - 2);
        // Evicted entries recompute to the same mutant.
        let direct = campaign.apply(&plans[0]).expect("applies");
        let replay = cache.apply(&m, fp, &plans[0]).expect("applies");
        assert_eq!(
            nfi_pylite::print_module(&replay.fault.module),
            nfi_pylite::print_module(&direct.module)
        );
    }
}
