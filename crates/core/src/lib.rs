//! # nfi-core — the end-to-end Neural Fault Injection pipeline
//!
//! Wires the whole Fig. 1 workflow of the paper together:
//!
//! ```text
//! fault definition (NL + code)
//!   └─▶ NLP engine (nfi-nlp)        — structured FaultSpec
//!        └─▶ LLM (nfi-llm)          — candidate faulty code, policy-sampled
//!             └─▶ RLHF (nfi-rlhf)   — tester review loop refines spec + policy
//!                  └─▶ integration & testing (nfi-inject)
//!                       └─▶ failure-mode report
//! ```
//!
//! * [`pipeline::NeuralFaultInjector`] — one-shot injection: description
//!   in, [`pipeline::InjectionReport`] out, with per-stage timings.
//! * [`session`] — the iterative tester-in-the-loop session of the
//!   running example (§III-A).
//! * [`metrics`] — campaign metrics for the evaluation: coverage,
//!   representativeness (Jensen–Shannon distance to a field fault
//!   profile), and the tester-effort model.
//!
//! ```
//! use nfi_core::pipeline::{NeuralFaultInjector, PipelineConfig};
//!
//! let source = "def process_transaction(details):\n    return True\n\
//!                def test_ok():\n    assert process_transaction({})\n";
//! let mut injector = NeuralFaultInjector::new(PipelineConfig::default());
//! let report = injector.inject(
//!     "Simulate a database timeout causing an unhandled exception in \
//!      the process transaction function.",
//!     source,
//! )?;
//! assert!(report.fault.snippet.contains("TimeoutError"));
//! # Ok::<(), nfi_core::pipeline::PipelineError>(())
//! ```

pub mod cache;
pub mod exec;
pub mod metrics;
pub mod pipeline;
pub mod service;
pub mod session;
pub mod store;

pub use cache::{CacheStats, CachedMutant, MutantCache};
pub use exec::{CampaignRun, CampaignRunReport, ExecConfig};
pub use metrics::{
    field_profile, js_distance, EdgeStats, EffortModel, FleetStats, JournalStats, QueueStats,
    RetryStats, RuntimeSnapshot, StoreTotals,
};
pub use pipeline::{InjectionReport, NeuralFaultInjector, PipelineConfig, PipelineError};
pub use service::{
    exec_spec, exec_units, merge, plan_campaign, DispatchTier, ShardOutcome, ShardRun,
};
pub use session::{run_session, SessionResult, SessionRound};
pub use store::{
    CampaignStore, GcReport, IncrementalRun, LoadedSegment, Orchestrator, SegmentGuard,
    SegmentInfo, SegmentLocks,
};
