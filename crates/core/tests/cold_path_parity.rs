//! Differential parity of the cold-path optimizations.
//!
//! The compiled-code cache and the VM hot-loop overhaul (global slot
//! resolution, scratch runnable buffer, machine reuse) are pure
//! performance changes: campaign documents and per-seed run outcomes
//! must not change by a single byte. These tests pin that contract
//! against the compile-per-run reference path across the whole seed
//! corpus.

use nfi_core::exec::ExecConfig;
use nfi_core::service::{exec_spec, plan_campaign};
use nfi_pylite::{fingerprint, Machine, MachineConfig};
use std::rc::Rc;

/// Every corpus program's campaign document must be byte-identical
/// between cached-code execution (compile once through the process-wide
/// `CodeCache`, reused machine) and the compile-per-run reference
/// (fresh machine and fresh compile for every test of every unit).
///
/// Units are sampled with a fixed stride so the test stays fast while
/// still covering every program and a spread of operators; the document
/// header, outcome lines, and aggregate report line are all compared.
#[test]
fn cached_campaign_documents_match_compile_per_run_across_corpus() {
    let machine = MachineConfig::default();
    for program in nfi_corpus::all() {
        let mut spec =
            plan_campaign(program.name, program.source, machine.seed).expect("plannable corpus");
        // Keep every ~6th unit (at least 4 per program): full campaigns
        // across 12 programs would dominate the suite's wall time.
        let stride = (spec.units.len() / 4).clamp(1, 6);
        spec.units = spec.units.into_iter().step_by(stride).collect();

        let cached = exec_spec(&spec, &machine, ExecConfig::sequential().cached(true))
            .expect("cached execution");
        let reference = exec_spec(&spec, &machine, ExecConfig::sequential().cached(false))
            .expect("reference execution");
        assert_eq!(
            cached.encode(),
            reference.encode(),
            "campaign document for `{}` changed under cached-code execution",
            program.name
        );
    }
}

/// The scheduler's scratch-buffer reuse and `Machine::reset` must
/// preserve seed → interleaving exactly: for every scheduler seed, a
/// reused machine (reset between runs) produces the same `RunOutcome`
/// as a fresh machine, across every corpus program.
#[test]
fn reused_machine_preserves_per_seed_outcomes_across_corpus() {
    let mut reused = Machine::new(MachineConfig::default());
    for program in nfi_corpus::all() {
        let module = program.module().expect("corpus parses");
        let code = nfi_core::cache::CodeCache::global()
            .compile(&module, fingerprint(&module))
            .expect("corpus compiles");
        for seed in 0..8u64 {
            let config = MachineConfig {
                seed,
                ..MachineConfig::default()
            };
            let mut fresh = Machine::new(config.clone());
            let fresh_out = fresh.run_module(&module).expect("corpus compiles");
            reused.reset(config);
            let reused_out = reused.run_code(Rc::clone(&code));
            assert_eq!(
                format!("{fresh_out:?}"),
                format!("{reused_out:?}"),
                "seed {seed} outcome diverged on `{}`",
                program.name
            );
        }
    }
}
