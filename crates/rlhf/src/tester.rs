//! The simulated tester: a deterministic oracle standing in for the
//! human in the RLHF loop.
//!
//! A [`TargetProfile`] encodes what the (hidden) tester actually wants
//! from generated faults. Ratings, acceptance, critiques, and preference
//! pairs are all derived from how well a candidate satisfies the
//! profile, plus a small seeded noise term — reproducible human feedback
//! for experiments E1/E8.

use crate::feedback::{Feedback, PreferencePair};
use nfi_llm::{Candidate, GeneratedFault};
use nfi_sfi::FaultClass;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;

/// The tester's hidden preferences.
#[derive(Debug, Clone, Default)]
pub struct TargetProfile {
    /// Faults should include a retry/recovery path.
    pub wants_retry: bool,
    /// Handlers should log the failure.
    pub wants_logging: bool,
    /// The exception should escape (crash-style testing).
    pub prefers_propagate: bool,
    /// Faults should fire intermittently.
    pub wants_intermittent: bool,
    /// A specific exception kind is expected.
    pub wants_exception_kind: Option<String>,
    /// A specific fault class is expected.
    pub wants_class: Option<FaultClass>,
    /// Requested retry attempts (with `wants_retry`).
    pub retry_attempts: Option<u32>,
}

impl TargetProfile {
    /// The running-example profile: the tester wants a retry mechanism
    /// rather than log-and-continue.
    pub fn wants_retry() -> Self {
        TargetProfile {
            wants_retry: true,
            ..TargetProfile::default()
        }
    }

    /// A crash-oriented profile: exceptions must propagate.
    pub fn wants_crashes() -> Self {
        TargetProfile {
            prefers_propagate: true,
            ..TargetProfile::default()
        }
    }
}

/// The simulated tester.
pub struct SimulatedTester {
    profile: TargetProfile,
    rng: RefCell<StdRng>,
    /// Noise amplitude on ratings (0 = fully deterministic).
    pub noise: f32,
}

impl SimulatedTester {
    /// Creates a tester with the given hidden profile and seed.
    pub fn new(profile: TargetProfile, seed: u64) -> Self {
        SimulatedTester {
            profile,
            rng: RefCell::new(StdRng::seed_from_u64(seed)),
            noise: 0.25,
        }
    }

    /// The hidden profile (visible to experiment code, never to the
    /// generator).
    pub fn profile(&self) -> &TargetProfile {
        &self.profile
    }

    fn satisfaction(&self, c: &CandidateView<'_>) -> f32 {
        let p = &self.profile;
        let mut score = 3.0f32;
        if p.wants_retry {
            score += if c.has_retry { 1.0 } else { -1.0 };
        }
        if p.wants_logging {
            score += if c.logs { 0.5 } else { -0.5 };
        }
        if p.prefers_propagate {
            score += if c.effect_crash { 0.9 } else { -0.9 };
        }
        if p.wants_intermittent {
            score += if c.probabilistic { 0.8 } else { -0.8 };
        }
        if let Some(kind) = &p.wants_exception_kind {
            score += if c.exception_kind == kind.as_str() {
                0.7
            } else {
                -0.7
            };
        }
        if let Some(class) = p.wants_class {
            score += if c.class == class { 0.7 } else { -0.7 };
        }
        // Spec fidelity matters to every tester.
        score += 0.5 * c.spec_class_match;
        score += 0.3 * c.trigger_honored;
        score
    }

    fn noisy(&self, score: f32) -> f32 {
        let n: f32 = self.rng.borrow_mut().gen_range(-1.0..1.0) * self.noise;
        (score + n).clamp(1.0, 5.0)
    }

    /// Rates a generated fault and produces a critique when unsatisfied.
    pub fn review(&self, fault: &GeneratedFault) -> Feedback {
        let view = CandidateView::from_fault(fault);
        let rating = self.noisy(self.satisfaction(&view));
        let critique = if rating >= 4.0 {
            None
        } else {
            Some(self.critique(&view))
        };
        Feedback::from_rating(rating, critique)
    }

    /// Rates a raw candidate (used during batch policy training).
    pub fn rate_candidate(&self, c: &Candidate, spec_class_match: f32) -> f32 {
        let view = CandidateView::from_candidate(c, spec_class_match);
        self.noisy(self.satisfaction(&view))
    }

    /// Builds a preference pair between two candidates (winner first);
    /// returns `None` when the tester has no real preference.
    pub fn prefer(
        &self,
        a: &Candidate,
        a_match: f32,
        b: &Candidate,
        b_match: f32,
    ) -> Option<PreferencePair> {
        let ra = self.rate_candidate(a, a_match);
        let rb = self.rate_candidate(b, b_match);
        let margin = (ra - rb).abs();
        if margin < 0.2 {
            return None;
        }
        let (w, l) = if ra > rb { (a, b) } else { (b, a) };
        Some(PreferencePair {
            winner: w.features.clone(),
            loser: l.features.clone(),
            margin,
        })
    }

    /// Emits a natural-language critique for the most pressing
    /// unsatisfied preference, phrased like a human note (parseable by
    /// `nfi_nlp::parse_critique`).
    fn critique(&self, c: &CandidateView<'_>) -> String {
        let p = &self.profile;
        let mut rng = self.rng.borrow_mut();
        if p.wants_retry && !c.has_retry {
            let n = p.retry_attempts.unwrap_or(3);
            let options = [
                "introduce a retry mechanism instead of just logging the error".to_string(),
                format!("add a retry path, retry {n} times before giving up"),
                "the handler should try again rather than only log".to_string(),
            ];
            return options[rng.gen_range(0..options.len())].clone();
        }
        if p.prefers_propagate && !c.effect_crash {
            let options = [
                "let the exception propagate to the caller",
                "do not catch it here, the error should bubble up",
            ];
            return options[rng.gen_range(0..options.len())].to_string();
        }
        if p.wants_intermittent && !c.probabilistic {
            return "make it intermittent, around 50% of requests".to_string();
        }
        if let Some(kind) = &p.wants_exception_kind {
            if c.exception_kind != kind.as_str() {
                return format!("raise a {kind} instead");
            }
        }
        if p.wants_logging && !c.logs {
            return "log the error where it is handled".to_string();
        }
        "this does not quite match the scenario I described".to_string()
    }
}

/// Uniform view over faults/candidates for rating.
struct CandidateView<'a> {
    has_retry: bool,
    logs: bool,
    effect_crash: bool,
    probabilistic: bool,
    exception_kind: &'a str,
    class: FaultClass,
    spec_class_match: f32,
    trigger_honored: f32,
}

impl<'a> CandidateView<'a> {
    fn from_fault(f: &'a GeneratedFault) -> Self {
        CandidateView {
            has_retry: f.params.retries.map(|r| r > 0).unwrap_or(false)
                && f.pattern.contains("retry"),
            logs: f.params.logs,
            effect_crash: f.features.get(7).copied().unwrap_or(0.0) > 0.5,
            probabilistic: f.params.probability.is_some(),
            exception_kind: &f.params.exception_kind,
            class: f.class,
            spec_class_match: f.features.first().copied().unwrap_or(0.0),
            trigger_honored: f.features.get(9).copied().unwrap_or(0.0),
        }
    }

    fn from_candidate(c: &'a Candidate, spec_class_match: f32) -> Self {
        CandidateView {
            has_retry: c.params.retries.map(|r| r > 0).unwrap_or(false)
                && c.pattern.contains("retry"),
            logs: c.params.logs,
            effect_crash: c.effect_crash,
            probabilistic: c.params.probability.is_some(),
            exception_kind: &c.params.exception_kind,
            class: c.class,
            spec_class_match,
            trigger_honored: c.trigger_honored,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfi_llm::{FaultLlm, LlmConfig};

    fn scenario() -> (nfi_nlp::FaultSpec, nfi_pylite::Module) {
        let m = nfi_pylite::parse("def handle(req):\n    return 1\n").unwrap();
        let spec = nfi_nlp::analyze(
            "simulate a timeout causing an unhandled exception in handle",
            Some(&m),
        );
        (spec, m)
    }

    #[test]
    fn retry_profile_prefers_retry_candidates() {
        let (spec, m) = scenario();
        let llm = FaultLlm::untrained(LlmConfig::default());
        let cands = llm.candidates(&spec, &m);
        let retry = cands
            .iter()
            .find(|c| c.pattern == "raise_with_retry")
            .unwrap();
        let plain = cands
            .iter()
            .find(|c| c.pattern == "raise_unhandled")
            .unwrap();
        let mut tester = SimulatedTester::new(TargetProfile::wants_retry(), 3);
        tester.noise = 0.0;
        assert!(tester.rate_candidate(retry, 1.0) > tester.rate_candidate(plain, 1.0));
    }

    #[test]
    fn crash_profile_prefers_unhandled() {
        let (spec, m) = scenario();
        let llm = FaultLlm::untrained(LlmConfig::default());
        let cands = llm.candidates(&spec, &m);
        let retry = cands
            .iter()
            .find(|c| c.pattern == "raise_with_retry")
            .unwrap();
        let plain = cands
            .iter()
            .find(|c| c.pattern == "raise_unhandled")
            .unwrap();
        let mut tester = SimulatedTester::new(TargetProfile::wants_crashes(), 3);
        tester.noise = 0.0;
        assert!(tester.rate_candidate(plain, 1.0) > tester.rate_candidate(retry, 1.0));
    }

    #[test]
    fn critique_for_missing_retry_is_parseable() {
        let (spec, m) = scenario();
        let mut llm = FaultLlm::untrained(LlmConfig::default());
        let mut tester = SimulatedTester::new(TargetProfile::wants_retry(), 3);
        tester.noise = 0.0;
        // Force review of a non-retry generation.
        let fault = loop {
            let f = llm.generate(&spec, &m).unwrap();
            if !f.pattern.contains("retry") {
                break f;
            }
        };
        let feedback = tester.review(&fault);
        assert!(!feedback.accepted);
        let critique = feedback.critique.expect("critique present");
        let intents = nfi_nlp::parse_critique(&critique);
        assert!(
            intents
                .iter()
                .any(|i| matches!(i, nfi_nlp::CritiqueIntent::AddRetry { .. })),
            "critique {critique:?} parsed to {intents:?}"
        );
    }

    #[test]
    fn preference_pairs_have_consistent_winner() {
        let (spec, m) = scenario();
        let llm = FaultLlm::untrained(LlmConfig::default());
        let cands = llm.candidates(&spec, &m);
        let retry = cands
            .iter()
            .find(|c| c.pattern == "raise_with_retry")
            .unwrap();
        let plain = cands
            .iter()
            .find(|c| c.pattern == "raise_unhandled")
            .unwrap();
        let mut tester = SimulatedTester::new(TargetProfile::wants_retry(), 3);
        tester.noise = 0.0;
        let pair = tester
            .prefer(plain, 1.0, retry, 1.0)
            .expect("clear preference");
        assert_eq!(pair.winner, retry.features);
        assert_eq!(pair.loser, plain.features);
        assert!(pair.margin > 0.0);
    }

    #[test]
    fn ratings_are_reproducible_per_seed() {
        let (spec, m) = scenario();
        let llm = FaultLlm::untrained(LlmConfig::default());
        let cands = llm.candidates(&spec, &m);
        let rate = |seed| {
            let tester = SimulatedTester::new(TargetProfile::wants_retry(), seed);
            tester.rate_candidate(&cands[0], 1.0)
        };
        assert_eq!(rate(9), rate(9));
    }
}
