//! The Bradley–Terry reward model.
//!
//! An MLP `r(features) -> scalar` trained on preference pairs with the
//! pairwise logistic loss `-ln σ(r(winner) − r(loser))` — the standard
//! reward-model objective from the RLHF literature (Ouyang et al. 2022),
//! shrunk to candidate-feature scale.

use crate::feedback::PreferencePair;
use nfi_llm::FEATURE_DIM;
use nfi_neural::mlp::{Activation, Mlp, MlpAdam};
use nfi_neural::sigmoid;

/// The learned reward model.
pub struct RewardModel {
    net: Mlp,
    opt: MlpAdam,
}

impl RewardModel {
    /// Creates an untrained reward model.
    pub fn new(seed: u64) -> Self {
        let net = Mlp::new(&[FEATURE_DIM, 16, 1], Activation::Tanh, seed);
        let opt = MlpAdam::new(&net, 0.01);
        RewardModel { net, opt }
    }

    /// Predicted reward for a candidate feature vector.
    pub fn predict(&self, features: &[f32]) -> f32 {
        self.net.scalar(features)
    }

    /// Trains on preference pairs for the given number of epochs;
    /// returns the average pairwise loss of the final epoch.
    pub fn train(&mut self, pairs: &[PreferencePair], epochs: usize) -> f32 {
        let mut last = 0.0;
        for _ in 0..epochs {
            last = self.train_epoch(pairs);
        }
        last
    }

    fn train_epoch(&mut self, pairs: &[PreferencePair]) -> f32 {
        if pairs.is_empty() {
            return 0.0;
        }
        let mut total = 0.0f32;
        for pair in pairs {
            let rw = self.net.scalar(&pair.winner);
            let rl = self.net.scalar(&pair.loser);
            let p = sigmoid(rw - rl);
            total += -(p.max(1e-7)).ln();
            // dL/drw = -(1-p), dL/drl = (1-p)
            let g = 1.0 - p;
            let gw = self.net.backward(&pair.winner, &[-g]);
            let gl = self.net.backward(&pair.loser, &[g]);
            let mut acc = self.net.zero_gradients();
            Mlp::accumulate(&mut acc, &gw);
            Mlp::accumulate(&mut acc, &gl);
            self.net.apply_adam(&acc, &mut self.opt);
        }
        total / pairs.len() as f32
    }

    /// Accuracy on held-out pairs (fraction where the winner scores
    /// higher).
    pub fn accuracy(&self, pairs: &[PreferencePair]) -> f32 {
        if pairs.is_empty() {
            return 0.0;
        }
        let correct = pairs
            .iter()
            .filter(|p| self.predict(&p.winner) > self.predict(&p.loser))
            .count();
        correct as f32 / pairs.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pairs where feature 5 (retry) decides the preference.
    fn retry_pairs(n: usize) -> Vec<PreferencePair> {
        (0..n)
            .map(|i| {
                let mut winner = vec![0.0; FEATURE_DIM];
                let mut loser = vec![0.0; FEATURE_DIM];
                winner[5] = 1.0;
                winner[11] = 1.0;
                loser[11] = 1.0;
                // Distractor feature varies but carries no signal.
                winner[6] = (i % 2) as f32;
                loser[6] = ((i + 1) % 2) as f32;
                PreferencePair {
                    winner,
                    loser,
                    margin: 1.0,
                }
            })
            .collect()
    }

    #[test]
    fn learns_the_deciding_feature() {
        let mut rm = RewardModel::new(4);
        let pairs = retry_pairs(24);
        let before = rm.accuracy(&pairs);
        rm.train(&pairs, 30);
        let after = rm.accuracy(&pairs);
        assert_eq!(after, 1.0, "accuracy {before} -> {after}");
        let mut with_retry = vec![0.0; FEATURE_DIM];
        with_retry[5] = 1.0;
        with_retry[11] = 1.0;
        let mut without = vec![0.0; FEATURE_DIM];
        without[11] = 1.0;
        assert!(rm.predict(&with_retry) > rm.predict(&without));
    }

    #[test]
    fn training_loss_decreases() {
        let mut rm = RewardModel::new(4);
        let pairs = retry_pairs(24);
        let first = rm.train(&pairs, 1);
        let last = rm.train(&pairs, 30);
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn empty_pairs_are_safe() {
        let mut rm = RewardModel::new(1);
        assert_eq!(rm.train(&[], 5), 0.0);
        assert_eq!(rm.accuracy(&[]), 0.0);
    }
}
