//! Feedback data types exchanged between testers and the trainer.

/// One piece of tester feedback on a generated fault.
#[derive(Debug, Clone, PartialEq)]
pub struct Feedback {
    /// Rating on a 1–5 scale.
    pub rating: f32,
    /// Whether the tester accepts the fault as-is.
    pub accepted: bool,
    /// Natural-language critique when not fully satisfied.
    pub critique: Option<String>,
}

impl Feedback {
    /// Creates feedback, clamping the rating into `[1, 5]` and deriving
    /// acceptance from the 4.0 threshold.
    pub fn from_rating(rating: f32, critique: Option<String>) -> Self {
        let rating = rating.clamp(1.0, 5.0);
        Feedback {
            rating,
            accepted: rating >= 4.0,
            critique,
        }
    }
}

/// A pairwise preference between two candidates' feature vectors
/// (Bradley–Terry training datum).
#[derive(Debug, Clone, PartialEq)]
pub struct PreferencePair {
    /// Features of the preferred candidate.
    pub winner: Vec<f32>,
    /// Features of the rejected candidate.
    pub loser: Vec<f32>,
    /// Rating margin between the two (for weighting / diagnostics).
    pub margin: f32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rating_is_clamped_and_acceptance_thresholded() {
        let f = Feedback::from_rating(7.0, None);
        assert_eq!(f.rating, 5.0);
        assert!(f.accepted);
        let f = Feedback::from_rating(3.9, Some("needs retry".into()));
        assert!(!f.accepted);
        assert_eq!(f.critique.as_deref(), Some("needs retry"));
        let f = Feedback::from_rating(-3.0, None);
        assert_eq!(f.rating, 1.0);
    }
}
