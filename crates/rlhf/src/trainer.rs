//! The RLHF training loop: generate → feedback → reward model →
//! policy-gradient update.
//!
//! Each iteration sweeps all scenarios: the policy samples a candidate
//! per scenario, the simulated tester rates it and contributes
//! preference pairs, the reward model refits, and the policy takes a
//! REINFORCE step with the *reward model's* score (not the raw rating)
//! as the signal — matching the two-stage structure of RLHF.

use crate::feedback::PreferencePair;
use crate::reward::RewardModel;
use crate::tester::SimulatedTester;
use nfi_llm::FaultLlm;
use nfi_nlp::FaultSpec;
use nfi_pylite::Module;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which policy-gradient estimator the trainer uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyOptimizer {
    /// Vanilla REINFORCE with a reward-model baseline.
    Reinforce,
    /// PPO-style single-sample clipped surrogate with the given epsilon.
    PpoClip {
        /// Trust-region half-width.
        epsilon: f32,
    },
}

/// Configuration for [`RlhfTrainer`].
#[derive(Debug, Clone)]
pub struct RlhfConfig {
    /// Number of feedback iterations.
    pub iterations: usize,
    /// Policy-gradient estimator.
    pub optimizer: PolicyOptimizer,
    /// Policy-gradient learning rate.
    pub policy_lr: f32,
    /// Reward-model epochs per iteration.
    pub reward_epochs: usize,
    /// Trainer seed (sampling / pair selection).
    pub seed: u64,
    /// Maximum retained preference pairs (sliding window).
    pub max_pairs: usize,
}

impl Default for RlhfConfig {
    fn default() -> Self {
        RlhfConfig {
            iterations: 10,
            optimizer: PolicyOptimizer::Reinforce,
            policy_lr: 0.15,
            reward_epochs: 5,
            seed: 0x5EED,
            max_pairs: 512,
        }
    }
}

/// Alignment statistics for one iteration (one row of experiment E1).
#[derive(Debug, Clone, PartialEq)]
pub struct IterationStats {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Mean tester rating over scenarios.
    pub mean_rating: f64,
    /// Fraction of generations accepted (rating ≥ 4).
    pub acceptance: f64,
    /// Mean reward-model score of chosen candidates.
    pub mean_reward: f64,
    /// Reward-model accuracy on this iteration's preference pairs.
    pub reward_accuracy: f64,
}

/// The RLHF training driver.
pub struct RlhfTrainer {
    config: RlhfConfig,
    reward: RewardModel,
    pairs: Vec<PreferencePair>,
    rng: StdRng,
}

impl RlhfTrainer {
    /// Creates a trainer.
    pub fn new(config: RlhfConfig) -> Self {
        let reward = RewardModel::new(config.seed ^ 0x7EA5);
        let rng = StdRng::seed_from_u64(config.seed);
        RlhfTrainer {
            config,
            reward,
            pairs: Vec::new(),
            rng,
        }
    }

    /// The trained reward model.
    pub fn reward_model(&self) -> &RewardModel {
        &self.reward
    }

    /// Runs the loop over scenarios, mutating the model's policy.
    /// Returns per-iteration alignment statistics.
    pub fn run(
        &mut self,
        llm: &mut FaultLlm,
        scenarios: &[(FaultSpec, Module)],
        tester: &SimulatedTester,
    ) -> Vec<IterationStats> {
        let mut stats = Vec::new();
        for iteration in 0..self.config.iterations {
            let mut ratings = Vec::new();
            let mut rewards = Vec::new();
            let mut accepted = 0usize;
            let mut updates: Vec<(Vec<nfi_llm::Candidate>, usize, f32)> = Vec::new();

            for (spec, module) in scenarios {
                let cands = llm.candidates(spec, module);
                if cands.is_empty() {
                    continue;
                }
                let uniform: f32 = self.rng.gen();
                let (chosen_idx, sample_probs) = llm.policy().choose(&cands, uniform);
                let old_prob = sample_probs[chosen_idx];
                let chosen = &cands[chosen_idx];

                let rating = tester.rate_candidate(chosen, chosen.features[0]);
                ratings.push(rating as f64);
                if rating >= 4.0 {
                    accepted += 1;
                }

                // Preference pair against another random candidate.
                if cands.len() > 1 {
                    let mut other = self.rng.gen_range(0..cands.len());
                    if other == chosen_idx {
                        other = (other + 1) % cands.len();
                    }
                    if let Some(pair) = tester.prefer(
                        chosen,
                        chosen.features[0],
                        &cands[other],
                        cands[other].features[0],
                    ) {
                        self.pairs.push(pair);
                        if self.pairs.len() > self.config.max_pairs {
                            let excess = self.pairs.len() - self.config.max_pairs;
                            self.pairs.drain(0..excess);
                        }
                    }
                }
                updates.push((cands, chosen_idx, old_prob));
                let _ = rating;
            }

            // Stage 1: refit the reward model on accumulated preferences.
            self.reward.train(&self.pairs, self.config.reward_epochs);
            let reward_accuracy = self.reward.accuracy(&self.pairs) as f64;

            // Stage 2: policy gradient with reward-model advantages.
            let predicted: Vec<f32> = updates
                .iter()
                .map(|(cands, idx, _)| self.reward.predict(&cands[*idx].features))
                .collect();
            let baseline: f32 = if predicted.is_empty() {
                0.0
            } else {
                predicted.iter().sum::<f32>() / predicted.len() as f32
            };
            for ((cands, idx, old_prob), r) in updates.iter().zip(predicted.iter()) {
                rewards.push(*r as f64);
                let advantage = r - baseline;
                match self.config.optimizer {
                    PolicyOptimizer::Reinforce => {
                        llm.policy_mut()
                            .reinforce(cands, *idx, advantage, self.config.policy_lr);
                    }
                    PolicyOptimizer::PpoClip { epsilon } => {
                        llm.policy_mut().ppo_clip(
                            cands,
                            *idx,
                            *old_prob,
                            advantage,
                            self.config.policy_lr,
                            epsilon,
                        );
                    }
                }
            }

            stats.push(IterationStats {
                iteration,
                mean_rating: mean(&ratings),
                acceptance: if ratings.is_empty() {
                    0.0
                } else {
                    accepted as f64 / ratings.len() as f64
                },
                mean_reward: mean(&rewards),
                reward_accuracy,
            });
        }
        stats
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tester::TargetProfile;
    use nfi_llm::LlmConfig;

    fn scenarios() -> Vec<(FaultSpec, Module)> {
        let sources = [
            (
                "def handle(req):\n    return 1\n",
                "simulate a timeout causing an unhandled exception in handle",
            ),
            (
                "def fetch(url):\n    return url\n",
                "simulate a timeout failure with an error in fetch",
            ),
            (
                "def store(v):\n    return v\n",
                "simulate a timeout exception inside store",
            ),
        ];
        sources
            .iter()
            .map(|(src, desc)| {
                let m = nfi_pylite::parse(src).unwrap();
                let spec = nfi_nlp::analyze(desc, Some(&m));
                (spec, m)
            })
            .collect()
    }

    #[test]
    fn alignment_improves_with_feedback() {
        let mut llm = FaultLlm::untrained(LlmConfig::default());
        let tester = SimulatedTester::new(TargetProfile::wants_retry(), 7);
        let mut trainer = RlhfTrainer::new(RlhfConfig {
            iterations: 12,
            ..RlhfConfig::default()
        });
        let stats = trainer.run(&mut llm, &scenarios(), &tester);
        assert_eq!(stats.len(), 12);
        let first3: f64 = stats[..3].iter().map(|s| s.mean_rating).sum::<f64>() / 3.0;
        let last3: f64 = stats[9..].iter().map(|s| s.mean_rating).sum::<f64>() / 3.0;
        assert!(
            last3 > first3 + 0.3,
            "mean rating should improve: first3={first3:.2} last3={last3:.2}\n{stats:#?}"
        );
    }

    #[test]
    fn policy_learns_to_prefer_retry_patterns() {
        let mut llm = FaultLlm::untrained(LlmConfig::default());
        let tester = SimulatedTester::new(TargetProfile::wants_retry(), 7);
        let scen = scenarios();
        let before = retry_probability(&llm, &scen);
        let mut trainer = RlhfTrainer::new(RlhfConfig {
            iterations: 12,
            ..RlhfConfig::default()
        });
        trainer.run(&mut llm, &scen, &tester);
        let after = retry_probability(&llm, &scen);
        assert!(
            after > before + 0.2,
            "retry-pattern probability should grow: {before:.3} -> {after:.3}"
        );
    }

    fn retry_probability(llm: &FaultLlm, scenarios: &[(FaultSpec, Module)]) -> f32 {
        let mut total = 0.0;
        let mut n = 0;
        for (spec, module) in scenarios {
            let cands = llm.candidates(spec, module);
            let probs = llm.policy().distribution(&cands);
            for (c, p) in cands.iter().zip(probs.iter()) {
                if c.pattern == "raise_with_retry" {
                    total += p;
                    n += 1;
                }
            }
        }
        if n == 0 {
            0.0
        } else {
            total / n as f32
        }
    }

    #[test]
    fn ppo_variant_also_improves_alignment() {
        let mut llm = FaultLlm::untrained(LlmConfig::default());
        let tester = SimulatedTester::new(TargetProfile::wants_retry(), 7);
        let mut trainer = RlhfTrainer::new(RlhfConfig {
            iterations: 12,
            optimizer: PolicyOptimizer::PpoClip { epsilon: 0.2 },
            ..RlhfConfig::default()
        });
        let stats = trainer.run(&mut llm, &scenarios(), &tester);
        let first3: f64 = stats[..3].iter().map(|s| s.mean_rating).sum::<f64>() / 3.0;
        let last3: f64 = stats[9..].iter().map(|s| s.mean_rating).sum::<f64>() / 3.0;
        assert!(
            last3 > first3 + 0.2,
            "ppo alignment should improve: {first3:.2} -> {last3:.2}"
        );
    }

    #[test]
    fn stats_are_reproducible_per_seed() {
        let run = |seed| {
            let mut llm = FaultLlm::untrained(LlmConfig::default());
            let tester = SimulatedTester::new(TargetProfile::wants_retry(), 7);
            let mut trainer = RlhfTrainer::new(RlhfConfig {
                iterations: 3,
                seed,
                ..RlhfConfig::default()
            });
            trainer.run(&mut llm, &scenarios(), &tester)
        };
        let a = run(1);
        let b = run(1);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x.mean_rating - y.mean_rating).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_scenarios_yield_empty_rows() {
        let mut llm = FaultLlm::untrained(LlmConfig::default());
        let tester = SimulatedTester::new(TargetProfile::default(), 1);
        let mut trainer = RlhfTrainer::new(RlhfConfig {
            iterations: 2,
            ..RlhfConfig::default()
        });
        let stats = trainer.run(&mut llm, &[], &tester);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].mean_rating, 0.0);
    }
}
