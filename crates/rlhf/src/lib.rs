//! # nfi-rlhf — Reinforcement Learning from Human Feedback
//!
//! The RLHF mechanism of the paper's §III-B3: testers review generated
//! faults, their feedback trains a **reward model**, and the reward
//! signal fine-tunes the generator's sampling **policy**.
//!
//! Components:
//!
//! * [`tester::SimulatedTester`] — a deterministic oracle with a hidden
//!   [`tester::TargetProfile`] standing in for the human tester: it
//!   rates candidates (1–5), accepts/rejects, emits natural-language
//!   critiques from a template grammar ("introduce a retry mechanism
//!   instead of just logging the error"), and yields preference pairs.
//! * [`reward::RewardModel`] — a Bradley–Terry pairwise reward model
//!   (MLP over candidate features) trained on those preferences.
//! * [`trainer::RlhfTrainer`] — the iterative loop: generate → collect
//!   feedback → fit reward model → REINFORCE-update the policy; per-
//!   iteration alignment statistics feed experiment E1.
//!
//! ```
//! use nfi_llm::{FaultLlm, LlmConfig};
//! use nfi_rlhf::tester::{SimulatedTester, TargetProfile};
//! use nfi_rlhf::trainer::{RlhfConfig, RlhfTrainer};
//!
//! let module = nfi_pylite::parse("def handle(req):\n    return 1\n")?;
//! let spec = nfi_nlp::analyze(
//!     "simulate a timeout failure in handle with an unhandled exception",
//!     Some(&module),
//! );
//! let mut llm = FaultLlm::untrained(LlmConfig::default());
//! let tester = SimulatedTester::new(TargetProfile::wants_retry(), 1);
//! let mut trainer = RlhfTrainer::new(RlhfConfig { iterations: 4, ..RlhfConfig::default() });
//! let stats = trainer.run(&mut llm, &[(spec, module)], &tester);
//! assert_eq!(stats.len(), 4);
//! # Ok::<(), nfi_pylite::PyliteError>(())
//! ```

pub mod feedback;
pub mod reward;
pub mod tester;
pub mod trainer;

pub use feedback::{Feedback, PreferencePair};
pub use reward::RewardModel;
pub use tester::{SimulatedTester, TargetProfile};
pub use trainer::{IterationStats, PolicyOptimizer, RlhfConfig, RlhfTrainer};
