//! Candidate synthesis: class-specific AST patterns plus operator-backed
//! mutations.
//!
//! Each synthesizer produces a *complete mutated module*; the review
//! snippet is the printed target function so the tester sees exactly
//! what the paper's running example shows.

use crate::params::GenParams;
use crate::policy::Candidate;
use nfi_nlp::{EffectHint, FaultSpec, Trigger};
use nfi_pylite::ast::{build, BinOp, CmpOp, Expr, Module, Stmt, StmtKind};
use nfi_pylite::{print_block, print_module};
use nfi_sfi::FaultClass;

/// Maximum operator-backed candidates per generation.
const MAX_OPERATOR_CANDIDATES: usize = 6;

/// Synthesizes every applicable candidate for the spec.
pub fn synthesize(spec: &FaultSpec, module: &Module, params: &GenParams) -> Vec<Candidate> {
    let target = spec
        .target_function
        .clone()
        .or_else(|| first_non_test_function(module));
    // Try to compile a `when ...` trigger clause into a real guard over
    // the target's visible symbols (params + module globals).
    let guard: Option<Expr> = match (&spec.trigger, &target) {
        (Trigger::When(clause), Some(t)) => {
            let index = nfi_pylite::analysis::ModuleIndex::build(module);
            let mut symbols: Vec<String> = index.globals.clone();
            if let Some(f) = index.function(t) {
                symbols.extend(f.params.iter().cloned());
            }
            nfi_nlp::compile_when(clause, &symbols)
        }
        _ => None,
    };
    let guard = guard.as_ref();
    let mut out = Vec::new();

    if let Some(target) = &target {
        let kind_class = if params.exception_kind == "TimeoutError" {
            FaultClass::Timing
        } else {
            FaultClass::ExceptionHandling
        };
        // Spec-driven patterns, the "creative" half of the generator.
        out.extend(raise_unhandled(
            spec, module, params, guard, target, kind_class,
        ));
        out.extend(raise_mishandled(
            spec, module, params, guard, target, kind_class,
        ));
        out.extend(raise_with_retry(
            spec, module, params, guard, target, kind_class,
        ));
        out.extend(delay_entry(spec, module, params, guard, target));
        out.extend(leak_handle(spec, module, params, guard, target));
        out.extend(overflow_write(spec, module, params, guard, target));
        out.extend(race_writers(spec, module, params, guard, target));
        if spec.effect == Some(EffectHint::Hang) {
            out.extend(spin_hang(spec, module, params, guard, target));
        }
    }

    // Operator-backed candidates for the spec's class(es).
    let wanted: Vec<FaultClass> = [spec.class, spec.secondary_class]
        .into_iter()
        .flatten()
        .collect();
    let mut op_count = 0;
    for op in nfi_sfi::registry() {
        if op_count >= MAX_OPERATOR_CANDIDATES {
            break;
        }
        if !wanted.is_empty() && !wanted.contains(&op.class()) {
            continue;
        }
        let mut sites = op.find_sites(module);
        // Prefer sites inside the target function.
        if let Some(t) = &target {
            let preferred: Vec<_> = sites
                .iter()
                .filter(|s| s.function.as_deref() == Some(t))
                .cloned()
                .collect();
            if !preferred.is_empty() {
                sites = preferred;
            }
        }
        for site in sites.into_iter().take(2) {
            if op_count >= MAX_OPERATOR_CANDIDATES {
                break;
            }
            if let Some(mutated) = op.apply(module, &site) {
                let snippet = snippet_for(&mutated, site.function.as_deref());
                out.push(Candidate {
                    pattern: format!("op:{}", op.name()),
                    class: op.class(),
                    module: mutated,
                    target_function: site.function.clone(),
                    snippet,
                    rationale: op.describe(&site),
                    params: params.clone(),
                    effect_crash: false,
                    effect_matches_spec: operator_effect_matches(op.class(), spec.effect),
                    trigger_honored: trigger_default_honor(spec),
                    features: Vec::new(),
                });
                op_count += 1;
            }
        }
    }
    out
}

fn first_non_test_function(module: &Module) -> Option<String> {
    module
        .def_names()
        .into_iter()
        .find(|n| !n.starts_with("test_"))
}

fn operator_effect_matches(class: FaultClass, effect: Option<EffectHint>) -> bool {
    match effect {
        None => true,
        Some(EffectHint::Leak) => class == FaultClass::ResourceLeak,
        Some(EffectHint::Slow) => class == FaultClass::Timing,
        Some(EffectHint::Hang) => class == FaultClass::Concurrency,
        Some(EffectHint::Crash) => matches!(
            class,
            FaultClass::ExceptionHandling | FaultClass::BufferOverflow
        ),
        Some(EffectHint::WrongOutput) => matches!(
            class,
            FaultClass::WrongValue | FaultClass::Omission | FaultClass::Interface
        ),
    }
}

fn trigger_default_honor(spec: &FaultSpec) -> f32 {
    match spec.trigger {
        Trigger::Always => 1.0,
        Trigger::When(_) => 0.5,
        Trigger::Probabilistic(_) | Trigger::After(_) => 0.3,
    }
}

/// Wraps fault statements in the probability gate and/or the compiled
/// trigger guard.
fn gated(stmts: Vec<Stmt>, params: &GenParams, guard: Option<&Expr>) -> Vec<Stmt> {
    let inner = match params.probability {
        Some(p) => vec![build::if_(
            build::cmp(
                CmpOp::Lt,
                build::call("rand_float", vec![]),
                build::float(p),
            ),
            stmts,
            vec![],
        )],
        None => stmts,
    };
    match guard {
        Some(g) => vec![build::if_(g.clone(), inner, vec![])],
        None => inner,
    }
}

/// Trigger fidelity of a pattern, given what was actually compiled.
fn honored(spec: &FaultSpec, params: &GenParams, guard: Option<&Expr>) -> f32 {
    match &spec.trigger {
        Trigger::Always => 1.0,
        Trigger::Probabilistic(_) => {
            if params.probability.is_some() {
                1.0
            } else {
                0.3
            }
        }
        Trigger::When(_) => {
            if guard.is_some() {
                1.0
            } else {
                0.5
            }
        }
        Trigger::After(_) => {
            if params.delay.is_some() {
                0.8
            } else {
                0.3
            }
        }
    }
}

/// Inserts statements at the top of the named function, returning the
/// mutated module and the printed function.
fn prepend_in_function(
    module: &Module,
    target: &str,
    stmts: Vec<Stmt>,
) -> Option<(Module, String)> {
    let mut m = module.clone();
    let def = m.find_def_mut(target)?;
    if let StmtKind::Def { body, .. } = &mut def.kind {
        for (i, s) in stmts.into_iter().enumerate() {
            body.insert(i, s);
        }
    }
    m.renumber();
    let snippet = snippet_for(&m, Some(target));
    Some((m, snippet))
}

/// The review snippet: the named function when present, the whole module
/// otherwise.
fn snippet_for(module: &Module, function: Option<&str>) -> String {
    match function.and_then(|f| module.find_def(f)) {
        Some(def) => print_block(std::slice::from_ref(def), 0),
        None => print_module(module),
    }
}

fn exception_message(spec: &FaultSpec, kind: &str) -> String {
    let lower = spec.raw.to_lowercase();
    if kind == "TimeoutError" && lower.contains("database") && lower.contains("transaction") {
        "Database transaction timeout".to_string()
    } else if kind == "TimeoutError" {
        "operation timed out".to_string()
    } else if kind == "ConnectionError" {
        "connection refused by remote service".to_string()
    } else {
        format!("injected {kind}")
    }
}

fn trigger_suffix(params: &GenParams) -> String {
    match &params.trigger_note {
        Some(note) => format!(" (intended trigger: when {note})"),
        None => String::new(),
    }
}

// ---- spec-driven patterns --------------------------------------------------

fn raise_unhandled(
    spec: &FaultSpec,
    module: &Module,
    params: &GenParams,
    guard: Option<&Expr>,
    target: &str,
    class: FaultClass,
) -> Option<Candidate> {
    let msg = exception_message(spec, &params.exception_kind);
    let mut stmts = Vec::new();
    if let Some(d) = params.delay {
        stmts.push(build::expr_stmt(build::call(
            "sleep",
            vec![build::float(d)],
        )));
    }
    stmts.push(build::raise(&params.exception_kind, &msg));
    let (module, snippet) = prepend_in_function(module, target, gated(stmts, params, guard))?;
    Some(Candidate {
        pattern: "raise_unhandled".into(),
        class,
        module,
        target_function: Some(target.to_string()),
        snippet,
        rationale: format!(
            "raise an uncaught {} at the entry of {}{}",
            params.exception_kind,
            target,
            trigger_suffix(params)
        ),
        params: params.clone(),
        effect_crash: params.probability.is_none(),
        effect_matches_spec: spec.effect.is_none() || spec.effect == Some(EffectHint::Crash),
        trigger_honored: honored(spec, params, guard),
        features: Vec::new(),
    })
}

/// The paper's first-round generation: the exception is caught but only
/// logged — "missing exception handling logic".
fn raise_mishandled(
    spec: &FaultSpec,
    module: &Module,
    params: &GenParams,
    guard: Option<&Expr>,
    target: &str,
    class: FaultClass,
) -> Option<Candidate> {
    let kind = &params.exception_kind;
    let msg = exception_message(spec, kind);
    let mut try_body = Vec::new();
    if let Some(d) = params.delay {
        try_body.push(build::expr_stmt(build::call(
            "sleep",
            vec![build::float(d)],
        )));
    }
    try_body.push(build::raise(kind, &msg));
    let handler_body = if params.logs {
        vec![build::print(vec![
            build::str_("Transaction failed:"),
            build::call("str", vec![build::name("nfi_e")]),
        ])]
    } else {
        vec![build::pass()]
    };
    let stmts = vec![build::try_(
        try_body,
        vec![build::handler(Some(kind), Some("nfi_e"), handler_body)],
        vec![],
    )];
    let (module, snippet) = prepend_in_function(module, target, gated(stmts, params, guard))?;
    Some(Candidate {
        pattern: "raise_mishandled".into(),
        class,
        module,
        target_function: Some(target.to_string()),
        snippet,
        rationale: format!(
            "simulate a {kind} inside {target}, caught but only logged — the recovery logic is missing{}",
            trigger_suffix(params)
        ),
        params: params.clone(),
        effect_crash: false,
        effect_matches_spec: spec.effect.is_none()
            || matches!(spec.effect, Some(EffectHint::WrongOutput | EffectHint::Crash)),
        trigger_honored: honored(spec, params, guard),
        features: Vec::new(),
    })
}

/// The paper's second-round generation: a retry path around the fault.
fn raise_with_retry(
    spec: &FaultSpec,
    module: &Module,
    params: &GenParams,
    guard: Option<&Expr>,
    target: &str,
    class: FaultClass,
) -> Option<Candidate> {
    let retries = params.retries.unwrap_or(3) as i64;
    let kind = &params.exception_kind;
    let msg = exception_message(spec, kind);
    let loop_body = vec![build::try_(
        vec![build::raise(kind, &msg)],
        vec![build::handler(
            Some(kind),
            Some("nfi_e"),
            vec![
                build::print(vec![build::str_("Attempting to retry transaction")]),
                build::aug_assign("nfi_attempts", BinOp::Add, build::int(1)),
            ],
        )],
        vec![],
    )];
    let stmts = vec![
        build::assign("nfi_attempts", build::int(0)),
        build::while_(
            build::cmp(CmpOp::Lt, build::name("nfi_attempts"), build::int(retries)),
            loop_body,
        ),
    ];
    let (module, snippet) = prepend_in_function(module, target, gated(stmts, params, guard))?;
    Some(Candidate {
        pattern: "raise_with_retry".into(),
        class,
        module,
        target_function: Some(target.to_string()),
        snippet,
        rationale: format!(
            "simulate a {kind} inside {target} with a {retries}-attempt retry mechanism before recovering{}",
            trigger_suffix(params)
        ),
        params: GenParams {
            retries: Some(retries as u32),
            ..params.clone()
        },
        effect_crash: false,
        effect_matches_spec: spec.effect.is_none() || spec.effect == Some(EffectHint::Slow),
        trigger_honored: honored(spec, params, guard),
        features: Vec::new(),
    })
}

fn delay_entry(
    spec: &FaultSpec,
    module: &Module,
    params: &GenParams,
    guard: Option<&Expr>,
    target: &str,
) -> Option<Candidate> {
    let delay = params.delay.unwrap_or(60.0);
    let stmts = vec![build::expr_stmt(build::call(
        "sleep",
        vec![build::float(delay)],
    ))];
    let (module, snippet) = prepend_in_function(module, target, gated(stmts, params, guard))?;
    Some(Candidate {
        pattern: "delay_entry".into(),
        class: FaultClass::Timing,
        module,
        target_function: Some(target.to_string()),
        snippet,
        rationale: format!("stall {target} for {delay} seconds (slow dependency)"),
        params: params.clone(),
        effect_crash: false,
        effect_matches_spec: spec.effect.is_none() || spec.effect == Some(EffectHint::Slow),
        trigger_honored: honored(spec, params, guard),
        features: Vec::new(),
    })
}

fn leak_handle(
    spec: &FaultSpec,
    module: &Module,
    params: &GenParams,
    guard: Option<&Expr>,
    target: &str,
) -> Option<Candidate> {
    let stmts = vec![build::assign(
        "nfi_leaked",
        build::call(
            "open_handle",
            vec![build::str_(&format!("injected-leak:{target}"))],
        ),
    )];
    let (module, snippet) = prepend_in_function(module, target, gated(stmts, params, guard))?;
    Some(Candidate {
        pattern: "leak_handle".into(),
        class: FaultClass::ResourceLeak,
        module,
        target_function: Some(target.to_string()),
        snippet,
        rationale: format!("acquire a resource in {target} that is never released"),
        params: params.clone(),
        effect_crash: false,
        effect_matches_spec: spec.effect.is_none() || spec.effect == Some(EffectHint::Leak),
        trigger_honored: honored(spec, params, guard),
        features: Vec::new(),
    })
}

fn overflow_write(
    spec: &FaultSpec,
    module: &Module,
    params: &GenParams,
    guard: Option<&Expr>,
    target: &str,
) -> Option<Candidate> {
    let stmts = vec![
        build::assign("nfi_buf", build::call("make_buffer", vec![build::int(2)])),
        build::expr_stmt(build::method(
            build::name("nfi_buf"),
            "write",
            vec![build::int(4), build::int(1)],
        )),
    ];
    let (module, snippet) = prepend_in_function(module, target, gated(stmts, params, guard))?;
    Some(Candidate {
        pattern: "overflow_write".into(),
        class: FaultClass::BufferOverflow,
        module,
        target_function: Some(target.to_string()),
        snippet,
        rationale: format!("write past a bounded buffer's capacity inside {target}"),
        params: params.clone(),
        effect_crash: params.probability.is_none(),
        effect_matches_spec: spec.effect.is_none() || spec.effect == Some(EffectHint::Crash),
        trigger_honored: honored(spec, params, guard),
        features: Vec::new(),
    })
}

/// Adds two unsynchronized writer tasks over a fresh shared global —
/// expressing a race condition even in programs with no locks at all.
fn race_writers(
    spec: &FaultSpec,
    module: &Module,
    params: &GenParams,
    guard: Option<&Expr>,
    target: &str,
) -> Option<Candidate> {
    // Module additions: shared counter + racer function.
    let mut m = module.clone();
    m.body.insert(0, build::assign("nfi_shared", build::int(0)));
    m.body.insert(
        1,
        build::def(
            "nfi_racer",
            vec![],
            vec![
                build::global(vec!["nfi_shared"]),
                build::for_(
                    vec!["nfi_i"],
                    build::call("range", vec![build::int(25)]),
                    vec![build::assign(
                        "nfi_shared",
                        build::bin(BinOp::Add, build::name("nfi_shared"), build::int(1)),
                    )],
                ),
            ],
        ),
    );
    let stmts = vec![
        build::assign(
            "nfi_t1",
            build::call("spawn", vec![build::name("nfi_racer")]),
        ),
        build::assign(
            "nfi_t2",
            build::call("spawn", vec![build::name("nfi_racer")]),
        ),
        build::expr_stmt(build::call("join", vec![build::name("nfi_t1")])),
        build::expr_stmt(build::call("join", vec![build::name("nfi_t2")])),
    ];
    let (module, _) = prepend_in_function(&m, target, gated(stmts, params, guard))?;
    // The snippet must carry the module-level additions too, so that
    // snippet-based integration reproduces the full mutation.
    let mut snippet = print_block(&module.body[..2], 0);
    if let Some(def) = module.find_def(target) {
        snippet.push_str(&print_block(std::slice::from_ref(def), 0));
    }
    Some(Candidate {
        pattern: "race_writers".into(),
        class: FaultClass::Concurrency,
        module,
        target_function: Some(target.to_string()),
        snippet,
        rationale: format!(
            "spawn two tasks from {target} that update shared state without synchronization"
        ),
        params: params.clone(),
        effect_crash: false,
        effect_matches_spec: spec.effect.is_none() || spec.effect == Some(EffectHint::WrongOutput),
        trigger_honored: honored(spec, params, guard),
        features: Vec::new(),
    })
}

fn spin_hang(
    spec: &FaultSpec,
    module: &Module,
    params: &GenParams,
    guard: Option<&Expr>,
    target: &str,
) -> Option<Candidate> {
    let stmts = vec![
        build::assign("nfi_spin", build::int(0)),
        build::while_(
            build::bool_(true),
            vec![build::aug_assign("nfi_spin", BinOp::Add, build::int(1))],
        ),
    ];
    let (module, snippet) = prepend_in_function(module, target, gated(stmts, params, guard))?;
    Some(Candidate {
        pattern: "spin_hang".into(),
        class: FaultClass::Timing,
        module,
        target_function: Some(target.to_string()),
        snippet,
        rationale: format!("spin forever at the entry of {target} (livelock)"),
        params: params.clone(),
        effect_crash: false,
        effect_matches_spec: spec.effect == Some(EffectHint::Hang),
        trigger_honored: honored(spec, params, guard),
        features: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfi_pylite::parse;

    fn module() -> Module {
        parse("def process_transaction(details):\n    return True\n").unwrap()
    }

    fn spec(text: &str) -> FaultSpec {
        let m = module();
        nfi_nlp::analyze(text, Some(&m))
    }

    #[test]
    fn every_candidate_module_reparses_and_runs_module_body() {
        let m = module();
        let s = spec(
            "simulate a database timeout causing an unhandled exception in process_transaction",
        );
        let params = crate::params::derive(&s);
        let cands = synthesize(&s, &m, &params);
        assert!(cands.len() >= 5, "got {} candidates", cands.len());
        for c in &cands {
            let printed = print_module(&c.module);
            let reparsed = parse(&printed)
                .unwrap_or_else(|e| panic!("{} unparseable: {e}\n{printed}", c.pattern));
            let mut machine = nfi_pylite::Machine::new(nfi_pylite::MachineConfig::default());
            let out = machine.run_module(&reparsed).unwrap();
            assert!(
                matches!(out.status, nfi_pylite::RunStatus::Completed),
                "{} module body failed: {:?}",
                c.pattern,
                out.status
            );
        }
    }

    #[test]
    fn mishandled_pattern_matches_running_example_shape() {
        let m = module();
        let s = spec("simulate a database transaction timeout causing an unhandled exception in process_transaction");
        let params = crate::params::derive(&s);
        let cands = synthesize(&s, &m, &params);
        let c = cands
            .iter()
            .find(|c| c.pattern == "raise_mishandled")
            .unwrap();
        assert!(c
            .snippet
            .contains("raise TimeoutError(\"Database transaction timeout\")"));
        assert!(c.snippet.contains("except TimeoutError as nfi_e:"));
        assert!(c.snippet.contains("Transaction failed:"));
    }

    #[test]
    fn retry_pattern_contains_retry_loop() {
        let m = module();
        let s = spec("timeout in process_transaction, retry 3 times");
        let params = crate::params::derive(&s);
        let cands = synthesize(&s, &m, &params);
        let c = cands
            .iter()
            .find(|c| c.pattern == "raise_with_retry")
            .unwrap();
        assert!(c.snippet.contains("while nfi_attempts < 3:"));
        assert!(c.snippet.contains("Attempting to retry transaction"));
        assert_eq!(c.params.retries, Some(3));
    }

    #[test]
    fn probabilistic_trigger_compiles_to_rand_gate() {
        let m = module();
        let s = spec("sometimes crash process_transaction with an unhandled error");
        let params = crate::params::derive(&s);
        let cands = synthesize(&s, &m, &params);
        let c = cands
            .iter()
            .find(|c| c.pattern == "raise_unhandled")
            .unwrap();
        assert!(
            c.snippet.contains("if rand_float() < 0.5:"),
            "{}",
            c.snippet
        );
        assert!(!c.effect_crash, "gated fault does not always crash");
    }

    #[test]
    fn race_pattern_produces_detectable_race() {
        let m = module();
        let s = spec("introduce a race condition in process_transaction on shared state");
        let params = crate::params::derive(&s);
        let cands = synthesize(&s, &m, &params);
        let c = cands.iter().find(|c| c.pattern == "race_writers").unwrap();
        let mut machine = nfi_pylite::Machine::new(nfi_pylite::MachineConfig::default());
        machine.run_module(&c.module).unwrap();
        let out = machine
            .call("process_transaction", vec![nfi_pylite::Value::None])
            .unwrap();
        assert!(
            !out.races.is_empty(),
            "expected a detected race, races: {:?}, status {:?}",
            out.races,
            out.status
        );
    }

    #[test]
    fn leak_pattern_produces_detectable_leak() {
        let m = module();
        let s = spec("leak a handle in process_transaction");
        let params = crate::params::derive(&s);
        let cands = synthesize(&s, &m, &params);
        let c = cands.iter().find(|c| c.pattern == "leak_handle").unwrap();
        let mut machine = nfi_pylite::Machine::new(nfi_pylite::MachineConfig::default());
        machine.run_module(&c.module).unwrap();
        let out = machine
            .call("process_transaction", vec![nfi_pylite::Value::None])
            .unwrap();
        assert_eq!(out.leaks.len(), 1);
    }

    #[test]
    fn hang_pattern_only_offered_for_hang_specs() {
        let m = module();
        let hang_spec = spec("make process_transaction hang forever");
        let params = crate::params::derive(&hang_spec);
        let cands = synthesize(&hang_spec, &m, &params);
        assert!(cands.iter().any(|c| c.pattern == "spin_hang"));

        let other = spec("wrong value in process_transaction");
        let params = crate::params::derive(&other);
        let cands = synthesize(&other, &m, &params);
        assert!(!cands.iter().any(|c| c.pattern == "spin_hang"));
    }

    #[test]
    fn empty_module_yields_no_spec_driven_candidates() {
        let m = parse("x = 1\n").unwrap();
        let s = nfi_nlp::analyze("crash something", Some(&m));
        let params = crate::params::derive(&s);
        let cands = synthesize(&s, &m, &params);
        assert!(cands.iter().all(|c| c.pattern.starts_with("op:")));
    }
}

#[cfg(test)]
mod guard_tests {
    use super::*;
    use nfi_pylite::parse;

    #[test]
    fn when_clause_compiles_into_a_guard() {
        let m = parse("def checkout(cart):\n    return len(cart)\n").unwrap();
        let s = nfi_nlp::analyze(
            "raise an unhandled timeout error in checkout when the cart is empty",
            Some(&m),
        );
        assert!(matches!(s.trigger, Trigger::When(_)), "{:?}", s.trigger);
        let params = crate::params::derive(&s);
        let cands = synthesize(&s, &m, &params);
        let c = cands
            .iter()
            .find(|c| c.pattern == "raise_unhandled")
            .unwrap();
        assert!(
            c.snippet.contains("if len(cart) == 0:"),
            "guard must be compiled into the snippet:\n{}",
            c.snippet
        );
        assert_eq!(c.trigger_honored, 1.0);
        // The guarded fault only fires on an empty cart.
        let mut machine = nfi_pylite::Machine::new(nfi_pylite::MachineConfig::default());
        machine.run_module(&c.module).unwrap();
        let ok = machine
            .call(
                "checkout",
                vec![nfi_pylite::Value::list(vec![nfi_pylite::Value::Int(1)])],
            )
            .unwrap();
        assert!(
            ok.clean(),
            "non-empty cart must not trigger: {:?}",
            ok.status
        );
        let boom = machine
            .call("checkout", vec![nfi_pylite::Value::list(vec![])])
            .unwrap();
        assert!(
            matches!(boom.status, nfi_pylite::RunStatus::Uncaught(_)),
            "empty cart must trigger: {:?}",
            boom.status
        );
    }

    #[test]
    fn uncompilable_when_clause_degrades_gracefully() {
        let m = parse("def checkout(cart):\n    return len(cart)\n").unwrap();
        let s = nfi_nlp::analyze(
            "raise an unhandled timeout error in checkout when mercury is in retrograde",
            Some(&m),
        );
        let params = crate::params::derive(&s);
        let cands = synthesize(&s, &m, &params);
        let c = cands
            .iter()
            .find(|c| c.pattern == "raise_unhandled")
            .unwrap();
        assert_eq!(c.trigger_honored, 0.5, "noted but not compiled");
        assert!(!c.snippet.contains("mercury"));
    }
}
