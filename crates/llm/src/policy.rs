//! The sampling policy over synthesized candidates — the object RLHF
//! fine-tunes.
//!
//! A linear scorer over a fixed feature vector, turned into a sampling
//! distribution by a temperature softmax. REINFORCE-with-baseline
//! updates (driven by the reward model in `nfi-rlhf`) shift probability
//! mass toward candidates testers prefer.

use crate::params::GenParams;
use nfi_neural::{sample_index, softmax_with_temperature};
use nfi_pylite::Module;
use nfi_sfi::FaultClass;

/// Dimensionality of candidate feature vectors.
///
/// Layout: `[class_match, secondary_match, retrieval_sim, fluency,
/// target_match, has_retry, logs, effect_crash, effect_match,
/// trigger_honored, class_prior, bias]`.
pub const FEATURE_DIM: usize = 12;

/// A synthesized candidate fault awaiting scoring/sampling.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Pattern id (`"raise_mishandled"`, `"op:MFC"`, ...).
    pub pattern: String,
    /// Fault class of the mutation.
    pub class: FaultClass,
    /// Mutated module.
    pub module: Module,
    /// Function targeted, when applicable.
    pub target_function: Option<String>,
    /// Printed mutated region for review.
    pub snippet: String,
    /// Human-readable rationale.
    pub rationale: String,
    /// Parameters used.
    pub params: GenParams,
    /// Whether the candidate is expected to crash (escaping exception).
    pub effect_crash: bool,
    /// Whether the candidate's expected manifestation matches the spec's
    /// effect hint.
    pub effect_matches_spec: bool,
    /// How faithfully the trigger condition was honored (1 = compiled,
    /// 0.5 = noted but not compiled, lower = ignored).
    pub trigger_honored: f32,
    /// Feature vector (filled by the model).
    pub features: Vec<f32>,
}

/// Linear softmax policy with temperature.
#[derive(Debug, Clone)]
pub struct Policy {
    weights: Vec<f32>,
    /// Sampling temperature.
    pub temperature: f32,
}

impl Policy {
    /// Creates a policy with a mild prior: prefer candidates whose class
    /// matches the spec and that target the requested function.
    pub fn new(temperature: f32) -> Self {
        let mut weights = vec![0.0; FEATURE_DIM];
        weights[0] = 1.5; // class match
        weights[1] = 0.5; // secondary class match
        weights[4] = 0.75; // target function match
        weights[9] = 0.5; // trigger honored
        Policy {
            weights,
            temperature,
        }
    }

    /// Raw linear score of a feature vector.
    pub fn score(&self, features: &[f32]) -> f32 {
        self.weights
            .iter()
            .zip(features.iter())
            .map(|(w, f)| w * f)
            .sum()
    }

    /// The policy's weights.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Sampling distribution over candidates.
    pub fn distribution(&self, candidates: &[Candidate]) -> Vec<f32> {
        let scores: Vec<f32> = candidates.iter().map(|c| self.score(&c.features)).collect();
        softmax_with_temperature(&scores, self.temperature)
    }

    /// Samples a candidate index given a uniform draw in `[0, 1)`.
    /// Returns the index and the full distribution.
    pub fn choose(&self, candidates: &[Candidate], uniform: f32) -> (usize, Vec<f32>) {
        let probs = self.distribution(candidates);
        (sample_index(&probs, uniform), probs)
    }

    /// REINFORCE-with-baseline update: increases the log-probability of
    /// `chosen` proportionally to `advantage` (reward − baseline).
    ///
    /// `∇ log π(chosen) = φ(chosen) − Σ_i π(i) φ(i)` for a linear softmax
    /// policy; temperature scales the gradient.
    pub fn reinforce(&mut self, candidates: &[Candidate], chosen: usize, advantage: f32, lr: f32) {
        if candidates.is_empty() {
            return;
        }
        let grad = self.log_prob_gradient(candidates, chosen);
        for (w, g) in self.weights.iter_mut().zip(grad.iter()) {
            *w += lr * advantage * g;
        }
    }

    /// PPO-style clipped update (single-sample surrogate): maximizes
    /// `min(ratio · A, clip(ratio, 1±ε) · A)` where
    /// `ratio = π_new(chosen) / π_old(chosen)` and `π_old` is the
    /// sampling-time probability the caller recorded. When the ratio has
    /// already left the trust region in the advantage's direction, the
    /// update is skipped — the standard PPO zero-gradient case.
    pub fn ppo_clip(
        &mut self,
        candidates: &[Candidate],
        chosen: usize,
        old_prob: f32,
        advantage: f32,
        lr: f32,
        epsilon: f32,
    ) {
        if candidates.is_empty() {
            return;
        }
        let probs = self.distribution(candidates);
        let ratio = probs[chosen] / old_prob.max(1e-6);
        let outside = if advantage >= 0.0 {
            ratio > 1.0 + epsilon
        } else {
            ratio < 1.0 - epsilon
        };
        if outside {
            return;
        }
        // ∇(ratio · A) = A · ratio · ∇log π_new(chosen).
        let grad = self.log_prob_gradient(candidates, chosen);
        for (w, g) in self.weights.iter_mut().zip(grad.iter()) {
            *w += lr * advantage * ratio * g;
        }
    }

    /// `∇_w log π(chosen)` for the linear softmax policy.
    fn log_prob_gradient(&self, candidates: &[Candidate], chosen: usize) -> Vec<f32> {
        let probs = self.distribution(candidates);
        let mut expected = [0.0f32; FEATURE_DIM];
        for (c, p) in candidates.iter().zip(probs.iter()) {
            for (e, f) in expected.iter_mut().zip(c.features.iter()) {
                *e += p * f;
            }
        }
        let chosen_features = &candidates[chosen].features;
        (0..FEATURE_DIM)
            .map(|i| (chosen_features[i] - expected[i]) / self.temperature)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(features: Vec<f32>) -> Candidate {
        Candidate {
            pattern: "test".into(),
            class: FaultClass::Timing,
            module: Module::new(),
            target_function: None,
            snippet: String::new(),
            rationale: String::new(),
            params: GenParams::default(),
            effect_crash: false,
            effect_matches_spec: false,
            trigger_honored: 1.0,
            features,
        }
    }

    fn one_hot(i: usize) -> Vec<f32> {
        let mut f = vec![0.0; FEATURE_DIM];
        f[i] = 1.0;
        f
    }

    #[test]
    fn distribution_sums_to_one() {
        let p = Policy::new(0.7);
        let cands = vec![candidate(one_hot(0)), candidate(one_hot(5))];
        let d = p.distribution(&cands);
        assert!((d.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(d[0] > d[1], "class-match prior should dominate");
    }

    #[test]
    fn reinforce_shifts_mass_toward_rewarded_candidate() {
        let mut p = Policy::new(0.7);
        let cands = vec![candidate(one_hot(5)), candidate(one_hot(6))];
        let before = p.distribution(&cands)[1];
        for _ in 0..50 {
            p.reinforce(&cands, 1, 1.0, 0.1);
        }
        let after = p.distribution(&cands)[1];
        assert!(
            after > before + 0.1,
            "probability of rewarded candidate should grow: {before} -> {after}"
        );
    }

    #[test]
    fn negative_advantage_pushes_mass_away() {
        let mut p = Policy::new(0.7);
        let cands = vec![candidate(one_hot(5)), candidate(one_hot(6))];
        let before = p.distribution(&cands)[0];
        for _ in 0..50 {
            p.reinforce(&cands, 0, -1.0, 0.1);
        }
        let after = p.distribution(&cands)[0];
        assert!(after < before);
    }

    #[test]
    fn ppo_clip_moves_toward_rewarded_candidate() {
        let mut p = Policy::new(0.7);
        let cands = vec![candidate(one_hot(5)), candidate(one_hot(6))];
        let before = p.distribution(&cands)[1];
        for _ in 0..50 {
            let old = p.distribution(&cands)[1];
            p.ppo_clip(&cands, 1, old, 1.0, 0.1, 0.2);
        }
        let after = p.distribution(&cands)[1];
        assert!(after > before + 0.1, "{before} -> {after}");
    }

    #[test]
    fn ppo_clip_respects_the_trust_region() {
        let mut p = Policy::new(0.7);
        let cands = vec![candidate(one_hot(5)), candidate(one_hot(6))];
        // Record π_old once, then update many times against the *stale*
        // old probability: the clip must stop the ratio from running away.
        let old = p.distribution(&cands)[1];
        for _ in 0..200 {
            p.ppo_clip(&cands, 1, old, 1.0, 0.15, 0.2);
        }
        let new = p.distribution(&cands)[1];
        let ratio = new / old;
        assert!(
            ratio <= 1.0 + 0.2 + 0.15,
            "ratio {ratio} escaped the trust region (old {old}, new {new})"
        );
        // REINFORCE with the same budget blasts far past it.
        let mut q = Policy::new(0.7);
        for _ in 0..200 {
            q.reinforce(&cands, 1, 1.0, 0.15);
        }
        let runaway = q.distribution(&cands)[1] / old;
        assert!(runaway > ratio, "reinforce {runaway} vs ppo {ratio}");
    }

    #[test]
    fn choose_is_deterministic_given_uniform() {
        let p = Policy::new(0.7);
        let cands = vec![candidate(one_hot(0)), candidate(one_hot(1))];
        let (a, _) = p.choose(&cands, 0.1);
        let (b, _) = p.choose(&cands, 0.1);
        assert_eq!(a, b);
    }
}
