//! The fine-tuning corpus store with TF-IDF retrieval.

use nfi_neural::embedder::{word_tokens, TfIdf};
use nfi_sfi::FaultClass;
use std::collections::BTreeMap;

/// One fine-tuning record: an NL fault description paired with the
/// faulty code it produced (the §IV-1 dataset row).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingRecord {
    /// Stable record id.
    pub id: String,
    /// Natural-language fault description.
    pub description: String,
    /// Fault class.
    pub class: FaultClass,
    /// The faulty code fragment (printed source).
    pub snippet: String,
    /// Operator that produced it.
    pub operator: String,
    /// Seed program it came from.
    pub program: String,
}

/// An indexed corpus of training records.
#[derive(Debug, Clone)]
pub struct CorpusDb {
    records: Vec<TrainingRecord>,
    tfidf: TfIdf,
    vectors: Vec<Vec<f32>>,
    class_counts: BTreeMap<FaultClass, usize>,
}

impl CorpusDb {
    /// An empty corpus (untrained model).
    pub fn empty() -> Self {
        CorpusDb {
            records: Vec::new(),
            tfidf: TfIdf::fit(&[]),
            vectors: Vec::new(),
            class_counts: BTreeMap::new(),
        }
    }

    /// Builds the retrieval index over the given records.
    pub fn build(records: Vec<TrainingRecord>) -> Self {
        let docs: Vec<Vec<String>> = records
            .iter()
            .map(|r| word_tokens(&r.description))
            .collect();
        let tfidf = TfIdf::fit(&docs);
        let vectors = docs.iter().map(|d| tfidf.embed(d)).collect();
        let mut class_counts = BTreeMap::new();
        for r in &records {
            *class_counts.entry(r.class).or_insert(0) += 1;
        }
        CorpusDb {
            records,
            tfidf,
            vectors,
            class_counts,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records.
    pub fn records(&self) -> &[TrainingRecord] {
        &self.records
    }

    /// Top-`k` most similar records to the query text.
    pub fn retrieve(&self, query: &str, k: usize) -> Vec<(&TrainingRecord, f32)> {
        let q = word_tokens(query);
        self.tfidf
            .top_k(&q, &self.vectors, k)
            .into_iter()
            .map(|(i, s)| (&self.records[i], s))
            .collect()
    }

    /// Distribution of fault classes in the corpus.
    pub fn class_distribution(&self) -> &BTreeMap<FaultClass, usize> {
        &self.class_counts
    }

    /// Fraction of the corpus in a given class (0 when empty).
    pub fn class_fraction(&self, class: FaultClass) -> f32 {
        if self.records.is_empty() {
            return 0.0;
        }
        *self.class_counts.get(&class).unwrap_or(&0) as f32 / self.records.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: &str, desc: &str, class: FaultClass) -> TrainingRecord {
        TrainingRecord {
            id: id.into(),
            description: desc.into(),
            class,
            snippet: "pass".into(),
            operator: "X".into(),
            program: "p".into(),
        }
    }

    #[test]
    fn retrieval_ranks_by_similarity() {
        let db = CorpusDb::build(vec![
            rec(
                "a",
                "database timeout during transaction",
                FaultClass::Timing,
            ),
            rec(
                "b",
                "race condition on shared counter",
                FaultClass::Concurrency,
            ),
            rec("c", "leak the file handle", FaultClass::ResourceLeak),
        ]);
        let hits = db.retrieve("a transaction timeout in the database", 2);
        assert_eq!(hits[0].0.id, "a");
        assert!(hits[0].1 > hits[1].1);
    }

    #[test]
    fn class_fractions_sum_to_one() {
        let db = CorpusDb::build(vec![
            rec("a", "x", FaultClass::Timing),
            rec("b", "y", FaultClass::Timing),
            rec("c", "z", FaultClass::Omission),
        ]);
        let total: f32 = FaultClass::ALL.iter().map(|c| db.class_fraction(*c)).sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!((db.class_fraction(FaultClass::Timing) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn empty_corpus_is_safe() {
        let db = CorpusDb::empty();
        assert!(db.is_empty());
        assert_eq!(db.len(), 0);
        assert!(db.retrieve("anything", 3).is_empty());
        assert_eq!(db.class_fraction(FaultClass::Timing), 0.0);
    }
}
