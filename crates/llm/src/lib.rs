//! # nfi-llm — the fault-generating language model
//!
//! The stand-in for the paper's LLM (§III-B2): a **retrieval-augmented
//! neural generator** that maps a structured [`FaultSpec`] plus the
//! target module to executable faulty code.
//!
//! Pipeline per generation:
//!
//! 1. **Retrieve** the most similar fine-tuning records (TF-IDF over the
//!    SFI-generated corpus of §IV-1) — [`corpusdb::CorpusDb`].
//! 2. **Synthesize** candidate mutations: class-specific AST patterns
//!    (timeout-raise, mishandled catch, retry loop, leak, overflow, …)
//!    plus operator-backed mutations targeted at the spec's function —
//!    [`synth`].
//! 3. **Score** candidates with a learned linear **policy** over
//!    candidate features (class/effect/trigger agreement, retrieval
//!    similarity, neural-LM fluency, corpus prior) and **sample** with
//!    temperature — [`policy::Policy`]. This policy is the object RLHF
//!    fine-tunes.
//!
//! Why this substitution preserves the paper's behaviour is argued in
//! DESIGN.md §1: NL→code mapping, data-volume sensitivity, and
//! reward-steerability are all real and measurable here.
//!
//! ```
//! use nfi_llm::{FaultLlm, LlmConfig};
//!
//! let module = nfi_pylite::parse(
//!     "def process_transaction(details):\n    return True\n",
//! )?;
//! let spec = nfi_nlp::analyze(
//!     "Simulate a database timeout causing an unhandled exception in \
//!      the process transaction function.",
//!     Some(&module),
//! );
//! let mut llm = FaultLlm::untrained(LlmConfig::default());
//! let fault = llm.generate(&spec, &module).expect("candidates exist");
//! assert!(fault.snippet.contains("TimeoutError"));
//! # Ok::<(), nfi_pylite::PyliteError>(())
//! ```

pub mod corpusdb;
pub mod params;
pub mod policy;
pub mod refine;
pub mod synth;

pub use corpusdb::{CorpusDb, TrainingRecord};
pub use params::GenParams;
pub use policy::{Candidate, Policy, FEATURE_DIM};
pub use refine::refine_spec;

use nfi_neural::lm::{code_tokens, LmConfig, NgramLm};
use nfi_nlp::FaultSpec;
use nfi_pylite::Module;
use nfi_sfi::FaultClass;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`FaultLlm`].
#[derive(Debug, Clone)]
pub struct LlmConfig {
    /// Sampling temperature over candidate scores.
    pub temperature: f32,
    /// Retrieval depth.
    pub top_k: usize,
    /// Token-LM hyper-parameters.
    pub lm: LmConfig,
    /// Epochs of LM fine-tuning per [`FaultLlm::fine_tune`] call.
    pub lm_epochs: usize,
    /// LM learning rate.
    pub lm_lr: f32,
    /// Seed for sampling.
    pub seed: u64,
}

impl Default for LlmConfig {
    fn default() -> Self {
        LlmConfig {
            temperature: 0.7,
            top_k: 4,
            lm: LmConfig::default(),
            lm_epochs: 3,
            lm_lr: 0.05,
            // Chosen so the untrained policy's first draws under the
            // vendored RNG reproduce the paper's running example
            // (timeout-raise first, retry variant after critique).
            seed: 0,
        }
    }
}

/// A generated fault: a ready-to-run mutated module plus provenance for
/// review.
#[derive(Debug, Clone)]
pub struct GeneratedFault {
    /// The spec that drove generation.
    pub spec: FaultSpec,
    /// Fault class of the chosen candidate.
    pub class: FaultClass,
    /// Synthesis pattern id (e.g. `"raise_mishandled"`, `"op:MFC"`).
    pub pattern: String,
    /// Full mutated module, ready for integration and testing.
    pub module: Module,
    /// Function the fault was placed in, when applicable.
    pub target_function: Option<String>,
    /// Printed source of the mutated region (what the tester reviews).
    pub snippet: String,
    /// Why this candidate was produced.
    pub rationale: String,
    /// Policy score of the chosen candidate.
    pub score: f32,
    /// Concrete parameters used.
    pub params: GenParams,
    /// Feature vector of the chosen candidate (used by RLHF).
    pub features: Vec<f32>,
    /// Number of candidates considered.
    pub n_candidates: usize,
}

/// The fault-generating model: fine-tuning corpus + retrieval index +
/// token LM + sampling policy.
pub struct FaultLlm {
    corpus: CorpusDb,
    lm: Option<NgramLm>,
    policy: Policy,
    config: LlmConfig,
    rng: StdRng,
}

impl FaultLlm {
    /// Creates a model with no fine-tuning data (generation falls back to
    /// pure pattern synthesis; retrieval and fluency features are zero).
    pub fn untrained(config: LlmConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        FaultLlm {
            corpus: CorpusDb::empty(),
            lm: None,
            policy: Policy::new(config.temperature),
            config,
            rng,
        }
    }

    /// Fine-tunes on SFI-generated records (§IV-1): builds the retrieval
    /// index and trains the token LM on the faulty snippets.
    ///
    /// The corpus is interned to `u32` ids once and epochs run the
    /// batched GEMM trainer — no per-epoch re-tokenization, no
    /// per-position weight writes.
    pub fn fine_tune(&mut self, records: Vec<TrainingRecord>) {
        let sequences: Vec<Vec<String>> = records.iter().map(|r| code_tokens(&r.snippet)).collect();
        self.corpus = CorpusDb::build(records);
        let mut lm = NgramLm::new(&sequences, self.config.lm.clone());
        let ids = lm.encode_corpus(&sequences);
        for _ in 0..self.config.lm_epochs {
            lm.train_epoch_batched(&ids, self.config.lm_lr, nfi_neural::lm::DEFAULT_BATCH);
        }
        self.lm = Some(lm);
    }

    /// The fine-tuning corpus.
    pub fn corpus(&self) -> &CorpusDb {
        &self.corpus
    }

    /// The token LM, once fine-tuned.
    pub fn lm(&self) -> Option<&NgramLm> {
        self.lm.as_ref()
    }

    /// Mutable access to the sampling policy (RLHF updates it).
    pub fn policy_mut(&mut self) -> &mut Policy {
        &mut self.policy
    }

    /// Read access to the sampling policy.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// Enumerates and scores all candidates for a spec (deterministic).
    pub fn candidates(&self, spec: &FaultSpec, module: &Module) -> Vec<Candidate> {
        let params = params::derive(spec);
        let mut cands = synth::synthesize(spec, module, &params);
        for c in &mut cands {
            c.features = self.featurize(spec, c);
        }
        cands
    }

    /// Generates one fault: synthesize candidates, score, sample.
    ///
    /// Returns `None` only when no candidate applies (e.g. an empty
    /// module with no target).
    pub fn generate(&mut self, spec: &FaultSpec, module: &Module) -> Option<GeneratedFault> {
        let cands = self.candidates(spec, module);
        if cands.is_empty() {
            return None;
        }
        let uniform: f32 = self.rng.gen();
        let (idx, _probs) = self.policy.choose(&cands, uniform);
        let chosen = &cands[idx];
        Some(GeneratedFault {
            spec: spec.clone(),
            class: chosen.class,
            pattern: chosen.pattern.clone(),
            module: chosen.module.clone(),
            target_function: chosen.target_function.clone(),
            snippet: chosen.snippet.clone(),
            rationale: chosen.rationale.clone(),
            score: self.policy.score(&chosen.features),
            params: chosen.params.clone(),
            features: chosen.features.clone(),
            n_candidates: cands.len(),
        })
    }

    /// Computes the feature vector of a candidate for this spec.
    fn featurize(&self, spec: &FaultSpec, c: &Candidate) -> Vec<f32> {
        let mut f = vec![0.0f32; FEATURE_DIM];
        f[0] = (Some(c.class) == spec.class) as u8 as f32;
        f[1] = (Some(c.class) == spec.secondary_class) as u8 as f32;
        // Retrieval similarity: best match among same-class records.
        if !self.corpus.is_empty() {
            let hits = self.corpus.retrieve(&spec.prompt_text(), self.config.top_k);
            f[2] = hits
                .iter()
                .filter(|(r, _)| r.class == c.class)
                .map(|(_, s)| *s)
                .fold(0.0, f32::max);
        }
        // Fluency: inverse perplexity of the snippet under the token LM.
        if let Some(lm) = &self.lm {
            let toks = code_tokens(&c.snippet);
            if !toks.is_empty() {
                f[3] = (-lm.nll(std::slice::from_ref(&toks))).exp() as f32;
            }
        }
        f[4] =
            (c.target_function.is_some() && c.target_function == spec.target_function) as u8 as f32;
        f[5] = c.params.retries.map(|r| r > 0).unwrap_or(false) as u8 as f32;
        f[6] = c.params.logs as u8 as f32;
        f[7] = c.effect_crash as u8 as f32;
        f[8] = c.effect_matches_spec as u8 as f32;
        f[9] = c.trigger_honored;
        // Corpus prior for this class.
        f[10] = self.corpus.class_fraction(c.class);
        f[11] = 1.0; // bias
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfi_pylite::parse;

    fn target() -> Module {
        parse("def process_transaction(details):\n    return True\n").unwrap()
    }

    fn timeout_spec(module: &Module) -> FaultSpec {
        nfi_nlp::analyze(
            "Simulate a database timeout causing an unhandled exception in the process transaction function.",
            Some(module),
        )
    }

    #[test]
    fn untrained_model_still_generates() {
        let module = target();
        let spec = timeout_spec(&module);
        let mut llm = FaultLlm::untrained(LlmConfig::default());
        let fault = llm.generate(&spec, &module).unwrap();
        assert!(fault.n_candidates >= 2);
        assert!(fault.snippet.contains("TimeoutError"), "{}", fault.snippet);
        // The generated module must reparse.
        let printed = nfi_pylite::print_module(&fault.module);
        parse(&printed).unwrap();
    }

    #[test]
    fn fine_tuning_populates_retrieval_and_lm() {
        let module = target();
        let spec = timeout_spec(&module);
        let mut llm = FaultLlm::untrained(LlmConfig::default());
        llm.fine_tune(vec![
            TrainingRecord {
                id: "r1".into(),
                description: "timeout raises unhandled exception in transaction".into(),
                class: FaultClass::Timing,
                snippet: "raise TimeoutError(\"db timeout\")".into(),
                operator: "DFR".into(),
                program: "ecommerce".into(),
            },
            TrainingRecord {
                id: "r2".into(),
                description: "remove lock around counter".into(),
                class: FaultClass::Concurrency,
                snippet: "counter = counter + 1".into(),
                operator: "LRA".into(),
                program: "banking".into(),
            },
        ]);
        let cands = llm.candidates(&spec, &module);
        let timing = cands
            .iter()
            .find(|c| c.class == FaultClass::Timing)
            .unwrap();
        assert!(
            timing.features[2] > 0.0,
            "retrieval similarity should be positive for the timing candidate"
        );
        assert!(timing.features[3] > 0.0, "fluency should be positive");
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let module = target();
        let spec = timeout_spec(&module);
        let gen = |seed| {
            let mut llm = FaultLlm::untrained(LlmConfig {
                seed,
                ..LlmConfig::default()
            });
            llm.generate(&spec, &module).unwrap().pattern
        };
        assert_eq!(gen(5), gen(5));
    }

    #[test]
    fn feature_vector_has_fixed_dim_and_bias() {
        let module = target();
        let spec = timeout_spec(&module);
        let llm = FaultLlm::untrained(LlmConfig::default());
        for c in llm.candidates(&spec, &module) {
            assert_eq!(c.features.len(), FEATURE_DIM);
            assert_eq!(c.features[FEATURE_DIM - 1], 1.0);
        }
    }
}
