//! Concrete generation parameters derived from a fault spec.

use nfi_nlp::{FaultSpec, Quantity, Trigger, Unit};

/// Parameters that instantiate a synthesis pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct GenParams {
    /// Exception kind to raise/catch.
    pub exception_kind: String,
    /// Simulated dependency delay in virtual seconds.
    pub delay: Option<f64>,
    /// Retry attempts for recovery patterns.
    pub retries: Option<u32>,
    /// Probability gate (`None` = always fire).
    pub probability: Option<f64>,
    /// Whether the handler logs.
    pub logs: bool,
    /// Prose trigger condition that could not be compiled (kept for the
    /// rationale so the tester sees it).
    pub trigger_note: Option<String>,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            exception_kind: "TimeoutError".to_string(),
            delay: None,
            retries: None,
            probability: None,
            logs: true,
            trigger_note: None,
        }
    }
}

/// Derives concrete parameters from the structured spec.
pub fn derive(spec: &FaultSpec) -> GenParams {
    let mut p = GenParams {
        exception_kind: spec
            .exception_kind
            .clone()
            .unwrap_or_else(|| default_kind(spec)),
        ..GenParams::default()
    };
    for q in &spec.quantities {
        match q.unit {
            Unit::Seconds if p.delay.is_none() => {
                p.delay = Some(q.value);
            }
            Unit::Milliseconds if p.delay.is_none() => {
                p.delay = Some(q.value / 1000.0);
            }
            Unit::Count if p.retries.is_none() && q.value >= 1.0 && q.value <= 100.0 => {
                p.retries = Some(q.value as u32);
            }
            _ => {}
        }
    }
    match &spec.trigger {
        Trigger::Probabilistic(prob) => p.probability = Some(*prob),
        Trigger::When(clause) => p.trigger_note = Some(clause.clone()),
        Trigger::After(Quantity {
            value,
            unit: Unit::Seconds,
        }) if p.delay.is_none() => {
            p.delay = Some(*value);
        }
        _ => {}
    }
    p
}

fn default_kind(spec: &FaultSpec) -> String {
    use nfi_sfi::FaultClass;
    match spec.class {
        Some(FaultClass::Timing) => "TimeoutError",
        Some(FaultClass::BufferOverflow) => "BufferOverflowError",
        Some(FaultClass::ResourceLeak) => "IOError",
        Some(FaultClass::Interface) => "TypeError",
        _ => "RuntimeError",
    }
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derives_delay_retries_and_probability() {
        let spec = nfi_nlp::analyze(
            "Sometimes fail with a timeout of 2 seconds and retry 3 times.",
            None,
        );
        let p = derive(&spec);
        assert_eq!(p.delay, Some(2.0));
        assert_eq!(p.retries, Some(3));
        assert_eq!(p.probability, Some(0.5));
        assert_eq!(p.exception_kind, "TimeoutError");
    }

    #[test]
    fn explicit_exception_kind_wins() {
        let spec = nfi_nlp::analyze("raise a ConnectionError during checkout", None);
        assert_eq!(derive(&spec).exception_kind, "ConnectionError");
    }

    #[test]
    fn when_clause_becomes_trigger_note() {
        let spec = nfi_nlp::analyze("crash when the cart is empty", None);
        let p = derive(&spec);
        assert_eq!(p.trigger_note.as_deref(), Some("the cart is empty"));
    }

    #[test]
    fn class_default_kinds() {
        let spec = nfi_nlp::analyze("write past the buffer capacity bounds", None);
        assert_eq!(derive(&spec).exception_kind, "BufferOverflowError");
    }
}
