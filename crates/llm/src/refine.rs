//! Spec refinement from parsed tester critiques — the data path of the
//! running example's second iteration.

use nfi_nlp::{CritiqueIntent, FaultSpec, Quantity, Trigger, Unit};

/// Applies critique intents to a spec, producing the refined spec used
/// for the next generation round.
pub fn refine_spec(spec: &FaultSpec, intents: &[CritiqueIntent]) -> FaultSpec {
    let mut s = spec.clone();
    for intent in intents {
        match intent {
            CritiqueIntent::AddRetry { attempts } => {
                let n = attempts.unwrap_or(3);
                s.quantities.push(Quantity {
                    value: n as f64,
                    unit: Unit::Count,
                });
                if !s.keywords.iter().any(|k| k == "retry") {
                    s.keywords.push("retry".to_string());
                }
                s.raw = format!("{} [refined: add a {n}-attempt retry mechanism]", s.raw);
            }
            CritiqueIntent::UseExceptionKind(kind) => {
                s.exception_kind = Some(kind.clone());
                s.raw = format!("{} [refined: raise {kind}]", s.raw);
            }
            CritiqueIntent::AddLogging => {
                if !s.keywords.iter().any(|k| k == "log") {
                    s.keywords.push("log".to_string());
                }
            }
            CritiqueIntent::RemoveLogging => {
                s.keywords.retain(|k| k != "log");
            }
            CritiqueIntent::PropagateError => {
                s.effect = Some(nfi_nlp::EffectHint::Crash);
                s.raw = format!("{} [refined: let the exception propagate]", s.raw);
            }
            CritiqueIntent::SwallowError => {
                s.effect = Some(nfi_nlp::EffectHint::WrongOutput);
            }
            CritiqueIntent::TriggerOnlyWhen(clause) => {
                s.trigger = Trigger::When(clause.clone());
            }
            CritiqueIntent::MakeIntermittent(p) => {
                s.trigger = Trigger::Probabilistic(*p);
            }
            CritiqueIntent::ChangeDelay(q) => {
                s.quantities.retain(|x| x.unit != q.unit);
                s.quantities.push(q.clone());
            }
            CritiqueIntent::Approve | CritiqueIntent::Other(_) => {}
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfi_nlp::parse_critique;

    fn base_spec() -> FaultSpec {
        nfi_nlp::analyze(
            "Simulate a database transaction timeout causing an unhandled exception.",
            None,
        )
    }

    #[test]
    fn running_example_refinement_adds_retry() {
        let spec = base_spec();
        let intents =
            parse_critique("introduce a retry mechanism instead of just logging the error");
        let refined = refine_spec(&spec, &intents);
        assert!(refined
            .quantities
            .iter()
            .any(|q| q.unit == Unit::Count && q.value == 3.0));
        assert!(refined.keywords.contains(&"retry".to_string()));
        assert!(refined.raw.contains("retry mechanism"));
    }

    #[test]
    fn exception_kind_override() {
        let spec = base_spec();
        let refined = refine_spec(
            &spec,
            &[CritiqueIntent::UseExceptionKind("ConnectionError".into())],
        );
        assert_eq!(refined.exception_kind.as_deref(), Some("ConnectionError"));
    }

    #[test]
    fn intermittent_changes_trigger() {
        let spec = base_spec();
        let refined = refine_spec(&spec, &[CritiqueIntent::MakeIntermittent(0.25)]);
        assert_eq!(refined.trigger, Trigger::Probabilistic(0.25));
    }

    #[test]
    fn delay_replacement() {
        let spec = base_spec();
        let refined = refine_spec(
            &spec,
            &[CritiqueIntent::ChangeDelay(Quantity {
                value: 45.0,
                unit: Unit::Seconds,
            })],
        );
        assert!(refined
            .quantities
            .iter()
            .any(|q| q.value == 45.0 && q.unit == Unit::Seconds));
    }

    #[test]
    fn approve_is_a_noop() {
        let spec = base_spec();
        let refined = refine_spec(&spec, &[CritiqueIntent::Approve]);
        assert_eq!(refined, spec);
    }
}
