//! Fault-class keyword lexicons and effect/exception heuristics.
//!
//! Classification is weighted keyword scoring over stemmed tokens; the
//! best and second-best classes are both reported so hybrid descriptions
//! ("a timeout causing an unhandled exception") keep their causal
//! structure.
//!
//! The lexicon is compiled once into an interned index
//! ([`nfi_neural::intern::Interner`] keyed by stemmed keyword): scoring
//! a description is one hash lookup per stem instead of re-building and
//! re-stemming the whole keyword table per call — this sits on the E7
//! NLP-stage hot path.

use crate::{stem, EffectHint};
use nfi_neural::intern::Interner;
use nfi_sfi::FaultClass;
use std::sync::OnceLock;

/// Weighted keyword lexicon per fault class. Entries are stemmed at
/// match time so surface variants (locking / locks / locked) hit.
fn lexicon() -> Vec<(FaultClass, Vec<(&'static str, f32)>)> {
    vec![
        (
            FaultClass::Timing,
            vec![
                ("timeout", 3.5),
                ("delay", 2.0),
                ("slow", 2.0),
                ("latency", 2.0),
                ("stall", 2.0),
                ("expire", 2.0),
                ("deadline", 2.0),
                ("sleep", 1.5),
            ],
        ),
        (
            FaultClass::Concurrency,
            vec![
                ("race", 3.0),
                ("deadlock", 3.0),
                ("concurrent", 2.0),
                ("interleave", 2.0),
                ("lock", 2.0),
                ("mutex", 2.0),
                ("synchronization", 2.0),
                ("unsynchronized", 2.5),
                ("shared", 1.5),
                ("thread", 1.5),
                ("parallel", 1.5),
                ("atomic", 1.5),
            ],
        ),
        (
            FaultClass::ResourceLeak,
            vec![
                ("leak", 3.0),
                ("unclosed", 2.5),
                ("exhaust", 2.0),
                ("descriptor", 2.0),
                ("close", 1.5),
                ("handle", 1.5),
                ("socket", 1.5),
                ("connection", 1.0),
                ("release", 1.0),
            ],
        ),
        (
            FaultClass::BufferOverflow,
            vec![
                ("overflow", 3.0),
                ("buffer", 2.5),
                ("bound", 2.0),
                ("capacity", 2.0),
                ("overrun", 2.5),
            ],
        ),
        (
            FaultClass::ExceptionHandling,
            vec![
                ("exception", 1.5),
                ("unhandled", 1.5),
                ("uncaught", 1.5),
                ("catch", 1.5),
                ("except", 1.5),
                ("handler", 1.5),
                ("swallow", 2.0),
                ("propagate", 1.5),
                ("raise", 1.5),
                ("recovery", 1.5),
                ("retry", 1.0),
                ("error", 0.75),
            ],
        ),
        (
            FaultClass::Omission,
            vec![
                ("missing", 2.0),
                ("omit", 2.5),
                ("skip", 2.0),
                ("remove", 2.0),
                ("forget", 2.5),
                ("drop", 1.5),
                ("without", 1.0),
            ],
        ),
        (
            FaultClass::WrongValue,
            vec![
                ("wrong", 2.0),
                ("incorrect", 2.0),
                ("corrupt", 2.5),
                ("invalid", 1.5),
                ("boundary", 1.5),
                ("negate", 2.0),
                ("invert", 2.0),
            ],
        ),
        (
            FaultClass::Interface,
            vec![
                ("parameter", 2.0),
                ("argument", 2.0),
                ("api", 2.0),
                ("interface", 2.0),
                ("duplicate", 2.0),
                ("twice", 2.0),
                ("call", 0.5),
            ],
        ),
    ]
}

/// The lexicon compiled to an interned index: stemmed keyword →
/// `(class, weight)` hits, plus the effect-hint table.
struct LexIndex {
    /// Stemmed keyword → dense id.
    interner: Interner,
    /// Per keyword id: classes it scores for.
    class_weights: Vec<Vec<(FaultClass, f32)>>,
    /// Per keyword id: effect-hint priority it triggers (lower wins).
    effect_rank: Vec<Option<u8>>,
    /// Classes in declaration order (tie-break order of `classify`).
    class_order: Vec<FaultClass>,
}

/// Effect hints by priority rank, mirroring [`effect_hint`]'s old
/// if-else chain.
const EFFECT_PRIORITY: [(EffectHint, &[&str]); 5] = [
    (
        EffectHint::Crash,
        &["crash", "unhandled", "uncaught", "abort", "panic"],
    ),
    (
        EffectHint::Hang,
        &["hang", "freeze", "stuck", "deadlock", "forever"],
    ),
    (EffectHint::Leak, &["leak", "exhaust"]),
    (
        EffectHint::WrongOutput,
        &["corrupt", "wrong", "incorrect", "silently"],
    ),
    (EffectHint::Slow, &["slow", "delay", "latency"]),
];

fn lex_index() -> &'static LexIndex {
    static INDEX: OnceLock<LexIndex> = OnceLock::new();
    INDEX.get_or_init(|| {
        let mut interner = Interner::new();
        let mut class_weights: Vec<Vec<(FaultClass, f32)>> = Vec::new();
        let mut effect_rank: Vec<Option<u8>> = Vec::new();
        let mut class_order = Vec::new();
        let slot = |interner: &mut Interner,
                    class_weights: &mut Vec<Vec<(FaultClass, f32)>>,
                    effect_rank: &mut Vec<Option<u8>>,
                    word: &str|
         -> usize {
            let id = interner.intern(&stem(word)) as usize;
            if id == class_weights.len() {
                class_weights.push(Vec::new());
                effect_rank.push(None);
            }
            id
        };
        for (class, words) in lexicon() {
            class_order.push(class);
            for (word, weight) in words {
                let id = slot(&mut interner, &mut class_weights, &mut effect_rank, word);
                class_weights[id].push((class, weight));
            }
        }
        for (rank, (_, words)) in EFFECT_PRIORITY.iter().enumerate() {
            for word in *words {
                let id = slot(&mut interner, &mut class_weights, &mut effect_rank, word);
                let rank = rank as u8;
                effect_rank[id] = Some(effect_rank[id].map_or(rank, |r| r.min(rank)));
            }
        }
        LexIndex {
            interner,
            class_weights,
            effect_rank,
            class_order,
        }
    })
}

/// Classifies stemmed tokens; returns (best, second, confidence).
pub fn classify(stems: &[String]) -> (Option<FaultClass>, Option<FaultClass>, f32) {
    let index = lex_index();
    let mut by_class: Vec<(FaultClass, f32)> = index
        .class_order
        .iter()
        .map(|class| (*class, 0.0f32))
        .collect();
    for s in stems {
        let Some(id) = index.interner.get(s) else {
            continue;
        };
        for (class, weight) in &index.class_weights[id as usize] {
            let entry = by_class
                .iter_mut()
                .find(|(c, _)| c == class)
                .expect("class present in order table");
            entry.1 += weight;
        }
    }
    // "off by one" trigram boosts WrongValue.
    if has_trigram(stems, "off", "by", "one") {
        let entry = by_class
            .iter_mut()
            .find(|(c, _)| *c == FaultClass::WrongValue)
            .expect("WrongValue in order table");
        entry.1 += 3.0;
    }
    let mut scores = by_class;
    scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let (best_class, best) = scores[0];
    let (second_class, second) = scores[1];
    if best <= 0.0 {
        return (None, None, 0.0);
    }
    let confidence = ((best - second) / best).max(0.05);
    let secondary = if second > 0.0 {
        Some(second_class)
    } else {
        None
    };
    (Some(best_class), secondary, confidence)
}

fn has_trigram(stems: &[String], a: &str, b: &str, c: &str) -> bool {
    stems
        .windows(3)
        .any(|w| w[0] == a && w[1] == b && w[2] == c)
}

/// Effect-hint extraction, in priority order (one interned lookup per
/// stem; lowest priority rank wins, same as the old if-else chain).
pub fn effect_hint(stems: &[String]) -> Option<EffectHint> {
    let index = lex_index();
    let best = stems
        .iter()
        .filter_map(|s| index.interner.get(s))
        .filter_map(|id| index.effect_rank[id as usize])
        .min()?;
    Some(EFFECT_PRIORITY[best as usize].0)
}

/// Infers the exception kind involved, when the description implies one.
pub fn exception_kind(description: &str, stems: &[String]) -> Option<String> {
    // Explicit CamelCase ...Error names win.
    for word in description.split(|c: char| !c.is_alphanumeric()) {
        if word.ends_with("Error") && word.len() > 5 && word.chars().next()?.is_uppercase() {
            return Some(word.to_string());
        }
    }
    // Otherwise require an exception-ish context word before mapping
    // domain terms to kinds.
    let has_context = ["except", "error", "rais", "fail", "crash", "throw"]
        .iter()
        .any(|w| stems.iter().any(|s| s.starts_with(w)));
    if !has_context {
        return None;
    }
    let has = |w: &str| stems.iter().any(|s| s == &stem(w));
    if has("timeout") || has("deadline") {
        Some("TimeoutError".to_string())
    } else if has("connection") || has("network") || has("gateway") {
        Some("ConnectionError".to_string())
    } else if has("permission") || has("denied") {
        Some("PermissionError".to_string())
    } else if has("key") {
        Some("KeyError".to_string())
    } else if has("index") {
        Some("IndexError".to_string())
    } else if has("file") || has("io") || has("disk") {
        Some("IOError".to_string())
    } else if has("division") || has("zero") {
        Some("ZeroDivisionError".to_string())
    } else if has("invalid") || has("value") {
        Some("ValueError".to_string())
    } else {
        None
    }
}

/// Common function words ignored when building retrieval keywords.
pub fn is_stopword(stemmed: &str) -> bool {
    const STOP: &[&str] = &[
        "a",
        "an",
        "the",
        "of",
        "to",
        "in",
        "on",
        "at",
        "by",
        "for",
        "with",
        "and",
        "or",
        "so",
        "it",
        "its",
        "is",
        "are",
        "was",
        "be",
        "been",
        "that",
        "this",
        "these",
        "those",
        "where",
        "which",
        "within",
        "into",
        "due",
        "caus",
        "function",
        "scenario",
        "simulate",
        "introduce",
        "make",
        "should",
        "would",
        "will",
        "can",
        "may",
    ];
    STOP.contains(&stemmed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens;

    fn stems_of(text: &str) -> Vec<String> {
        tokens(text).iter().map(|t| stem(t)).collect()
    }

    #[test]
    fn each_class_has_a_clear_example() {
        let cases = [
            (
                "a timeout while waiting for the slow database",
                FaultClass::Timing,
            ),
            (
                "a race condition on the shared lock",
                FaultClass::Concurrency,
            ),
            ("leak the unclosed socket handle", FaultClass::ResourceLeak),
            (
                "overflow the bounded buffer capacity",
                FaultClass::BufferOverflow,
            ),
            (
                "swallow the exception in the handler",
                FaultClass::ExceptionHandling,
            ),
            ("omit the missing validation step", FaultClass::Omission),
            ("assign a corrupt incorrect value", FaultClass::WrongValue),
            (
                "pass a duplicate argument to the api",
                FaultClass::Interface,
            ),
        ];
        for (text, expected) in cases {
            let (best, _, conf) = classify(&stems_of(text));
            assert_eq!(best, Some(expected), "misclassified: {text}");
            assert!(conf > 0.0);
        }
    }

    #[test]
    fn off_by_one_trigram_boosts_wrong_value() {
        let (best, _, _) = classify(&stems_of("introduce an off by one mistake in the loop"));
        assert_eq!(best, Some(FaultClass::WrongValue));
    }

    #[test]
    fn no_keywords_means_no_class() {
        let (best, second, conf) = classify(&stems_of("hello pleasant world"));
        assert_eq!(best, None);
        assert_eq!(second, None);
        assert_eq!(conf, 0.0);
    }

    #[test]
    fn effect_priority_crash_over_slow() {
        let e = effect_hint(&stems_of("a slow request causing an unhandled crash"));
        assert_eq!(e, Some(EffectHint::Crash));
    }

    #[test]
    fn exception_kind_explicit_name_wins() {
        let k = exception_kind(
            "raise a ZeroDivisionError here",
            &stems_of("raise a ZeroDivisionError here"),
        );
        assert_eq!(k.as_deref(), Some("ZeroDivisionError"));
    }

    #[test]
    fn exception_kind_requires_context() {
        let text = "the connection pool of the database";
        assert_eq!(exception_kind(text, &stems_of(text)), None);
        let text2 = "fail with a connection problem";
        assert_eq!(
            exception_kind(text2, &stems_of(text2)).as_deref(),
            Some("ConnectionError")
        );
    }
}
