//! Fault-class keyword lexicons and effect/exception heuristics.
//!
//! Classification is weighted keyword scoring over stemmed tokens; the
//! best and second-best classes are both reported so hybrid descriptions
//! ("a timeout causing an unhandled exception") keep their causal
//! structure.

use crate::{stem, EffectHint};
use nfi_sfi::FaultClass;

/// Weighted keyword lexicon per fault class. Entries are stemmed at
/// match time so surface variants (locking / locks / locked) hit.
fn lexicon() -> Vec<(FaultClass, Vec<(&'static str, f32)>)> {
    vec![
        (
            FaultClass::Timing,
            vec![
                ("timeout", 3.5),
                ("delay", 2.0),
                ("slow", 2.0),
                ("latency", 2.0),
                ("stall", 2.0),
                ("expire", 2.0),
                ("deadline", 2.0),
                ("sleep", 1.5),
            ],
        ),
        (
            FaultClass::Concurrency,
            vec![
                ("race", 3.0),
                ("deadlock", 3.0),
                ("concurrent", 2.0),
                ("interleave", 2.0),
                ("lock", 2.0),
                ("mutex", 2.0),
                ("synchronization", 2.0),
                ("unsynchronized", 2.5),
                ("shared", 1.5),
                ("thread", 1.5),
                ("parallel", 1.5),
                ("atomic", 1.5),
            ],
        ),
        (
            FaultClass::ResourceLeak,
            vec![
                ("leak", 3.0),
                ("unclosed", 2.5),
                ("exhaust", 2.0),
                ("descriptor", 2.0),
                ("close", 1.5),
                ("handle", 1.5),
                ("socket", 1.5),
                ("connection", 1.0),
                ("release", 1.0),
            ],
        ),
        (
            FaultClass::BufferOverflow,
            vec![
                ("overflow", 3.0),
                ("buffer", 2.5),
                ("bound", 2.0),
                ("capacity", 2.0),
                ("overrun", 2.5),
            ],
        ),
        (
            FaultClass::ExceptionHandling,
            vec![
                ("exception", 1.5),
                ("unhandled", 1.5),
                ("uncaught", 1.5),
                ("catch", 1.5),
                ("except", 1.5),
                ("handler", 1.5),
                ("swallow", 2.0),
                ("propagate", 1.5),
                ("raise", 1.5),
                ("recovery", 1.5),
                ("retry", 1.0),
                ("error", 0.75),
            ],
        ),
        (
            FaultClass::Omission,
            vec![
                ("missing", 2.0),
                ("omit", 2.5),
                ("skip", 2.0),
                ("remove", 2.0),
                ("forget", 2.5),
                ("drop", 1.5),
                ("without", 1.0),
            ],
        ),
        (
            FaultClass::WrongValue,
            vec![
                ("wrong", 2.0),
                ("incorrect", 2.0),
                ("corrupt", 2.5),
                ("invalid", 1.5),
                ("boundary", 1.5),
                ("negate", 2.0),
                ("invert", 2.0),
            ],
        ),
        (
            FaultClass::Interface,
            vec![
                ("parameter", 2.0),
                ("argument", 2.0),
                ("api", 2.0),
                ("interface", 2.0),
                ("duplicate", 2.0),
                ("twice", 2.0),
                ("call", 0.5),
            ],
        ),
    ]
}

/// Classifies stemmed tokens; returns (best, second, confidence).
pub fn classify(stems: &[String]) -> (Option<FaultClass>, Option<FaultClass>, f32) {
    let mut scores: Vec<(FaultClass, f32)> = Vec::new();
    for (class, words) in lexicon() {
        let mut score = 0.0;
        for (word, weight) in words {
            let stemmed = stem(word);
            let hits = stems.iter().filter(|s| **s == stemmed).count();
            score += weight * hits as f32;
        }
        // "off by one" trigram boosts WrongValue.
        if class == FaultClass::WrongValue && has_trigram(stems, "off", "by", "one") {
            score += 3.0;
        }
        scores.push((class, score));
    }
    scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let (best_class, best) = scores[0];
    let (second_class, second) = scores[1];
    if best <= 0.0 {
        return (None, None, 0.0);
    }
    let confidence = ((best - second) / best).max(0.05);
    let secondary = if second > 0.0 { Some(second_class) } else { None };
    (Some(best_class), secondary, confidence)
}

fn has_trigram(stems: &[String], a: &str, b: &str, c: &str) -> bool {
    stems
        .windows(3)
        .any(|w| w[0] == a && w[1] == b && w[2] == c)
}

/// Effect-hint extraction, in priority order.
pub fn effect_hint(stems: &[String]) -> Option<EffectHint> {
    let any = |words: &[&str]| {
        words
            .iter()
            .any(|w| stems.iter().any(|s| s == &stem(w)))
    };
    if any(&["crash", "unhandled", "uncaught", "abort", "panic"]) {
        Some(EffectHint::Crash)
    } else if any(&["hang", "freeze", "stuck", "deadlock", "forever"]) {
        Some(EffectHint::Hang)
    } else if any(&["leak", "exhaust"]) {
        Some(EffectHint::Leak)
    } else if any(&["corrupt", "wrong", "incorrect", "silently"]) {
        Some(EffectHint::WrongOutput)
    } else if any(&["slow", "delay", "latency"]) {
        Some(EffectHint::Slow)
    } else {
        None
    }
}

/// Infers the exception kind involved, when the description implies one.
pub fn exception_kind(description: &str, stems: &[String]) -> Option<String> {
    // Explicit CamelCase ...Error names win.
    for word in description.split(|c: char| !c.is_alphanumeric()) {
        if word.ends_with("Error") && word.len() > 5 && word.chars().next()?.is_uppercase() {
            return Some(word.to_string());
        }
    }
    // Otherwise require an exception-ish context word before mapping
    // domain terms to kinds.
    let has_context = ["except", "error", "rais", "fail", "crash", "throw"]
        .iter()
        .any(|w| stems.iter().any(|s| s.starts_with(w)));
    if !has_context {
        return None;
    }
    let has = |w: &str| stems.iter().any(|s| s == &stem(w));
    if has("timeout") || has("deadline") {
        Some("TimeoutError".to_string())
    } else if has("connection") || has("network") || has("gateway") {
        Some("ConnectionError".to_string())
    } else if has("permission") || has("denied") {
        Some("PermissionError".to_string())
    } else if has("key") {
        Some("KeyError".to_string())
    } else if has("index") {
        Some("IndexError".to_string())
    } else if has("file") || has("io") || has("disk") {
        Some("IOError".to_string())
    } else if has("division") || has("zero") {
        Some("ZeroDivisionError".to_string())
    } else if has("invalid") || has("value") {
        Some("ValueError".to_string())
    } else {
        None
    }
}

/// Common function words ignored when building retrieval keywords.
pub fn is_stopword(stemmed: &str) -> bool {
    const STOP: &[&str] = &[
        "a", "an", "the", "of", "to", "in", "on", "at", "by", "for", "with", "and", "or", "so",
        "it", "its", "is", "are", "was", "be", "been", "that", "this", "these", "those", "where",
        "which", "within", "into", "due", "caus", "function", "scenario", "simulate", "introduce",
        "make", "should", "would", "will", "can", "may",
    ];
    STOP.contains(&stemmed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens;

    fn stems_of(text: &str) -> Vec<String> {
        tokens(text).iter().map(|t| stem(t)).collect()
    }

    #[test]
    fn each_class_has_a_clear_example() {
        let cases = [
            ("a timeout while waiting for the slow database", FaultClass::Timing),
            ("a race condition on the shared lock", FaultClass::Concurrency),
            ("leak the unclosed socket handle", FaultClass::ResourceLeak),
            ("overflow the bounded buffer capacity", FaultClass::BufferOverflow),
            ("swallow the exception in the handler", FaultClass::ExceptionHandling),
            ("omit the missing validation step", FaultClass::Omission),
            ("assign a corrupt incorrect value", FaultClass::WrongValue),
            ("pass a duplicate argument to the api", FaultClass::Interface),
        ];
        for (text, expected) in cases {
            let (best, _, conf) = classify(&stems_of(text));
            assert_eq!(best, Some(expected), "misclassified: {text}");
            assert!(conf > 0.0);
        }
    }

    #[test]
    fn off_by_one_trigram_boosts_wrong_value() {
        let (best, _, _) = classify(&stems_of("introduce an off by one mistake in the loop"));
        assert_eq!(best, Some(FaultClass::WrongValue));
    }

    #[test]
    fn no_keywords_means_no_class() {
        let (best, second, conf) = classify(&stems_of("hello pleasant world"));
        assert_eq!(best, None);
        assert_eq!(second, None);
        assert_eq!(conf, 0.0);
    }

    #[test]
    fn effect_priority_crash_over_slow() {
        let e = effect_hint(&stems_of("a slow request causing an unhandled crash"));
        assert_eq!(e, Some(EffectHint::Crash));
    }

    #[test]
    fn exception_kind_explicit_name_wins() {
        let k = exception_kind("raise a ZeroDivisionError here", &stems_of("raise a ZeroDivisionError here"));
        assert_eq!(k.as_deref(), Some("ZeroDivisionError"));
    }

    #[test]
    fn exception_kind_requires_context() {
        let text = "the connection pool of the database";
        assert_eq!(exception_kind(text, &stems_of(text)), None);
        let text2 = "fail with a connection problem";
        assert_eq!(
            exception_kind(text2, &stems_of(text2)).as_deref(),
            Some("ConnectionError")
        );
    }
}
