//! # nfi-nlp — the Natural Language Processing engine
//!
//! Implements the "data processing" stage of the paper's Fig. 1 workflow
//! (§III-B1): it "dissects the tester's description and restructures it
//! into a format tailored for LLM interpretation", and simultaneously
//! "analyzes the provided code to understand its structure".
//!
//! Given a natural-language fault description plus the target module,
//! [`analyze`] produces a structured [`FaultSpec`]:
//!
//! * a **fault class** guess with confidence (lexicon-based scoring over
//!   the shared [`FaultClass`] ontology),
//! * the **target function / symbols**, matched against the submitted
//!   code's symbol table (multi-word spans are fused: "process
//!   transaction function" → `process_transaction`),
//! * the **exception kind** involved (`TimeoutError`, ...),
//! * **trigger conditions** ("when ...", "after 30 seconds", ...),
//! * **quantities** with units (seconds, retries, percent),
//! * an **effect hint** (crash / hang / wrong output / leak / slow).
//!
//! ```
//! let module = nfi_pylite::parse(
//!     "def process_transaction(details):\n    pass\n",
//! )?;
//! let spec = nfi_nlp::analyze(
//!     "Simulate a scenario where a database transaction fails due to a \
//!      timeout, causing an unhandled exception within the process \
//!      transaction function.",
//!     Some(&module),
//! );
//! assert_eq!(spec.target_function.as_deref(), Some("process_transaction"));
//! assert_eq!(spec.exception_kind.as_deref(), Some("TimeoutError"));
//! # Ok::<(), nfi_pylite::PyliteError>(())
//! ```

pub mod condition;
pub mod critique;
mod entity;
mod lexicon;
mod quantity;

pub use condition::compile_when;
pub use critique::{parse_critique, CritiqueIntent};
pub use quantity::{Quantity, Unit};

use nfi_pylite::analysis::ModuleIndex;
use nfi_pylite::Module;
use nfi_sfi::FaultClass;

/// How the fault should manifest, as hinted by the description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EffectHint {
    /// An exception escapes (crash / unhandled exception).
    Crash,
    /// The system stops making progress.
    Hang,
    /// Results are silently wrong or corrupted.
    WrongOutput,
    /// Resources are exhausted or leaked.
    Leak,
    /// The operation completes but too slowly.
    Slow,
}

/// When the fault should trigger.
#[derive(Debug, Clone, PartialEq)]
pub enum Trigger {
    /// Unconditionally.
    Always,
    /// Guarded by a condition described in prose.
    When(String),
    /// After a delay / count captured by a quantity.
    After(Quantity),
    /// Randomly with the given probability.
    Probabilistic(f64),
}

/// The structured fault specification handed to the code generator —
/// the "detailed fault specification" of §III-A.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Original description verbatim.
    pub raw: String,
    /// Most likely fault class.
    pub class: Option<FaultClass>,
    /// Second-best class when the description is hybrid (e.g. a timeout
    /// *causing* an unhandled exception).
    pub secondary_class: Option<FaultClass>,
    /// Classification confidence in `[0, 1]` (margin-based).
    pub confidence: f32,
    /// Function in the submitted code the fault targets.
    pub target_function: Option<String>,
    /// Other code symbols mentioned.
    pub target_symbols: Vec<String>,
    /// Exception kind involved, when one is implied.
    pub exception_kind: Option<String>,
    /// Trigger condition.
    pub trigger: Trigger,
    /// Manifestation hint.
    pub effect: Option<EffectHint>,
    /// Quantities with units found in the text.
    pub quantities: Vec<Quantity>,
    /// Normalized content words (for retrieval).
    pub keywords: Vec<String>,
}

impl FaultSpec {
    /// Renders the spec as the structured prompt text fed to the
    /// generator (and used for retrieval).
    pub fn prompt_text(&self) -> String {
        let mut parts = vec![self.raw.clone()];
        if let Some(c) = self.class {
            parts.push(format!("class:{}", c.key()));
        }
        if let Some(f) = &self.target_function {
            parts.push(format!("target:{f}"));
        }
        if let Some(k) = &self.exception_kind {
            parts.push(format!("exception:{k}"));
        }
        parts.join(" | ")
    }
}

/// Tokenizes into lowercase word tokens (alphanumeric + underscore runs).
pub fn tokens(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() || c == '_' {
            cur.extend(c.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Light stemming for lexicon matching: plural `-s`, `-ing`, `-ed`.
pub fn stem(word: &str) -> String {
    let w = word;
    for suffix in ["ing", "ed"] {
        if w.len() > suffix.len() + 2 {
            if let Some(base) = w.strip_suffix(suffix) {
                return base.to_string();
            }
        }
    }
    if w.len() > 3 {
        if let Some(base) = w.strip_suffix('s') {
            return base.to_string();
        }
    }
    w.to_string()
}

/// A reusable NLP engine bound to one target module (or none).
///
/// [`analyze`] rebuilds the module's symbol index on every call; when a
/// whole batch of descriptions targets the same code — the E7 pipeline,
/// dataset generation, campaign scenario suites — that work is pure
/// overhead. An `Analyzer` hoists it: the [`entity::SymbolTable`] is
/// built once at construction, and each [`Analyzer::analyze`] call only
/// does the per-description work (tokenize, stem, classify, match).
///
/// Guaranteed equivalent: `Analyzer::new(code).analyze(d)` returns
/// exactly `analyze(d, code)` for every description `d`.
pub struct Analyzer {
    symbols: Option<entity::SymbolTable>,
}

impl Analyzer {
    /// Builds the engine, indexing `code`'s symbols once.
    pub fn new(code: Option<&Module>) -> Analyzer {
        Analyzer {
            symbols: code.map(|m| entity::SymbolTable::build(&ModuleIndex::build(m))),
        }
    }

    /// Analyzes one description against the pre-indexed module.
    pub fn analyze(&self, description: &str) -> FaultSpec {
        let toks = tokens(description);
        let stems: Vec<String> = toks.iter().map(|t| stem(t)).collect();

        let (class, secondary_class, confidence) = lexicon::classify(&stems);
        let quantities = quantity::extract(description);
        let effect = lexicon::effect_hint(&stems);
        let exception_kind = lexicon::exception_kind(description, &stems);
        let trigger = extract_trigger(description, &toks, &quantities);

        let (target_function, target_symbols) = match &self.symbols {
            Some(table) => table.match_symbols(&toks),
            None => (None, Vec::new()),
        };

        let keywords: Vec<String> = stems
            .iter()
            .filter(|s| !lexicon::is_stopword(s))
            .cloned()
            .collect();

        FaultSpec {
            raw: description.to_string(),
            class,
            secondary_class,
            confidence,
            target_function,
            target_symbols,
            exception_kind,
            trigger,
            effect,
            quantities,
            keywords,
        }
    }
}

/// Analyzes a fault description against an optional target module,
/// producing the structured [`FaultSpec`]. This is the NLP engine's
/// public entry point.
pub fn analyze(description: &str, code: Option<&Module>) -> FaultSpec {
    Analyzer::new(code).analyze(description)
}

/// Analyzes a batch of descriptions against one target module,
/// amortizing the symbol-index construction (and the lexicon's interned
/// index, which is process-wide already) across the whole batch.
/// Element `i` of the result equals `analyze(descriptions[i], code)`.
pub fn analyze_batch<S: AsRef<str>>(descriptions: &[S], code: Option<&Module>) -> Vec<FaultSpec> {
    let analyzer = Analyzer::new(code);
    descriptions
        .iter()
        .map(|d| analyzer.analyze(d.as_ref()))
        .collect()
}

fn extract_trigger(description: &str, toks: &[String], quantities: &[Quantity]) -> Trigger {
    let lower = description.to_lowercase();
    // Probabilistic: "50% of the time", "sometimes", "intermittently".
    if let Some(q) = quantities.iter().find(|q| q.unit == Unit::Percent) {
        return Trigger::Probabilistic(q.value / 100.0);
    }
    if toks
        .iter()
        .any(|t| t == "sometimes" || t == "intermittently" || t == "occasionally")
    {
        return Trigger::Probabilistic(0.5);
    }
    // After: "after 30 seconds", "after 3 retries".
    if lower.contains("after ") {
        if let Some(q) = quantities.first() {
            return Trigger::After(q.clone());
        }
    }
    // When/if clause: capture trailing prose.
    for marker in ["when ", "whenever ", "if ", "in case "] {
        if let Some(pos) = lower.find(marker) {
            let clause: String = description[pos + marker.len()..]
                .split(['.', ','])
                .next()
                .unwrap_or("")
                .trim()
                .to_string();
            if !clause.is_empty() {
                return Trigger::When(clause);
            }
        }
    }
    Trigger::Always
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfi_pylite::parse;

    fn ecommerce() -> Module {
        parse(
            "def process_transaction(details):\n    pass\ndef retry_transaction(details):\n    pass\n",
        )
        .unwrap()
    }

    #[test]
    fn running_example_spec() {
        let spec = analyze(
            "Simulate a scenario where a database transaction fails due to a timeout, causing an unhandled exception within the process transaction function.",
            Some(&ecommerce()),
        );
        assert_eq!(spec.target_function.as_deref(), Some("process_transaction"));
        assert_eq!(spec.exception_kind.as_deref(), Some("TimeoutError"));
        assert_eq!(spec.effect, Some(EffectHint::Crash));
        assert_eq!(spec.class, Some(FaultClass::Timing));
        assert_eq!(spec.secondary_class, Some(FaultClass::ExceptionHandling));
    }

    #[test]
    fn race_condition_description() {
        let spec = analyze(
            "Introduce a race condition between two worker threads updating the shared counter without holding the lock.",
            None,
        );
        assert_eq!(spec.class, Some(FaultClass::Concurrency));
        assert!(spec.confidence > 0.0);
    }

    #[test]
    fn leak_description() {
        let spec = analyze(
            "Leak the database connection handle by never closing it after the query completes.",
            None,
        );
        assert_eq!(spec.class, Some(FaultClass::ResourceLeak));
        assert_eq!(spec.effect, Some(EffectHint::Leak));
    }

    #[test]
    fn buffer_overflow_description() {
        let spec = analyze(
            "Write past the end of the request buffer, overflowing its capacity.",
            None,
        );
        assert_eq!(spec.class, Some(FaultClass::BufferOverflow));
    }

    #[test]
    fn omission_description() {
        let spec = analyze(
            "Remove the call to validate_order so invalid orders are silently accepted.",
            None,
        );
        assert_eq!(spec.class, Some(FaultClass::Omission));
    }

    #[test]
    fn trigger_when_clause() {
        let spec = analyze("Corrupt the result when the input list is empty.", None);
        assert_eq!(
            spec.trigger,
            Trigger::When("the input list is empty".to_string())
        );
    }

    #[test]
    fn trigger_probabilistic() {
        let spec = analyze("Fail the request 25% of the time.", None);
        assert_eq!(spec.trigger, Trigger::Probabilistic(0.25));
        let spec = analyze("Intermittently drop the message.", None);
        assert_eq!(spec.trigger, Trigger::Probabilistic(0.5));
    }

    #[test]
    fn trigger_after_quantity() {
        let spec = analyze("Hang the worker after 30 seconds of processing.", None);
        match spec.trigger {
            Trigger::After(q) => {
                assert_eq!(q.value, 30.0);
                assert_eq!(q.unit, Unit::Seconds);
            }
            other => panic!("expected After, got {other:?}"),
        }
    }

    #[test]
    fn quantities_are_extracted() {
        let spec = analyze("Retry 3 times with a 1.5 second delay.", None);
        assert!(spec
            .quantities
            .iter()
            .any(|q| q.value == 3.0 && q.unit == Unit::Count));
        assert!(spec
            .quantities
            .iter()
            .any(|q| q.value == 1.5 && q.unit == Unit::Seconds));
    }

    #[test]
    fn prompt_text_includes_structured_fields() {
        let spec = analyze(
            "Simulate a timeout in the process transaction function.",
            Some(&ecommerce()),
        );
        let p = spec.prompt_text();
        assert!(p.contains("class:timing"));
        assert!(p.contains("target:process_transaction"));
    }

    #[test]
    fn stemming_is_conservative() {
        assert_eq!(stem("locks"), "lock");
        assert_eq!(stem("bus"), "bus", "short words untouched");
        assert_eq!(stem("closing"), "clos");
    }

    #[test]
    fn empty_description_yields_neutral_spec() {
        let spec = analyze("", None);
        assert_eq!(spec.class, None);
        assert_eq!(spec.trigger, Trigger::Always);
        assert!(spec.keywords.is_empty());
    }

    #[test]
    fn batch_analysis_equals_per_item_analysis() {
        let module = ecommerce();
        let descriptions = [
            "Simulate a timeout in the process transaction function.",
            "Leak the database connection handle by never closing it.",
            "Introduce a race condition on the shared counter.",
            "",
            "Retry 3 times with a 1.5 second delay in retry_transaction.",
        ];
        for code in [Some(&module), None] {
            let batch = analyze_batch(&descriptions, code);
            assert_eq!(batch.len(), descriptions.len());
            for (d, got) in descriptions.iter().zip(&batch) {
                assert_eq!(got, &analyze(d, code), "diverged on {d:?}");
            }
        }
    }
}
