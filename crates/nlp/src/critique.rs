//! Parsing tester critiques into structured refinement intents.
//!
//! In the paper's running example the tester replies *"introduce a retry
//! mechanism instead of just logging the error"* and the next generation
//! incorporates a retry path; this module is the NL half of that loop
//! (the RLHF mechanism consumes the parsed intents).

use crate::quantity::{extract, Quantity, Unit};
use crate::{stem, tokens};

/// A structured refinement intent extracted from a tester's critique.
#[derive(Debug, Clone, PartialEq)]
pub enum CritiqueIntent {
    /// Add a retry path (optionally with an attempt budget).
    AddRetry {
        /// Requested number of attempts, when stated.
        attempts: Option<u32>,
    },
    /// Raise / expect a different exception kind.
    UseExceptionKind(String),
    /// Log the error where it is handled.
    AddLogging,
    /// Stop merely logging (usually paired with another intent).
    RemoveLogging,
    /// Let the exception propagate to the caller.
    PropagateError,
    /// Swallow the error silently.
    SwallowError,
    /// Fire only under the described condition.
    TriggerOnlyWhen(String),
    /// Fire intermittently with the given probability.
    MakeIntermittent(f64),
    /// Change the injected delay.
    ChangeDelay(Quantity),
    /// The generation is accepted as-is.
    Approve,
    /// Unrecognized feedback, kept verbatim.
    Other(String),
}

/// Parses a critique into zero or more intents (order follows the text).
pub fn parse_critique(text: &str) -> Vec<CritiqueIntent> {
    let lower = text.to_lowercase();
    let toks = tokens(text);
    let stems: Vec<String> = toks.iter().map(|t| stem(t)).collect();
    let has = |w: &str| stems.iter().any(|s| s == &stem(w));
    let mut intents = Vec::new();

    if has("perfect")
        || has("approve")
        || lower.contains("looks good")
        || lower.contains("ship it")
        || lower.contains("exactly what")
    {
        intents.push(CritiqueIntent::Approve);
    }

    if has("retry") || has("retries") || lower.contains("try again") {
        let attempts = extract(text)
            .into_iter()
            .find(|q| q.unit == Unit::Count || q.unit == Unit::None)
            .map(|q| q.value as u32);
        intents.push(CritiqueIntent::AddRetry { attempts });
    }

    // Explicit exception-kind request ("raise a ConnectionError instead").
    for word in text.split(|c: char| !c.is_alphanumeric()) {
        if word.ends_with("Error") && word.len() > 5 {
            intents.push(CritiqueIntent::UseExceptionKind(word.to_string()));
            break;
        }
    }

    if lower.contains("instead of just logging") || lower.contains("not just log") {
        intents.push(CritiqueIntent::RemoveLogging);
    } else if has("log") {
        intents.push(CritiqueIntent::AddLogging);
    }

    if has("propagate") || lower.contains("let the exception") || lower.contains("bubble up") {
        intents.push(CritiqueIntent::PropagateError);
    }
    if has("swallow") || lower.contains("ignore the error") || lower.contains("silently ignore") {
        intents.push(CritiqueIntent::SwallowError);
    }

    if let Some(pos) = lower.find("only when ") {
        let clause = text[pos + "only when ".len()..]
            .split(['.', ','])
            .next()
            .unwrap_or("")
            .trim()
            .to_string();
        if !clause.is_empty() {
            intents.push(CritiqueIntent::TriggerOnlyWhen(clause));
        }
    }

    if has("intermittent") || has("sometimes") || has("occasionally") {
        let p = extract(text)
            .into_iter()
            .find(|q| q.unit == Unit::Percent)
            .map(|q| q.value / 100.0)
            .unwrap_or(0.5);
        intents.push(CritiqueIntent::MakeIntermittent(p));
    }

    if has("delay") || has("longer") || has("shorter") || has("sleep") {
        if let Some(q) = extract(text)
            .into_iter()
            .find(|q| matches!(q.unit, Unit::Seconds | Unit::Milliseconds))
        {
            intents.push(CritiqueIntent::ChangeDelay(q));
        }
    }

    if intents.is_empty() {
        intents.push(CritiqueIntent::Other(text.to_string()));
    }
    intents
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_example_critique() {
        let intents =
            parse_critique("introduce a retry mechanism instead of just logging the error");
        assert!(intents.contains(&CritiqueIntent::AddRetry { attempts: None }));
        assert!(intents.contains(&CritiqueIntent::RemoveLogging));
    }

    #[test]
    fn retry_with_count() {
        let intents = parse_critique("retry 3 times before giving up");
        assert!(intents.contains(&CritiqueIntent::AddRetry { attempts: Some(3) }));
    }

    #[test]
    fn exception_kind_request() {
        let intents = parse_critique("raise a ConnectionError instead of a generic failure");
        assert!(intents
            .iter()
            .any(|i| matches!(i, CritiqueIntent::UseExceptionKind(k) if k == "ConnectionError")));
    }

    #[test]
    fn approval() {
        assert!(parse_critique("looks good, ship it").contains(&CritiqueIntent::Approve));
        assert!(parse_critique("Perfect.").contains(&CritiqueIntent::Approve));
    }

    #[test]
    fn trigger_only_when() {
        let intents = parse_critique("trigger the fault only when the cart is empty");
        assert!(intents
            .iter()
            .any(|i| matches!(i, CritiqueIntent::TriggerOnlyWhen(c) if c == "the cart is empty")));
    }

    #[test]
    fn intermittent_with_percent() {
        let intents = parse_critique("make it intermittent, around 20% of requests");
        assert!(intents
            .iter()
            .any(|i| matches!(i, CritiqueIntent::MakeIntermittent(p) if (*p - 0.2).abs() < 1e-9)));
    }

    #[test]
    fn delay_change() {
        let intents = parse_critique("use a longer delay of 45 seconds");
        assert!(intents.iter().any(|i| matches!(
            i,
            CritiqueIntent::ChangeDelay(Quantity { value, unit: Unit::Seconds }) if *value == 45.0
        )));
    }

    #[test]
    fn propagate_and_log() {
        let intents = parse_critique("log the error and let the exception propagate");
        assert!(intents.contains(&CritiqueIntent::AddLogging));
        assert!(intents.contains(&CritiqueIntent::PropagateError));
    }

    #[test]
    fn unknown_text_is_other() {
        let intents = parse_critique("hmm, interesting approach");
        assert!(matches!(intents.as_slice(), [CritiqueIntent::Other(_)]));
    }
}
