//! Quantity extraction: numbers with units from raw description text.

/// Unit attached to an extracted quantity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Seconds (normalized from s / sec / seconds / minutes).
    Seconds,
    /// Milliseconds.
    Milliseconds,
    /// A count (times, retries, attempts, items).
    Count,
    /// A percentage.
    Percent,
    /// Bare number.
    None,
}

/// A number found in the text, with its unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantity {
    /// Numeric value (minutes are converted to seconds).
    pub value: f64,
    /// Unit.
    pub unit: Unit,
}

/// Extracts quantities from raw text. Handles decimals (`1.5`), the `%`
/// sign, and unit words following the number.
pub fn extract(text: &str) -> Vec<Quantity> {
    let chars: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i].is_ascii_digit() {
            let start = i;
            let mut seen_dot = false;
            while i < chars.len() && (chars[i].is_ascii_digit() || (chars[i] == '.' && !seen_dot)) {
                if chars[i] == '.' {
                    // Only treat as decimal point when a digit follows.
                    if i + 1 < chars.len() && chars[i + 1].is_ascii_digit() {
                        seen_dot = true;
                    } else {
                        break;
                    }
                }
                i += 1;
            }
            let number: String = chars[start..i].iter().collect();
            let Ok(value) = number.parse::<f64>() else {
                continue;
            };
            // Percent sign directly after (possibly spaces).
            let mut j = i;
            while j < chars.len() && chars[j] == ' ' {
                j += 1;
            }
            if j < chars.len() && chars[j] == '%' {
                out.push(Quantity {
                    value,
                    unit: Unit::Percent,
                });
                i = j + 1;
                continue;
            }
            // Unit word following the number.
            let word = next_word(&chars, i);
            let (unit, value) = match word.as_str() {
                "second" | "seconds" | "sec" | "secs" | "s" => (Unit::Seconds, value),
                "minute" | "minutes" | "min" | "mins" => (Unit::Seconds, value * 60.0),
                "millisecond" | "milliseconds" | "ms" => (Unit::Milliseconds, value),
                "time" | "times" | "retry" | "retries" | "attempt" | "attempts" | "item"
                | "items" | "request" | "requests" | "iteration" | "iterations" => {
                    (Unit::Count, value)
                }
                "percent" | "percentage" => (Unit::Percent, value),
                _ => (Unit::None, value),
            };
            out.push(Quantity { value, unit });
        } else {
            i += 1;
        }
    }
    out
}

fn next_word(chars: &[char], mut i: usize) -> String {
    while i < chars.len() && !chars[i].is_alphanumeric() {
        // Stop at sentence punctuation; units must be adjacent-ish.
        if chars[i] == '.' || chars[i] == ',' {
            return String::new();
        }
        i += 1;
    }
    let mut w = String::new();
    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
        w.extend(chars[i].to_lowercase());
        i += 1;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_and_decimals() {
        let q = extract("wait 1.5 seconds then 30 s");
        assert_eq!(q.len(), 2);
        assert_eq!(
            q[0],
            Quantity {
                value: 1.5,
                unit: Unit::Seconds
            }
        );
        assert_eq!(
            q[1],
            Quantity {
                value: 30.0,
                unit: Unit::Seconds
            }
        );
    }

    #[test]
    fn minutes_normalize_to_seconds() {
        let q = extract("after 2 minutes");
        assert_eq!(
            q[0],
            Quantity {
                value: 120.0,
                unit: Unit::Seconds
            }
        );
    }

    #[test]
    fn percent_sign_and_word() {
        assert_eq!(
            extract("fail 25% of requests")[0],
            Quantity {
                value: 25.0,
                unit: Unit::Percent
            }
        );
        assert_eq!(
            extract("fail 10 percent of requests")[0],
            Quantity {
                value: 10.0,
                unit: Unit::Percent
            }
        );
    }

    #[test]
    fn counts() {
        let q = extract("retry 3 times across 5 attempts");
        assert_eq!(
            q[0],
            Quantity {
                value: 3.0,
                unit: Unit::Count
            }
        );
        assert_eq!(
            q[1],
            Quantity {
                value: 5.0,
                unit: Unit::Count
            }
        );
    }

    #[test]
    fn bare_numbers_have_no_unit() {
        assert_eq!(
            extract("use version 7 now")[0],
            Quantity {
                value: 7.0,
                unit: Unit::None
            }
        );
    }

    #[test]
    fn number_at_end_of_sentence() {
        let q = extract("set the limit to 8.");
        assert_eq!(
            q[0],
            Quantity {
                value: 8.0,
                unit: Unit::None
            }
        );
    }

    #[test]
    fn no_numbers_no_quantities() {
        assert!(extract("no digits here").is_empty());
    }
}
