//! Named-entity extraction for code symbols.
//!
//! Matches description tokens against the submitted code's symbol table
//! (the "named entity recognition" of §III-B1). Multi-word spans fuse
//! into snake_case identifiers: "the process transaction function"
//! matches `process_transaction`.

use nfi_pylite::analysis::ModuleIndex;

/// The module's symbols pre-sorted for span matching — built **once**
/// per module and reused across every description analyzed against it.
/// This is the batched-NLP analogue of the interned lexicon: the
/// per-call work that [`match_symbols`] used to redo (collecting and
/// length-sorting functions / globals / params) happens at construction.
#[derive(Debug, Clone)]
pub struct SymbolTable {
    /// Function names, longest first.
    functions: Vec<String>,
    /// Global names, longest first.
    globals: Vec<String>,
    /// Parameter names, longest first.
    params: Vec<String>,
}

impl SymbolTable {
    /// Collects and sorts the index's symbols.
    pub fn build(index: &ModuleIndex) -> SymbolTable {
        // Longer names first so "retry_transaction" wins over
        // "transaction".
        let longest_first = |mut names: Vec<String>| {
            names.sort_by_key(|n| std::cmp::Reverse(n.len()));
            names
        };
        SymbolTable {
            functions: longest_first(index.functions.iter().map(|f| f.name.clone()).collect()),
            globals: longest_first(index.globals.to_vec()),
            params: longest_first(
                index
                    .functions
                    .iter()
                    .flat_map(|f| f.params.iter().cloned())
                    .collect(),
            ),
        }
    }

    /// Matches tokens against the table.
    ///
    /// Returns `(target_function, other_symbols)`: the first *function*
    /// matched is the injection target; every other matched symbol
    /// (globals, parameters, further functions) lands in the symbol
    /// list.
    pub fn match_symbols(&self, tokens: &[String]) -> (Option<String>, Vec<String>) {
        let mut target_function = None;
        let mut symbols = Vec::new();

        for name in &self.functions {
            if matches_name(tokens, name) {
                if target_function.is_none() {
                    target_function = Some(name.clone());
                } else if !symbols.contains(name) {
                    symbols.push(name.clone());
                }
            }
        }
        for name in self.globals.iter().chain(&self.params) {
            if matches_name(tokens, name)
                && !symbols.contains(name)
                && target_function.as_ref() != Some(name)
            {
                symbols.push(name.clone());
            }
        }
        (target_function, symbols)
    }
}

#[cfg(test)]
fn match_symbols(tokens: &[String], index: &ModuleIndex) -> (Option<String>, Vec<String>) {
    SymbolTable::build(index).match_symbols(tokens)
}

/// Whether `name` (a snake_case identifier) appears in the tokens either
/// verbatim or as a consecutive word span.
fn matches_name(tokens: &[String], name: &str) -> bool {
    let lower = name.to_lowercase();
    if tokens.contains(&lower) {
        return true;
    }
    let parts: Vec<&str> = lower.split('_').filter(|p| !p.is_empty()).collect();
    if parts.len() < 2 {
        return false;
    }
    tokens
        .windows(parts.len())
        .any(|w| w.iter().map(String::as_str).eq(parts.iter().copied()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens;
    use nfi_pylite::parse;

    fn index() -> ModuleIndex {
        let m = parse(
            "inventory = {}\ndef process_transaction(transaction_details):\n    pass\ndef reserve_stock(item, qty):\n    pass\n",
        )
        .unwrap();
        ModuleIndex::build(&m)
    }

    #[test]
    fn verbatim_identifier_matches() {
        let (f, _) = match_symbols(&tokens("break process_transaction badly"), &index());
        assert_eq!(f.as_deref(), Some("process_transaction"));
    }

    #[test]
    fn multi_word_span_fuses_to_snake_case() {
        let (f, _) = match_symbols(&tokens("inside the process transaction function"), &index());
        assert_eq!(f.as_deref(), Some("process_transaction"));
    }

    #[test]
    fn globals_and_params_go_to_symbols() {
        let (f, syms) = match_symbols(
            &tokens("corrupt the inventory after reserve stock runs with qty"),
            &index(),
        );
        assert_eq!(f.as_deref(), Some("reserve_stock"));
        assert!(syms.contains(&"inventory".to_string()));
        assert!(syms.contains(&"qty".to_string()));
    }

    #[test]
    fn single_word_names_do_not_fuzzy_match() {
        let m = parse("def take():\n    pass\n").unwrap();
        let idx = ModuleIndex::build(&m);
        let (f, _) = match_symbols(&tokens("do not match partial words like taken"), &idx);
        assert_eq!(f, None);
        let (f, _) = match_symbols(&tokens("but take matches exactly"), &idx);
        assert_eq!(f.as_deref(), Some("take"));
    }

    #[test]
    fn no_match_yields_none() {
        let (f, syms) = match_symbols(&tokens("completely unrelated text"), &index());
        assert_eq!(f, None);
        assert!(syms.is_empty());
    }
}
