//! Compiling simple trigger clauses into executable guard expressions.
//!
//! `Trigger::When("the cart is empty")` is prose; when the clause fits a
//! small set of recognizable shapes over the target function's symbols,
//! it compiles to a PyLite guard so the injected fault genuinely fires
//! only under the described condition (raising trigger fidelity from
//! "noted in the rationale" to "compiled into the code"):
//!
//! * `<symbol> is empty` / `<symbol> is not empty` → `len(s) == 0` / `!= 0`
//! * `<symbol> is none` / `is not none` → `s == None` / `s != None`
//! * `<symbol> (is) greater/less than N`, `exceeds N`, `is at least N`
//! * `<symbol> equals N` / `is N`
//! * `<symbol> contains "word"` → `"word" in s`

use crate::tokens;
use nfi_pylite::ast::{build, CmpOp, Expr};

/// Attempts to compile a prose clause into a guard expression over the
/// given in-scope symbols (function parameters and module globals).
/// Returns `None` when the clause does not match a known shape or names
/// no visible symbol.
pub fn compile_when(clause: &str, symbols: &[String]) -> Option<Expr> {
    let toks = tokens(clause);
    if toks.is_empty() {
        return None;
    }
    // Locate the symbol the clause talks about (first token matching a
    // visible symbol; multi-word fusion like entity matching).
    let (sym, sym_end) = find_symbol(&toks, symbols)?;
    let rest: Vec<&str> = toks[sym_end..].iter().map(String::as_str).collect();
    let negated = rest.contains(&"not");
    let rest_joined = rest.join(" ");

    // <sym> is [not] empty
    if rest.contains(&"empty") {
        let op = if negated { CmpOp::Ne } else { CmpOp::Eq };
        return Some(build::cmp(
            op,
            build::call("len", vec![build::name(&sym)]),
            build::int(0),
        ));
    }
    // <sym> is [not] none / missing
    if rest.contains(&"none") || rest.contains(&"missing") {
        let op = if negated { CmpOp::Ne } else { CmpOp::Eq };
        return Some(build::cmp(op, build::name(&sym), build::none()));
    }
    // Numeric comparisons.
    let number = rest.iter().find_map(|t| t.parse::<i64>().ok());
    if let Some(n) = number {
        let op = if rest_joined.contains("greater than or equal")
            || rest_joined.contains("at least")
        {
            Some(CmpOp::Ge)
        } else if rest_joined.contains("less than or equal") || rest_joined.contains("at most") {
            Some(CmpOp::Le)
        } else if rest_joined.contains("greater than")
            || rest_joined.contains("exceed")
            || rest_joined.contains("exceeds")
            || rest_joined.contains("above")
            || rest_joined.contains("more than")
        {
            Some(CmpOp::Gt)
        } else if rest_joined.contains("less than") || rest_joined.contains("below") {
            Some(CmpOp::Lt)
        } else if rest_joined.contains("equal") || rest.first() == Some(&"is") {
            Some(CmpOp::Eq)
        } else {
            None
        };
        if let Some(op) = op {
            return Some(build::cmp(op, build::name(&sym), build::int(n)));
        }
    }
    // <sym> contains "<word>" — take the word after `contains`.
    if let Some(pos) = rest.iter().position(|t| *t == "contains") {
        if let Some(word) = rest.get(pos + 1) {
            return Some(build::cmp(CmpOp::In, build::str_(word), build::name(&sym)));
        }
    }
    None
}

/// Finds the first visible symbol mentioned in the tokens (verbatim or
/// as a fused multi-word span); returns the symbol and the index just
/// past its mention.
fn find_symbol(toks: &[String], symbols: &[String]) -> Option<(String, usize)> {
    let mut sorted: Vec<&String> = symbols.iter().collect();
    sorted.sort_by_key(|s| std::cmp::Reverse(s.len()));
    for sym in sorted {
        let lower = sym.to_lowercase();
        if let Some(i) = toks.iter().position(|t| *t == lower) {
            return Some((sym.clone(), i + 1));
        }
        let parts: Vec<&str> = lower.split('_').filter(|p| !p.is_empty()).collect();
        if parts.len() >= 2 {
            for (i, w) in toks.windows(parts.len()).enumerate() {
                if w.iter().map(String::as_str).eq(parts.iter().copied()) {
                    return Some((sym.clone(), i + parts.len()));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfi_pylite::print_expr;

    fn syms(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn compiles_is_empty() {
        let e = compile_when("the cart is empty", &syms(&["cart", "user"])).unwrap();
        assert_eq!(print_expr(&e), "len(cart) == 0");
        let e = compile_when("cart is not empty", &syms(&["cart"])).unwrap();
        assert_eq!(print_expr(&e), "len(cart) != 0");
    }

    #[test]
    fn compiles_is_none() {
        let e = compile_when("the session is none", &syms(&["session"])).unwrap();
        assert_eq!(print_expr(&e), "session == None");
        let e = compile_when("payload is missing", &syms(&["payload"])).unwrap();
        assert_eq!(print_expr(&e), "payload == None");
    }

    #[test]
    fn compiles_numeric_comparisons() {
        let s = syms(&["qty", "total"]);
        assert_eq!(
            print_expr(&compile_when("qty is greater than 10", &s).unwrap()),
            "qty > 10"
        );
        assert_eq!(
            print_expr(&compile_when("the total exceeds 100", &s).unwrap()),
            "total > 100"
        );
        assert_eq!(
            print_expr(&compile_when("qty is at least 3", &s).unwrap()),
            "qty >= 3"
        );
        assert_eq!(
            print_expr(&compile_when("qty is less than 2", &s).unwrap()),
            "qty < 2"
        );
        assert_eq!(
            print_expr(&compile_when("qty equals 7", &s).unwrap()),
            "qty == 7"
        );
    }

    #[test]
    fn compiles_multiword_symbols() {
        let e = compile_when(
            "the transaction details is none",
            &syms(&["transaction_details"]),
        )
        .unwrap();
        assert_eq!(print_expr(&e), "transaction_details == None");
    }

    #[test]
    fn compiles_contains() {
        let e = compile_when("name contains admin", &syms(&["name"])).unwrap();
        assert_eq!(print_expr(&e), "\"admin\" in name");
    }

    #[test]
    fn unknown_shapes_return_none() {
        let s = syms(&["cart"]);
        assert!(compile_when("the moon is full", &s).is_none());
        assert!(compile_when("cart feels heavy somehow", &s).is_none());
        assert!(compile_when("", &s).is_none());
    }
}
