//! Table-driven semantics battery for the PyLite VM: every case runs a
//! small program and checks its printed output, pinning down the exact
//! Python-subset behaviour the fault-injection experiments rely on.

use nfi_pylite::{Machine, MachineConfig, RunStatus};

/// Runs a program and returns its output, asserting clean completion.
fn out(src: &str) -> String {
    let mut m = Machine::new(MachineConfig::default());
    let o = m.run_source(src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    assert!(
        matches!(o.status, RunStatus::Completed),
        "program failed: {:?}\n{src}\noutput so far: {}",
        o.status,
        o.output
    );
    o.output
}

/// Runs a program expecting an uncaught exception of the given kind.
fn raises(src: &str, kind: &str) {
    let mut m = Machine::new(MachineConfig::default());
    let o = m.run_source(src).unwrap();
    match o.status {
        RunStatus::Uncaught(info) => assert_eq!(info.kind, kind, "{src}"),
        other => panic!("expected {kind}, got {other:?}\n{src}"),
    }
}

macro_rules! cases {
    ($name:ident: $($src:expr => $expected:expr),+ $(,)?) => {
        #[test]
        fn $name() {
            $(assert_eq!(out($src), $expected, "program: {}", $src);)+
        }
    };
}

cases! { arithmetic:
    "print(2 + 3 * 4)\n" => "14\n",
    "print((2 + 3) * 4)\n" => "20\n",
    "print(2 ** 3 ** 2)\n" => "512\n",
    "print(-2 ** 2)\n" => "-4\n",
    "print(7 // 2, -7 // 2)\n" => "3 -4\n",
    "print(7 % 3, -7 % 3)\n" => "1 2\n",
    "print(10 / 4)\n" => "2.5\n",
    "print(1.5 + 1.5)\n" => "3.0\n",
    "print(abs(-5), abs(2.5))\n" => "5 2.5\n",
}

cases! { comparisons_and_booleans:
    "print(1 < 2, 2 <= 2, 3 > 4, 4 >= 5)\n" => "True True False False\n",
    "print(1 == 1.0, \"a\" == \"a\", [1] == [1])\n" => "True True True\n",
    "print(not True, not 0, not \"\")\n" => "False True True\n",
    "print(True and 5, False and 5, True or 9, 0 or 9)\n" => "5 False True 9\n",
    "print(1 if 2 > 1 else 0)\n" => "1\n",
    "print(2 in [1, 2], 3 not in [1, 2])\n" => "True True\n",
    "print(\"ell\" in \"hello\", \"k\" in {\"k\": 1})\n" => "True True\n",
}

cases! { strings:
    "print(\"a\" + \"b\" * 3)\n" => "abbb\n",
    "print(len(\"hello\"), \"hello\"[0], \"hello\"[-1])\n" => "5 h o\n",
    "s = \"a,b,,c\"\nprint(s.split(\",\"))\n" => "[\"a\", \"b\", \"\", \"c\"]\n",
    "print(\"x\".join([\"1\", \"2\", \"3\"]))\n" => "1x2x3\n",
    "print(\"AbC\".upper(), \"AbC\".lower())\n" => "ABC abc\n",
    "print(\"  pad  \".strip())\n" => "pad\n",
    "print(\"hello\".startswith(\"he\"), \"hello\".endswith(\"lo\"))\n" => "True True\n",
    "print(\"banana\".count(\"an\"), \"banana\".replace(\"a\", \"o\"))\n" => "2 bonono\n",
    "print(str(42) + \"!\")\n" => "42!\n",
}

cases! { lists:
    "l = [3, 1, 2]\nl.append(4)\nprint(l, len(l))\n" => "[3, 1, 2, 4] 4\n",
    "l = [1, 2, 3]\nprint(l.pop(), l.pop(0), l)\n" => "3 1 [2]\n",
    "l = [1, 3]\nl.insert(1, 2)\nprint(l)\n" => "[1, 2, 3]\n",
    "l = [2, 1, 3]\nl.sort()\nprint(l)\nl.reverse()\nprint(l)\n" => "[1, 2, 3]\n[3, 2, 1]\n",
    "l = [1, 2, 2, 3]\nprint(l.count(2), l.index(3))\n" => "2 3\n",
    "l = [1]\nl.extend([2, 3])\nprint(l + [4])\n" => "[1, 2, 3, 4]\n",
    "a = [1, 2]\nb = a\nb.append(3)\nprint(a)\n" => "[1, 2, 3]\n",
    "a = [1, 2]\nb = a.copy()\nb.append(3)\nprint(a, b)\n" => "[1, 2] [1, 2, 3]\n",
    "print([0] * 3, [1, 2][-1])\n" => "[0, 0, 0] 2\n",
    "print(sorted([3, 1, 2]), min([5, 2]), max(7, 9), sum([1, 2, 3]))\n" => "[1, 2, 3] 2 9 6\n",
}

cases! { dicts:
    "d = {\"a\": 1}\nd[\"b\"] = 2\nprint(d[\"a\"], d[\"b\"], len(d))\n" => "1 2 2\n",
    "d = {\"a\": 1}\nprint(d.get(\"a\"), d.get(\"z\"), d.get(\"z\", 9))\n" => "1 None 9\n",
    "d = {\"a\": 1, \"b\": 2}\nprint(d.keys(), d.values())\n" => "[\"a\", \"b\"] [1, 2]\n",
    "d = {\"a\": 1}\nd.update({\"b\": 2, \"a\": 3})\nprint(d)\n" => "{\"a\": 3, \"b\": 2}\n",
    "d = {\"a\": 1}\nprint(d.pop(\"a\"), d.pop(\"z\", -1), len(d))\n" => "1 -1 0\n",
    "d = {}\nprint(d.setdefault(\"k\", 5), d.setdefault(\"k\", 9))\n" => "5 5\n",
    "d = {1: \"one\", 2.5: \"half\"}\nprint(d[1], d[2.5])\n" => "one half\n",
}

cases! { tuples_and_unpacking:
    "t = (1, 2, 3)\nprint(t[0], t[-1], len(t))\n" => "1 3 3\n",
    "a, b = (1, 2)\nprint(a, b)\n" => "1 2\n",
    "a, b, c = [1, 2, 3]\nprint(c, b, a)\n" => "3 2 1\n",
    "for k, v in {\"x\": 1}.items():\n    print(k, v)\n" => "x 1\n",
    "print((1,))\nprint(())\n" => "(1,)\n()\n",
}

cases! { control_flow:
    "i = 0\nwhile i < 3:\n    print(i)\n    i += 1\n" => "0\n1\n2\n",
    "for i in range(2, 8, 2):\n    print(i)\n" => "2\n4\n6\n",
    "for i in range(3):\n    if i == 1:\n        continue\n    print(i)\n" => "0\n2\n",
    "for i in range(10):\n    if i == 2:\n        break\n    print(i)\n" => "0\n1\n",
    "x = 5\nif x > 10:\n    print(\"big\")\nelif x > 3:\n    print(\"mid\")\nelse:\n    print(\"small\")\n" => "mid\n",
    "for c in \"abc\":\n    print(c)\n" => "a\nb\nc\n",
    "total = 0\nfor i, v in enumerate([10, 20]):\n    total += i * v\nprint(total)\n" => "20\n",
}

cases! { functions:
    "def f(a, b=10):\n    return a + b\nprint(f(1), f(1, 2))\n" => "11 3\n",
    "def outer():\n    def inner():\n        return 42\n    return inner()\nprint(outer())\n" => "42\n",
    "def f():\n    pass\nprint(f())\n" => "None\n",
    "def fact(n):\n    if n <= 1:\n        return 1\n    return n * fact(n - 1)\nprint(fact(6))\n" => "720\n",
    "def apply(f, x):\n    return f(x)\ndef double(v):\n    return v * 2\nprint(apply(double, 21))\n" => "42\n",
    "x = 1\ndef shadow():\n    x = 2\n    return x\nprint(shadow(), x)\n" => "2 1\n",
    "x = 1\ndef mutate():\n    global x\n    x = 2\nmutate()\nprint(x)\n" => "2\n",
}

cases! { exceptions:
    "try:\n    raise ValueError(\"v\")\nexcept ValueError as e:\n    print(e.kind(), e.message())\n" => "ValueError v\n",
    "try:\n    [1][5]\nexcept IndexError:\n    print(\"idx\")\n" => "idx\n",
    "try:\n    {\"a\": 1}[\"b\"]\nexcept KeyError:\n    print(\"key\")\n" => "key\n",
    "try:\n    1 + \"s\"\nexcept TypeError:\n    print(\"type\")\n" => "type\n",
    "try:\n    int(\"nope\")\nexcept ValueError:\n    print(\"parse\")\n" => "parse\n",
    "def f():\n    try:\n        raise KeyError(\"k\")\n    finally:\n        print(\"fin\")\ntry:\n    f()\nexcept KeyError:\n    print(\"caught\")\n" => "fin\ncaught\n",
    "try:\n    try:\n        raise ValueError(\"inner\")\n    except KeyError:\n        print(\"wrong\")\nexcept ValueError:\n    print(\"outer\")\n" => "outer\n",
    "try:\n    raise TimeoutError(\"t\")\nexcept Exception as e:\n    print(\"base catch\", e.kind())\n" => "base catch TimeoutError\n",
}

cases! { conversions:
    "print(int(\"42\"), int(3.9), int(True))\n" => "42 3 1\n",
    "print(float(\"2.5\"), float(3))\n" => "2.5 3.0\n",
    "print(bool([]), bool([0]), bool(None))\n" => "False True False\n",
    "print(type(1), type(1.0), type(\"s\"), type([]), type({}), type(None))\n" => "int float str list dict NoneType\n",
    "print(repr(\"x\"), repr([1, \"a\"]))\n" => "\"x\" [1, \"a\"]\n",
}

#[test]
fn error_kinds_are_precise() {
    raises("x = 1 / 0\n", "ZeroDivisionError");
    raises("x = [1][9]\n", "IndexError");
    raises("x = {}[\"k\"]\n", "KeyError");
    raises("x = 1 + \"a\"\n", "TypeError");
    raises("x = nonexistent\n", "NameError");
    raises(
        "def f():\n    return x9\n    x9 = 1\nf()\n",
        "UnboundLocalError",
    );
    raises("assert False\n", "AssertionError");
    raises("def f(a):\n    return a\nf()\n", "TypeError");
    raises("def f(a):\n    return a\nf(1, 2)\n", "TypeError");
    raises("raise\n", "RuntimeError");
    raises("x = 9223372036854775807 + 1\n", "OverflowError");
}

#[test]
fn concurrency_semantics() {
    // Spawned tasks interleave but joins establish completion order.
    assert_eq!(
        out("def w(n):\n    return n * n\nts = []\nfor i in range(4):\n    ts.append(spawn(w, i))\nvals = []\nfor t in ts:\n    vals.append(join(t))\nprint(vals)\n"),
        "[0, 1, 4, 9]\n"
    );
    // Locks serialize critical sections.
    assert_eq!(
        out("m = lock()\nlog = []\ndef crit(tag):\n    m.acquire()\n    log.append(tag)\n    log.append(tag)\n    m.release()\nt1 = spawn(crit, \"a\")\nt2 = spawn(crit, \"b\")\njoin(t1)\njoin(t2)\nfirst = log[0]\nassert log[1] == first\nprint(\"serialized\")\n"),
        "serialized\n"
    );
}

#[test]
fn virtual_time_semantics() {
    let mut m = Machine::new(MachineConfig::default());
    let o = m
        .run_source("start = now()\nsleep(5)\nsleep(2.5)\nelapsed = now() - start\nassert elapsed >= 7.5\nprint(\"ok\")\n")
        .unwrap();
    assert_eq!(o.output, "ok\n");
    assert!(o.vtime >= 7.5);
    // Parallel sleepers overlap: total virtual time ~ max, not sum.
    let mut m = Machine::new(MachineConfig::default());
    let o = m
        .run_source("def nap():\n    sleep(10)\nt1 = spawn(nap)\nt2 = spawn(nap)\njoin(t1)\njoin(t2)\nprint(\"done\")\n")
        .unwrap();
    assert!(
        o.vtime < 15.0,
        "parallel sleeps should overlap, vtime {}",
        o.vtime
    );
}

#[test]
fn buffers_and_handles() {
    assert_eq!(
        out("b = make_buffer(3)\nb.append(10)\nb.write(2, 30)\nprint(b.read(0), b.read(2), b.size(), b.capacity())\n"),
        "10 30 3 3\n"
    );
    assert_eq!(
        out("h = open_handle(\"f\")\nh.write(1)\nh.write(2)\nprint(h.read_all(), h.name(), h.is_closed())\nh.close()\nprint(h.is_closed())\n"),
        "[1, 2] f False\nTrue\n"
    );
}

#[test]
fn deep_call_chains_and_wide_data() {
    // A call chain near (but under) the recursion limit.
    assert_eq!(
        out("def down(n):\n    if n == 0:\n        return 0\n    return down(n - 1)\nprint(down(200))\n"),
        "0\n"
    );
    // Wide list construction and aggregation.
    assert_eq!(
        out("total = 0\nl = []\nfor i in range(500):\n    l.append(i)\nfor v in l:\n    total += v\nprint(total, len(l))\n"),
        "124750 500\n"
    );
}

#[test]
fn iteration_snapshots_allow_mutation() {
    // Iterating a list snapshot while appending to the original must
    // terminate (GetIter snapshots).
    assert_eq!(
        out("l = [1, 2, 3]\nfor v in l:\n    l.append(v)\nprint(len(l))\n"),
        "6\n"
    );
}

#[test]
fn output_of_failed_runs_is_preserved() {
    let mut m = Machine::new(MachineConfig::default());
    let o = m
        .run_source("print(\"before\")\nraise RuntimeError(\"x\")\nprint(\"after\")\n")
        .unwrap();
    assert_eq!(o.output, "before\n");
    assert!(matches!(o.status, RunStatus::Uncaught(_)));
}
