//! Error types for the PyLite frontend and runtime.

use crate::ast::Span;
use std::fmt;

/// Category of a [`PyliteError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// Tokenizer-level error (bad character, unterminated string, ...).
    Lex,
    /// Parser-level error (unexpected token, bad structure, ...).
    Parse,
    /// Compiler-level error (e.g. `break` outside a loop).
    Compile,
    /// Host-side runtime configuration error (e.g. missing entry function).
    Runtime,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorKind::Lex => "lex error",
            ErrorKind::Parse => "parse error",
            ErrorKind::Compile => "compile error",
            ErrorKind::Runtime => "runtime error",
        };
        f.write_str(s)
    }
}

/// An error produced while lexing, parsing, compiling, or configuring a
/// PyLite program.
///
/// Runtime *exceptions* inside a program are not represented by this type;
/// they surface as part of the interpreter's
/// [`RunOutcome`](crate::machine::RunOutcome).
#[derive(Debug, Clone, PartialEq)]
pub struct PyliteError {
    kind: ErrorKind,
    message: String,
    span: Option<Span>,
}

impl PyliteError {
    /// Creates a new error.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        PyliteError {
            kind,
            message: message.into(),
            span: None,
        }
    }

    /// Attaches a source position.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// The error category.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The human-readable message (lowercase, no trailing punctuation).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The source position, when known.
    pub fn span(&self) -> Option<Span> {
        self.span
    }
}

impl fmt::Display for PyliteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) => write!(f, "{} at {}: {}", self.kind, span, self.message),
            None => write!(f, "{}: {}", self.kind, self.message),
        }
    }
}

impl std::error::Error for PyliteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_span_when_present() {
        let e = PyliteError::new(ErrorKind::Parse, "unexpected token").with_span(Span::new(3, 7));
        assert_eq!(e.to_string(), "parse error at 3:7: unexpected token");
        assert_eq!(e.kind(), ErrorKind::Parse);
        assert_eq!(e.span(), Some(Span::new(3, 7)));
    }

    #[test]
    fn display_without_span() {
        let e = PyliteError::new(ErrorKind::Runtime, "no such function");
        assert_eq!(e.to_string(), "runtime error: no such function");
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PyliteError>();
    }
}
