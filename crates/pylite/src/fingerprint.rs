//! Stable content fingerprints for modules and machine configurations.
//!
//! The campaign service and the mutant/experiment caches key their
//! entries by *what* is being executed: the printed module source, the
//! machine configuration, a fault plan. All of them reduce to
//! [`fnv1a`], a dependency-free 64-bit FNV-1a hash whose value is part
//! of the plan-file format — it must stay stable across runs, hosts,
//! and thread counts (never use [`std::hash::Hash`], whose output is
//! unspecified between releases).

use crate::machine::MachineConfig;
use crate::printer::print_module;
use crate::Module;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// 64-bit FNV-1a over raw bytes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(FNV_OFFSET, bytes)
}

/// Continues an FNV-1a hash with more bytes (for multi-field keys).
pub fn fnv1a_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Content fingerprint of a module: FNV-1a over its printed source.
///
/// Two modules that print identically are semantically identical for
/// injection purposes (the printer is the canonical form — parse ∘
/// print is the identity on printed output), so this is a sound cache
/// key for mutant and experiment memoization.
pub fn fingerprint(module: &Module) -> u64 {
    fnv1a(print_module(module).as_bytes())
}

impl MachineConfig {
    /// Stable fingerprint over every field that affects execution.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        h = fnv1a_extend(h, &self.step_budget.to_le_bytes());
        h = fnv1a_extend(h, &self.quantum.to_le_bytes());
        h = fnv1a_extend(h, &self.seed.to_le_bytes());
        h = fnv1a_extend(h, &[self.detect_races as u8]);
        h = fnv1a_extend(h, &self.max_frames.to_le_bytes());
        h = fnv1a_extend(h, &self.max_output.to_le_bytes());
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn module_fingerprint_tracks_content_not_identity() {
        let a = parse("x = 1\ny = 2\n").unwrap();
        let b = parse("x = 1\ny = 2\n").unwrap();
        let c = parse("x = 1\ny = 3\n").unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn machine_fingerprint_tracks_every_field() {
        let base = MachineConfig::default();
        assert_eq!(base.fingerprint(), MachineConfig::default().fingerprint());
        let seeded = MachineConfig {
            seed: base.seed + 1,
            ..base.clone()
        };
        assert_ne!(base.fingerprint(), seeded.fingerprint());
        let budget = MachineConfig {
            step_budget: base.step_budget + 1,
            ..base
        };
        assert_ne!(MachineConfig::default().fingerprint(), budget.fingerprint());
    }
}
