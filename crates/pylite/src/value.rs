//! Runtime values for the PyLite virtual machine.

use crate::code::Code;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::fmt;
use std::rc::Rc;

/// Identifier of a VM task (cooperative thread).
pub type TaskId = usize;

/// Identifier of a lock object.
pub type LockId = usize;

/// Identifier of a resource handle.
pub type HandleId = usize;

/// A compiled function object.
#[derive(Debug)]
pub struct FuncObj {
    /// Function name (for tracebacks).
    pub name: String,
    /// Compiled body.
    pub code: Rc<Code>,
    /// Default values for trailing parameters.
    pub defaults: Vec<Value>,
}

/// A raised exception: a kind (e.g. `"TimeoutError"`) plus a message.
#[derive(Debug, Clone, PartialEq)]
pub struct ExcObj {
    /// Exception kind name, e.g. `"ValueError"`.
    pub kind: String,
    /// Human-readable message.
    pub message: String,
}

impl ExcObj {
    /// Creates a new exception payload.
    pub fn new(kind: impl Into<String>, message: impl Into<String>) -> Self {
        ExcObj {
            kind: kind.into(),
            message: message.into(),
        }
    }

    /// Whether this exception matches an `except <kind>` clause.
    ///
    /// `Exception` matches everything, mirroring Python's base-class catch.
    pub fn matches(&self, kind: &str) -> bool {
        kind == "Exception" || self.kind == kind
    }
}

/// A bounded buffer with a fixed capacity; writing past the capacity is a
/// buffer overflow (detected and reported by the machine).
#[derive(Debug)]
pub struct BufferObj {
    /// Backing storage.
    pub data: Vec<Value>,
    /// Maximum number of elements.
    pub capacity: usize,
}

/// An acquired resource handle (file/connection stand-in); failing to call
/// `close()` before program end is reported as a resource leak.
#[derive(Debug)]
pub struct HandleObj {
    /// Unique id.
    pub id: HandleId,
    /// Resource name passed to `open_handle`.
    pub name: String,
    /// Whether `close()` has been called.
    pub closed: std::cell::Cell<bool>,
    /// Data written to the handle.
    pub written: RefCell<Vec<Value>>,
}

/// Iterator state used by `for` loops.
#[derive(Debug)]
pub enum IterObj {
    /// Iteration over a range.
    Range {
        /// Next value to yield.
        next: i64,
        /// Exclusive end.
        stop: i64,
        /// Step (non-zero).
        step: i64,
    },
    /// Iteration over a snapshot of list/tuple elements.
    Items {
        /// Remaining items (already reversed for pop efficiency? no: index).
        items: Vec<Value>,
        /// Next index.
        index: usize,
    },
    /// Iteration over string characters.
    Chars {
        /// All characters.
        chars: Vec<char>,
        /// Next index.
        index: usize,
    },
}

/// A PyLite runtime value.
///
/// Reference types (`List`, `Dict`, `Buffer`, `Handle`) share state via
/// `Rc<RefCell<..>>`, matching Python aliasing semantics. The VM is
/// single-threaded; concurrency is cooperative inside the machine.
#[derive(Clone)]
pub enum Value {
    /// `None`
    None,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Immutable string.
    Str(Rc<str>),
    /// Mutable list.
    List(Rc<RefCell<Vec<Value>>>),
    /// Mutable insertion-ordered dictionary.
    Dict(Rc<RefCell<Vec<(Value, Value)>>>),
    /// Immutable tuple.
    Tuple(Rc<Vec<Value>>),
    /// User-defined function.
    Func(Rc<FuncObj>),
    /// Built-in function, identified by name.
    Builtin(&'static str),
    /// Exception constructor (e.g. the global `ValueError`); calling it
    /// with a message produces an [`Value::Exc`].
    ExcCtor(Rc<str>),
    /// Exception instance.
    Exc(Rc<ExcObj>),
    /// Lock object.
    Lock(LockId),
    /// Task join-handle returned by `spawn`.
    Task(TaskId),
    /// Bounded buffer.
    Buffer(Rc<RefCell<BufferObj>>),
    /// Resource handle.
    Handle(Rc<HandleObj>),
    /// Live iterator (internal; produced by `GetIter`).
    Iter(Rc<RefCell<IterObj>>),
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.repr())
    }
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Rc::from(s.as_ref()))
    }

    /// Creates a list value.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Rc::new(RefCell::new(items)))
    }

    /// Creates a dict value from key/value pairs (later keys overwrite).
    pub fn dict(pairs: Vec<(Value, Value)>) -> Value {
        let mut d: Vec<(Value, Value)> = Vec::new();
        for (k, v) in pairs {
            if let Some(slot) = d.iter_mut().find(|(ek, _)| ek.py_eq(&k)) {
                slot.1 = v;
            } else {
                d.push((k, v));
            }
        }
        Value::Dict(Rc::new(RefCell::new(d)))
    }

    /// Creates an exception value.
    pub fn exc(kind: impl Into<String>, msg: impl Into<String>) -> Value {
        Value::Exc(Rc::new(ExcObj::new(kind, msg)))
    }

    /// The Python-style type name of the value.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::None => "NoneType",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::List(_) => "list",
            Value::Dict(_) => "dict",
            Value::Tuple(_) => "tuple",
            Value::Func(_) => "function",
            Value::Builtin(_) => "builtin",
            Value::ExcCtor(_) => "exception_type",
            Value::Exc(_) => "exception",
            Value::Lock(_) => "lock",
            Value::Task(_) => "task",
            Value::Buffer(_) => "buffer",
            Value::Handle(_) => "handle",
            Value::Iter(_) => "iterator",
        }
    }

    /// Python truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::None => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::List(l) => !l.borrow().is_empty(),
            Value::Dict(d) => !d.borrow().is_empty(),
            Value::Tuple(t) => !t.is_empty(),
            _ => true,
        }
    }

    /// Python `==` (structural for containers, numeric across int/float).
    pub fn py_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::None, Value::None) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (Value::Bool(a), Value::Int(b)) | (Value::Int(b), Value::Bool(a)) => (*a as i64) == *b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::List(a), Value::List(b)) => {
                let (a, b) = (a.borrow(), b.borrow());
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.py_eq(y))
            }
            (Value::Tuple(a), Value::Tuple(b)) => {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.py_eq(y))
            }
            (Value::Dict(a), Value::Dict(b)) => {
                let (a, b) = (a.borrow(), b.borrow());
                a.len() == b.len()
                    && a.iter().all(|(k, v)| {
                        b.iter()
                            .find(|(k2, _)| k.py_eq(k2))
                            .is_some_and(|(_, v2)| v.py_eq(v2))
                    })
            }
            (Value::Exc(a), Value::Exc(b)) => a == b,
            (Value::Lock(a), Value::Lock(b)) => a == b,
            (Value::Task(a), Value::Task(b)) => a == b,
            (Value::Handle(a), Value::Handle(b)) => a.id == b.id,
            _ => false,
        }
    }

    /// Python `<` style ordering for sortable values.
    pub fn py_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::List(a), Value::List(b)) => {
                let (a, b) = (a.borrow(), b.borrow());
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.py_cmp(y)? {
                        Ordering::Equal => continue,
                        ord => return Some(ord),
                    }
                }
                Some(a.len().cmp(&b.len()))
            }
            (Value::Tuple(a), Value::Tuple(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.py_cmp(y)? {
                        Ordering::Equal => continue,
                        ord => return Some(ord),
                    }
                }
                Some(a.len().cmp(&b.len()))
            }
            _ => None,
        }
    }

    /// `str()` conversion: human-friendly, no quotes on strings.
    pub fn py_str(&self) -> String {
        match self {
            Value::Str(s) => s.to_string(),
            Value::Exc(e) => format!("{}: {}", e.kind, e.message),
            other => other.repr(),
        }
    }

    /// `repr()` conversion.
    pub fn repr(&self) -> String {
        match self {
            Value::None => "None".to_string(),
            Value::Bool(true) => "True".to_string(),
            Value::Bool(false) => "False".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    format!("{v:.1}")
                } else {
                    format!("{v}")
                }
            }
            Value::Str(s) => format!("{s:?}"),
            Value::List(l) => {
                let inner: Vec<String> = l.borrow().iter().map(|v| v.repr()).collect();
                format!("[{}]", inner.join(", "))
            }
            Value::Dict(d) => {
                let inner: Vec<String> = d
                    .borrow()
                    .iter()
                    .map(|(k, v)| format!("{}: {}", k.repr(), v.repr()))
                    .collect();
                format!("{{{}}}", inner.join(", "))
            }
            Value::Tuple(t) => {
                let inner: Vec<String> = t.iter().map(|v| v.repr()).collect();
                if t.len() == 1 {
                    format!("({},)", inner[0])
                } else {
                    format!("({})", inner.join(", "))
                }
            }
            Value::Func(f) => format!("<function {}>", f.name),
            Value::Builtin(name) => format!("<builtin {name}>"),
            Value::ExcCtor(kind) => format!("<exception type {kind}>"),
            Value::Exc(e) => format!("{}({:?})", e.kind, e.message),
            Value::Lock(id) => format!("<lock {id}>"),
            Value::Task(id) => format!("<task {id}>"),
            Value::Buffer(b) => {
                let b = b.borrow();
                format!("<buffer {}/{}>", b.data.len(), b.capacity)
            }
            Value::Handle(h) => format!(
                "<handle {} {}>",
                h.name,
                if h.closed.get() { "closed" } else { "open" }
            ),
            Value::Iter(_) => "<iterator>".to_string(),
        }
    }

    /// Length for sized containers.
    pub fn py_len(&self) -> Option<usize> {
        match self {
            Value::Str(s) => Some(s.chars().count()),
            Value::List(l) => Some(l.borrow().len()),
            Value::Dict(d) => Some(d.borrow().len()),
            Value::Tuple(t) => Some(t.len()),
            Value::Buffer(b) => Some(b.borrow().data.len()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_matches_python() {
        assert!(!Value::None.truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(-1).truthy());
        assert!(!Value::str("").truthy());
        assert!(Value::str("x").truthy());
        assert!(!Value::list(vec![]).truthy());
        assert!(Value::list(vec![Value::None]).truthy());
        assert!(!Value::Float(0.0).truthy());
    }

    #[test]
    fn numeric_equality_across_types() {
        assert!(Value::Int(2).py_eq(&Value::Float(2.0)));
        assert!(!Value::Int(2).py_eq(&Value::Float(2.5)));
        assert!(Value::Bool(true).py_eq(&Value::Int(1)));
    }

    #[test]
    fn container_equality_is_structural() {
        let a = Value::list(vec![Value::Int(1), Value::str("x")]);
        let b = Value::list(vec![Value::Int(1), Value::str("x")]);
        assert!(a.py_eq(&b));
        let d1 = Value::dict(vec![(Value::str("k"), Value::Int(1))]);
        let d2 = Value::dict(vec![(Value::str("k"), Value::Int(1))]);
        assert!(d1.py_eq(&d2));
    }

    #[test]
    fn dict_constructor_deduplicates_keys() {
        let d = Value::dict(vec![
            (Value::str("k"), Value::Int(1)),
            (Value::str("k"), Value::Int(2)),
        ]);
        if let Value::Dict(d) = &d {
            assert_eq!(d.borrow().len(), 1);
            assert!(d.borrow()[0].1.py_eq(&Value::Int(2)));
        } else {
            unreachable!()
        }
    }

    #[test]
    fn ordering_comparisons() {
        assert_eq!(
            Value::Int(1).py_cmp(&Value::Float(1.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::str("a").py_cmp(&Value::str("b")),
            Some(Ordering::Less)
        );
        assert!(Value::Int(1).py_cmp(&Value::str("a")).is_none());
    }

    #[test]
    fn repr_formats() {
        assert_eq!(Value::Float(2.0).repr(), "2.0");
        assert_eq!(Value::str("hi").repr(), "\"hi\"");
        assert_eq!(Value::str("hi").py_str(), "hi");
        assert_eq!(
            Value::list(vec![Value::Int(1), Value::Int(2)]).repr(),
            "[1, 2]"
        );
        assert_eq!(Value::Tuple(Rc::new(vec![Value::Int(1)])).repr(), "(1,)");
    }

    #[test]
    fn exception_matching() {
        let e = ExcObj::new("TimeoutError", "db timeout");
        assert!(e.matches("TimeoutError"));
        assert!(e.matches("Exception"));
        assert!(!e.matches("ValueError"));
    }

    #[test]
    fn len_of_containers() {
        assert_eq!(Value::str("abc").py_len(), Some(3));
        assert_eq!(Value::list(vec![Value::None]).py_len(), Some(1));
        assert_eq!(Value::Int(3).py_len(), None);
    }
}
