//! AST → bytecode compiler.
//!
//! Scoping follows Python's rule: a name assigned anywhere in a function
//! body is local to that function unless declared `global`. `finally`
//! suites are *inlined* on every normal exit path (fall-through, `break`,
//! `continue`, `return`) and compiled once more on the exception path,
//! ending in a re-raise; this avoids a pending-unwind register in the VM.

use crate::ast::*;
use crate::code::{Code, Const, GlobalTable, Instr};
use crate::error::{ErrorKind, PyliteError};
use crate::value::Value;
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;

/// Compiles a module into its top-level code object.
///
/// # Errors
///
/// Returns [`ErrorKind::Compile`] errors for structural problems the
/// parser admits but the VM cannot run: `break`/`continue` outside a
/// loop, `return` at module level, or jump/control misuse inside
/// `finally` suites.
pub fn compile_module(module: &Module) -> Result<Rc<Code>, PyliteError> {
    let globals_tab = Rc::new(RefCell::new(GlobalTable::default()));
    let mut c = Compiler::new(
        "<module>".to_string(),
        Vec::new(),
        true,
        &module.body,
        Rc::clone(&globals_tab),
    )?;
    c.suite(&module.body)?;
    // Implicit `return None` at the end of the module.
    let none = c.const_value(Value::None);
    c.emit(Instr::LoadConst(none), Span::default());
    c.emit(Instr::Return, Span::default());
    let mut code = c.finish();
    // Pre-resolve every slot's builtin fallback once, so a global-slot
    // miss at run time is a vector index instead of a name match.
    let mut table = Rc::try_unwrap(globals_tab)
        .expect("nested compilers released the global table")
        .into_inner();
    table.builtins = table
        .names
        .iter()
        .map(|n| crate::builtins::lookup(n))
        .collect();
    code.globals = Some(Rc::new(table));
    Ok(Rc::new(code))
}

/// Lexical scope tracked while compiling (for break/continue/return
/// crossing `try` regions and loops).
enum Scope {
    Loop {
        /// Patch list for `break` jumps.
        breaks: Vec<usize>,
        /// Jump target for `continue`.
        continue_target: u32,
        /// Whether this is a `for` loop (iterator lives on the stack).
        is_for: bool,
    },
    Except,
    Finally {
        /// The finally suite, re-compiled (inlined) at each exit path.
        stmts: Vec<Stmt>,
    },
    /// Marks that we are compiling a finally suite right now (so nested
    /// `break`/`continue`/`return` can be rejected).
    InFinally,
}

struct Compiler {
    code: Code,
    scopes: Vec<Scope>,
    locals_map: HashMap<String, u16>,
    globals_decl: BTreeSet<String>,
    is_module: bool,
    /// Module-wide global slot table, shared with nested compilers.
    globals_tab: Rc<RefCell<GlobalTable>>,
}

impl Compiler {
    fn new(
        name: String,
        params: Vec<String>,
        is_module: bool,
        body: &[Stmt],
        globals_tab: Rc<RefCell<GlobalTable>>,
    ) -> Result<Self, PyliteError> {
        let mut assigned = BTreeSet::new();
        let mut globals_decl = BTreeSet::new();
        collect_assigned(body, &mut assigned, &mut globals_decl);
        let mut locals: Vec<String> = params.clone();
        if !is_module {
            for name in &assigned {
                if !globals_decl.contains(name) && !locals.contains(name) {
                    locals.push(name.clone());
                }
            }
        }
        let locals_map = locals
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u16))
            .collect();
        Ok(Compiler {
            code: Code {
                name,
                params,
                locals,
                ..Code::default()
            },
            scopes: Vec::new(),
            locals_map,
            globals_decl,
            is_module,
            globals_tab,
        })
    }

    fn finish(self) -> Code {
        self.code
    }

    fn err(&self, span: Span, msg: impl Into<String>) -> PyliteError {
        PyliteError::new(ErrorKind::Compile, msg).with_span(span)
    }

    fn emit(&mut self, instr: Instr, span: Span) -> usize {
        self.code.instrs.push(instr);
        self.code.spans.push(span);
        self.code.instrs.len() - 1
    }

    fn here(&self) -> u32 {
        self.code.instrs.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        let instr = &mut self.code.instrs[at];
        *instr = match *instr {
            Instr::Jump(_) => Instr::Jump(target),
            Instr::JumpIfFalsePop(_) => Instr::JumpIfFalsePop(target),
            Instr::JumpIfTruePop(_) => Instr::JumpIfTruePop(target),
            Instr::JumpIfFalsePeek(_) => Instr::JumpIfFalsePeek(target),
            Instr::JumpIfTruePeek(_) => Instr::JumpIfTruePeek(target),
            Instr::ForIter(_) => Instr::ForIter(target),
            Instr::SetupExcept(_) => Instr::SetupExcept(target),
            Instr::SetupFinally(_) => Instr::SetupFinally(target),
            other => panic!("patch of non-jump instruction {other:?}"),
        };
    }

    fn const_value(&mut self, v: Value) -> u16 {
        // Reuse identical simple constants to keep pools small.
        for (i, c) in self.code.consts.iter().enumerate() {
            if let Const::Value(existing) = c {
                let same = match (existing, &v) {
                    (Value::None, Value::None) => true,
                    (Value::Bool(a), Value::Bool(b)) => a == b,
                    (Value::Int(a), Value::Int(b)) => a == b,
                    (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
                    (Value::Str(a), Value::Str(b)) => a == b,
                    _ => false,
                };
                if same {
                    return i as u16;
                }
            }
        }
        self.code.consts.push(Const::Value(v));
        (self.code.consts.len() - 1) as u16
    }

    fn const_code(&mut self, code: Rc<Code>) -> u16 {
        self.code.consts.push(Const::Code(code));
        (self.code.consts.len() - 1) as u16
    }

    fn name_idx(&mut self, name: &str) -> u16 {
        if let Some(i) = self.code.names.iter().position(|n| n == name) {
            return i as u16;
        }
        self.code.names.push(name.to_string());
        (self.code.names.len() - 1) as u16
    }

    /// Interns `name` into the module-wide global table and returns its
    /// slot. Every compiler of one module shares the table, so a slot
    /// denotes the same global everywhere.
    fn global_slot(&mut self, name: &str) -> u16 {
        let mut tab = self.globals_tab.borrow_mut();
        if let Some(i) = tab.index.get(name) {
            return *i;
        }
        let slot = tab.names.len() as u16;
        tab.names.push(name.to_string());
        tab.index.insert(name.to_string(), slot);
        slot
    }

    fn is_local(&self, name: &str) -> bool {
        !self.is_module && self.locals_map.contains_key(name) && !self.globals_decl.contains(name)
    }

    fn load_name(&mut self, name: &str, span: Span) {
        if self.is_local(name) {
            let slot = self.locals_map[name];
            self.emit(Instr::LoadLocal(slot), span);
        } else {
            let slot = self.global_slot(name);
            self.emit(Instr::LoadGlobal(slot), span);
        }
    }

    fn store_name(&mut self, name: &str, span: Span) {
        if self.is_local(name) {
            let slot = self.locals_map[name];
            self.emit(Instr::StoreLocal(slot), span);
        } else {
            let slot = self.global_slot(name);
            self.emit(Instr::StoreGlobal(slot), span);
        }
    }

    fn suite(&mut self, stmts: &[Stmt]) -> Result<(), PyliteError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    // ---- statements ------------------------------------------------------

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), PyliteError> {
        let span = stmt.span;
        match &stmt.kind {
            StmtKind::Expr(e) => {
                self.expr(e)?;
                self.emit(Instr::Pop, span);
            }
            StmtKind::Assign { target, value } => match target {
                Target::Name(n) => {
                    self.expr(value)?;
                    self.store_name(n, span);
                }
                Target::Index { obj, index } => {
                    self.expr(obj)?;
                    self.expr(index)?;
                    self.expr(value)?;
                    self.emit(Instr::SetIndex, span);
                }
                Target::Tuple(names) => {
                    self.expr(value)?;
                    self.emit(Instr::UnpackTuple(names.len() as u8), span);
                    for n in names {
                        self.store_name(n, span);
                    }
                }
            },
            StmtKind::AugAssign { target, op, value } => match target {
                Target::Name(n) => {
                    self.load_name(n, span);
                    self.expr(value)?;
                    self.emit(Instr::Bin(*op), span);
                    self.store_name(n, span);
                }
                Target::Index { obj, index } => {
                    self.expr(obj)?;
                    self.expr(index)?;
                    self.emit(Instr::Dup2, span);
                    self.emit(Instr::GetIndex, span);
                    self.expr(value)?;
                    self.emit(Instr::Bin(*op), span);
                    self.emit(Instr::SetIndex, span);
                }
                Target::Tuple(_) => {
                    return Err(self.err(span, "augmented assignment to tuple is not allowed"))
                }
            },
            StmtKind::If { cond, then, orelse } => {
                self.expr(cond)?;
                let jf = self.emit(Instr::JumpIfFalsePop(0), span);
                self.suite(then)?;
                if orelse.is_empty() {
                    let t = self.here();
                    self.patch(jf, t);
                } else {
                    let jend = self.emit(Instr::Jump(0), span);
                    let t = self.here();
                    self.patch(jf, t);
                    self.suite(orelse)?;
                    let end = self.here();
                    self.patch(jend, end);
                }
            }
            StmtKind::While { cond, body } => {
                let start = self.here();
                self.expr(cond)?;
                let jexit = self.emit(Instr::JumpIfFalsePop(0), span);
                self.scopes.push(Scope::Loop {
                    breaks: Vec::new(),
                    continue_target: start,
                    is_for: false,
                });
                self.suite(body)?;
                self.emit(Instr::Jump(start), span);
                let end = self.here();
                self.patch(jexit, end);
                let Some(Scope::Loop { breaks, .. }) = self.scopes.pop() else {
                    unreachable!("loop scope must be on top");
                };
                for b in breaks {
                    self.patch(b, end);
                }
            }
            StmtKind::For { vars, iter, body } => {
                self.expr(iter)?;
                self.emit(Instr::GetIter, span);
                let start = self.here();
                let fi = self.emit(Instr::ForIter(0), span);
                if vars.len() == 1 {
                    self.store_name(&vars[0], span);
                } else {
                    self.emit(Instr::UnpackTuple(vars.len() as u8), span);
                    for v in vars {
                        self.store_name(v, span);
                    }
                }
                self.scopes.push(Scope::Loop {
                    breaks: Vec::new(),
                    continue_target: start,
                    is_for: true,
                });
                self.suite(body)?;
                self.emit(Instr::Jump(start), span);
                let end = self.here();
                self.patch(fi, end);
                let Some(Scope::Loop { breaks, .. }) = self.scopes.pop() else {
                    unreachable!("loop scope must be on top");
                };
                for b in breaks {
                    self.patch(b, end);
                }
            }
            StmtKind::Def {
                name,
                params,
                defaults,
                body,
            } => {
                let mut inner = Compiler::new(
                    name.clone(),
                    params.clone(),
                    false,
                    body,
                    Rc::clone(&self.globals_tab),
                )?;
                inner.suite(body)?;
                let none = inner.const_value(Value::None);
                inner.emit(Instr::LoadConst(none), span);
                inner.emit(Instr::Return, span);
                let code = Rc::new(inner.finish());
                for d in defaults {
                    self.expr(d)?;
                }
                let ci = self.const_code(code);
                self.emit(
                    Instr::MakeFunction {
                        code: ci,
                        n_defaults: defaults.len() as u8,
                    },
                    span,
                );
                self.store_name(name, span);
            }
            StmtKind::Return(value) => {
                if self.is_module {
                    return Err(self.err(span, "return outside function"));
                }
                if self.scopes.iter().any(|s| matches!(s, Scope::InFinally)) {
                    return Err(self.err(span, "return inside finally suite is not supported"));
                }
                match value {
                    Some(v) => self.expr(v)?,
                    None => {
                        let none = self.const_value(Value::None);
                        self.emit(Instr::LoadConst(none), span);
                    }
                }
                // Run enclosing finally suites (innermost first). The frame
                // is discarded on Return, so no PopBlock is needed.
                let finallys: Vec<Vec<Stmt>> = self
                    .scopes
                    .iter()
                    .rev()
                    .filter_map(|s| match s {
                        Scope::Finally { stmts } => Some(stmts.clone()),
                        _ => None,
                    })
                    .collect();
                for stmts in finallys {
                    self.inline_finally(&stmts)?;
                }
                self.emit(Instr::Return, span);
            }
            StmtKind::Raise(value) => match value {
                Some(v) => {
                    self.expr(v)?;
                    self.emit(Instr::Raise, span);
                }
                None => {
                    self.emit(Instr::Reraise, span);
                }
            },
            StmtKind::Try {
                body,
                handlers,
                finally,
            } => {
                if !finally.is_empty() {
                    // Desugar: try/except/finally => finally wrapping try/except.
                    let setup = self.emit(Instr::SetupFinally(0), span);
                    self.scopes.push(Scope::Finally {
                        stmts: finally.clone(),
                    });
                    if handlers.is_empty() {
                        self.suite(body)?;
                    } else {
                        self.try_except(span, body, handlers)?;
                    }
                    self.emit(Instr::PopBlock, span);
                    self.scopes.pop();
                    self.inline_finally(finally)?;
                    let jend = self.emit(Instr::Jump(0), span);
                    let handler = self.here();
                    self.patch(setup, handler);
                    // Exception path: TOS is the in-flight exception.
                    self.scopes.push(Scope::InFinally);
                    self.suite(finally)?;
                    self.scopes.pop();
                    self.emit(Instr::Raise, span);
                    let end = self.here();
                    self.patch(jend, end);
                } else {
                    self.try_except(span, body, handlers)?;
                }
            }
            StmtKind::Global(_) => {
                // Handled during symbol collection; no code.
            }
            StmtKind::Break | StmtKind::Continue => {
                let is_break = matches!(stmt.kind, StmtKind::Break);
                if self.scopes.iter().any(|s| matches!(s, Scope::InFinally)) {
                    return Err(
                        self.err(span, "break/continue inside finally suite is not supported")
                    );
                }
                // Unwind compiler scopes down to the nearest loop: pop try
                // blocks, inlining their finally suites.
                let mut loop_idx = None;
                for (i, s) in self.scopes.iter().enumerate().rev() {
                    if matches!(s, Scope::Loop { .. }) {
                        loop_idx = Some(i);
                        break;
                    }
                }
                let Some(loop_idx) = loop_idx else {
                    return Err(self.err(
                        span,
                        if is_break {
                            "break outside loop"
                        } else {
                            "continue outside loop"
                        },
                    ));
                };
                let to_unwind: Vec<Option<Vec<Stmt>>> = self.scopes[loop_idx + 1..]
                    .iter()
                    .rev()
                    .map(|s| match s {
                        Scope::Finally { stmts } => Some(stmts.clone()),
                        _ => None,
                    })
                    .collect();
                for fin in to_unwind {
                    self.emit(Instr::PopBlock, span);
                    if let Some(stmts) = fin {
                        self.inline_finally(&stmts)?;
                    }
                }
                let (is_for, continue_target) = match &self.scopes[loop_idx] {
                    Scope::Loop {
                        is_for,
                        continue_target,
                        ..
                    } => (*is_for, *continue_target),
                    _ => unreachable!("loop scope checked above"),
                };
                if is_break {
                    if is_for {
                        self.emit(Instr::Pop, span); // discard the iterator
                    }
                    let j = self.emit(Instr::Jump(0), span);
                    if let Scope::Loop { breaks, .. } = &mut self.scopes[loop_idx] {
                        breaks.push(j);
                    }
                } else {
                    self.emit(Instr::Jump(continue_target), span);
                }
            }
            StmtKind::Pass => {}
            StmtKind::Assert { cond, msg } => {
                self.expr(cond)?;
                let jok = self.emit(Instr::JumpIfTruePop(0), span);
                match msg {
                    Some(m) => self.expr(m)?,
                    None => {
                        let c = self.const_value(Value::str("assertion failed"));
                        self.emit(Instr::LoadConst(c), span);
                    }
                }
                self.emit(Instr::RaiseAssert, span);
                let t = self.here();
                self.patch(jok, t);
            }
        }
        Ok(())
    }

    /// Compiles the finally suite inline on a normal exit path. The suite
    /// runs *outside* its own block, so nested raises propagate outward.
    fn inline_finally(&mut self, stmts: &[Stmt]) -> Result<(), PyliteError> {
        self.scopes.push(Scope::InFinally);
        let r = self.suite(stmts);
        self.scopes.pop();
        r
    }

    fn try_except(
        &mut self,
        span: Span,
        body: &[Stmt],
        handlers: &[Handler],
    ) -> Result<(), PyliteError> {
        if handlers.is_empty() {
            return self.suite(body);
        }
        let setup = self.emit(Instr::SetupExcept(0), span);
        self.scopes.push(Scope::Except);
        self.suite(body)?;
        self.emit(Instr::PopBlock, span);
        self.scopes.pop();
        let jend = self.emit(Instr::Jump(0), span);
        let dispatch = self.here();
        self.patch(setup, dispatch);
        // Exception value is on TOS here.
        let mut end_jumps = vec![jend];
        for h in handlers {
            let next_clause = if let Some(kind) = &h.kind {
                let ki = self.name_idx(kind);
                self.emit(Instr::MatchExc(ki), span);
                Some(self.emit(Instr::JumpIfFalsePop(0), span))
            } else {
                None
            };
            match &h.bind {
                Some(b) => self.store_name(b, span),
                None => {
                    self.emit(Instr::Pop, span);
                }
            }
            self.suite(&h.body)?;
            end_jumps.push(self.emit(Instr::Jump(0), span));
            if let Some(nc) = next_clause {
                let t = self.here();
                self.patch(nc, t);
            }
        }
        // No clause matched: re-raise the exception still on TOS.
        self.emit(Instr::Raise, span);
        let end = self.here();
        for j in end_jumps {
            self.patch(j, end);
        }
        Ok(())
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self, e: &Expr) -> Result<(), PyliteError> {
        let span = e.span;
        match &e.kind {
            ExprKind::Const(lit) => {
                let v = match lit {
                    Lit::None => Value::None,
                    Lit::Bool(b) => Value::Bool(*b),
                    Lit::Int(i) => Value::Int(*i),
                    Lit::Float(f) => Value::Float(*f),
                    Lit::Str(s) => Value::str(s),
                };
                let c = self.const_value(v);
                self.emit(Instr::LoadConst(c), span);
            }
            ExprKind::Name(n) => self.load_name(n, span),
            ExprKind::Bin { op, left, right } => {
                self.expr(left)?;
                self.expr(right)?;
                self.emit(Instr::Bin(*op), span);
            }
            ExprKind::Unary { op, operand } => {
                self.expr(operand)?;
                match op {
                    UnaryOp::Neg => self.emit(Instr::Neg, span),
                    UnaryOp::Not => self.emit(Instr::Not, span),
                };
            }
            ExprKind::Bool { op, left, right } => {
                self.expr(left)?;
                let j = match op {
                    BoolOp::And => self.emit(Instr::JumpIfFalsePeek(0), span),
                    BoolOp::Or => self.emit(Instr::JumpIfTruePeek(0), span),
                };
                self.emit(Instr::Pop, span);
                self.expr(right)?;
                let t = self.here();
                self.patch(j, t);
            }
            ExprKind::Cmp { op, left, right } => {
                self.expr(left)?;
                self.expr(right)?;
                self.emit(Instr::Cmp(*op), span);
            }
            ExprKind::Call { func, args } => {
                self.expr(func)?;
                for a in args {
                    self.expr(a)?;
                }
                self.emit(Instr::Call(args.len() as u8), span);
            }
            ExprKind::MethodCall { obj, name, args } => {
                self.expr(obj)?;
                for a in args {
                    self.expr(a)?;
                }
                let ni = self.name_idx(name);
                self.emit(
                    Instr::CallMethod {
                        name: ni,
                        argc: args.len() as u8,
                    },
                    span,
                );
            }
            ExprKind::Index { obj, index } => {
                self.expr(obj)?;
                self.expr(index)?;
                self.emit(Instr::GetIndex, span);
            }
            ExprKind::List(items) => {
                for i in items {
                    self.expr(i)?;
                }
                self.emit(Instr::MakeList(items.len() as u16), span);
            }
            ExprKind::Tuple(items) => {
                for i in items {
                    self.expr(i)?;
                }
                self.emit(Instr::MakeTuple(items.len() as u16), span);
            }
            ExprKind::Dict(pairs) => {
                for (k, v) in pairs {
                    self.expr(k)?;
                    self.expr(v)?;
                }
                self.emit(Instr::MakeDict(pairs.len() as u16), span);
            }
            ExprKind::Ternary { cond, then, orelse } => {
                self.expr(cond)?;
                let jf = self.emit(Instr::JumpIfFalsePop(0), span);
                self.expr(then)?;
                let jend = self.emit(Instr::Jump(0), span);
                let t = self.here();
                self.patch(jf, t);
                self.expr(orelse)?;
                let end = self.here();
                self.patch(jend, end);
            }
        }
        Ok(())
    }
}

/// Collects names assigned anywhere in a body (without descending into
/// nested function definitions) plus names declared `global`.
fn collect_assigned(
    body: &[Stmt],
    assigned: &mut BTreeSet<String>,
    globals_decl: &mut BTreeSet<String>,
) {
    for s in body {
        match &s.kind {
            StmtKind::Assign { target, .. } | StmtKind::AugAssign { target, .. } => match target {
                Target::Name(n) => {
                    assigned.insert(n.clone());
                }
                Target::Tuple(names) => {
                    for n in names {
                        assigned.insert(n.clone());
                    }
                }
                Target::Index { .. } => {}
            },
            StmtKind::If { then, orelse, .. } => {
                collect_assigned(then, assigned, globals_decl);
                collect_assigned(orelse, assigned, globals_decl);
            }
            StmtKind::While { body, .. } => collect_assigned(body, assigned, globals_decl),
            StmtKind::For { vars, body, .. } => {
                for v in vars {
                    assigned.insert(v.clone());
                }
                collect_assigned(body, assigned, globals_decl);
            }
            StmtKind::Def { name, .. } => {
                assigned.insert(name.clone());
            }
            StmtKind::Try {
                body,
                handlers,
                finally,
            } => {
                collect_assigned(body, assigned, globals_decl);
                for h in handlers {
                    if let Some(b) = &h.bind {
                        assigned.insert(b.clone());
                    }
                    collect_assigned(&h.body, assigned, globals_decl);
                }
                collect_assigned(finally, assigned, globals_decl);
            }
            StmtKind::Global(names) => {
                for n in names {
                    globals_decl.insert(n.clone());
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile(src: &str) -> Rc<Code> {
        compile_module(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn module_compiles_to_code() {
        let code = compile("x = 1\nprint(x)\n");
        assert!(!code.instrs.is_empty());
        assert!(code.instrs.contains(&Instr::Return));
    }

    #[test]
    fn function_locals_vs_globals() {
        let code = compile("g = 0\ndef f(a):\n    b = a + g\n    return b\n");
        let func = code
            .consts
            .iter()
            .find_map(|c| match c {
                Const::Code(c) => Some(c.clone()),
                _ => None,
            })
            .expect("function code present");
        assert_eq!(func.params, vec!["a"]);
        assert!(func.locals.contains(&"b".to_string()));
        assert!(!func.locals.contains(&"g".to_string()));
        let table = code.globals.as_ref().expect("module global table");
        let g = table.slot("g").expect("g interned as a global");
        assert!(func.instrs.contains(&Instr::LoadGlobal(g)));
    }

    #[test]
    fn global_declaration_forces_global_store() {
        let code = compile("c = 0\ndef f():\n    global c\n    c = 1\n");
        let func = code
            .consts
            .iter()
            .find_map(|c| match c {
                Const::Code(c) => Some(c.clone()),
                _ => None,
            })
            .unwrap();
        assert!(!func.locals.contains(&"c".to_string()));
        assert!(func
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::StoreGlobal(_))));
    }

    #[test]
    fn break_outside_loop_is_compile_error() {
        assert!(compile_module(&parse("break\n").unwrap()).is_err());
        assert!(compile_module(&parse("continue\n").unwrap()).is_err());
    }

    #[test]
    fn return_at_module_level_is_compile_error() {
        assert!(compile_module(&parse("return 1\n").unwrap()).is_err());
    }

    #[test]
    fn return_in_finally_is_rejected() {
        let src = "def f():\n    try:\n        pass\n    finally:\n        return 1\n";
        assert!(compile_module(&parse(src).unwrap()).is_err());
    }

    #[test]
    fn break_in_finally_is_rejected() {
        let src =
            "def f():\n    while True:\n        try:\n            pass\n        finally:\n            break\n";
        assert!(compile_module(&parse(src).unwrap()).is_err());
    }

    #[test]
    fn try_except_emits_setup_and_match() {
        let code = compile("try:\n    f()\nexcept ValueError:\n    pass\n");
        assert!(code
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::SetupExcept(_))));
        assert!(code.instrs.iter().any(|i| matches!(i, Instr::MatchExc(_))));
    }

    #[test]
    fn finally_is_inlined_on_normal_path() {
        let code = compile("try:\n    x = 1\nfinally:\n    y = 2\n");
        // `y = 2` appears twice: normal path + exception path.
        let table = code.globals.as_ref().expect("module global table");
        let y = table.slot("y").expect("y interned as a global");
        let stores = code
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::StoreGlobal(idx) if *idx == y))
            .count();
        assert_eq!(stores, 2);
    }

    #[test]
    fn const_pool_deduplicates() {
        let code = compile("x = 1\ny = 1\nz = 1\n");
        let ones = code
            .consts
            .iter()
            .filter(|c| matches!(c, Const::Value(Value::Int(1))))
            .count();
        assert_eq!(ones, 1);
    }

    #[test]
    fn disassembly_is_nonempty() {
        let code = compile("def f():\n    return 1\nf()\n");
        let dis = code.disassemble();
        assert!(dis.contains("<module>"));
        assert!(dis.contains("code f"));
    }
}
