//! The PyLite virtual machine: cooperative tasks, virtual time, and
//! dependability instrumentation.
//!
//! The machine is the *observability substrate* for fault injection:
//! besides executing bytecode it detects and reports
//!
//! * **hangs** — a global step budget plus deadlock detection,
//! * **data races** — an Eraser-style lockset algorithm over shared
//!   globals and shared containers,
//! * **resource leaks** — handles opened via `open_handle` and never
//!   closed,
//! * **buffer overflows** — writes past a bounded buffer's capacity,
//!
//! all of which the fault-injection harness (crate `nfi-inject`) turns
//! into failure-mode classifications.
//!
//! Scheduling is deterministic for a given [`MachineConfig::seed`]: tasks
//! are preempted every [`MachineConfig::quantum`] instructions and the
//! next runnable task is chosen by a seeded RNG, so interleavings are
//! reproducible and explorable by sweeping seeds.

use crate::ast::Module;
use crate::builtins;
use crate::code::{Code, Const, GlobalTable, Instr};
use crate::compile::compile_module;
use crate::error::{ErrorKind, PyliteError};
use crate::ops;
use crate::parser::parse;
use crate::value::{ExcObj, FuncObj, HandleObj, IterObj, LockId, TaskId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;

/// Configuration for a [`Machine`].
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Maximum total instructions per run before the run is declared hung.
    pub step_budget: u64,
    /// Instructions a task may execute before preemption.
    pub quantum: u32,
    /// Seed for the deterministic scheduler and `rand_int`/`rand_float`.
    pub seed: u64,
    /// Whether to run the lockset race detector.
    pub detect_races: bool,
    /// Maximum frame depth before `RecursionError` is raised.
    pub max_frames: usize,
    /// Maximum bytes of `print` output retained per run.
    pub max_output: usize,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            step_budget: 2_000_000,
            quantum: 16,
            seed: 0xC0FFEE,
            detect_races: true,
            max_frames: 256,
            max_output: 1 << 20,
        }
    }
}

/// Why a run failed to complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HangKind {
    /// The instruction budget was exhausted (livelock / infinite loop).
    StepBudget,
    /// Every live task is blocked and no timer can fire.
    Deadlock,
}

/// Details of an uncaught exception.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExcInfo {
    /// Exception kind, e.g. `"TimeoutError"`.
    pub kind: String,
    /// Exception message.
    pub message: String,
    /// Source line where it escaped, when known.
    pub line: Option<u32>,
    /// Task in which it escaped.
    pub task: TaskId,
}

/// Terminal status of a run.
#[derive(Debug, Clone, PartialEq)]
pub enum RunStatus {
    /// The main task ran to completion.
    Completed,
    /// An exception escaped the main task.
    Uncaught(ExcInfo),
    /// The run hung (step budget or deadlock).
    Hung(HangKind),
}

/// A detected data race.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// Name of the racy location (global name or container hint).
    pub location: String,
    /// Task that first owned the location.
    pub first_task: TaskId,
    /// Task whose access completed the race.
    pub second_task: TaskId,
    /// Source line of the completing access, when known.
    pub line: Option<u32>,
}

/// A detected buffer overflow (write past capacity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverflowReport {
    /// Attempted index.
    pub index: i64,
    /// Buffer capacity.
    pub capacity: usize,
    /// Source line, when known.
    pub line: Option<u32>,
}

/// A resource handle left open at the end of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakReport {
    /// Name passed to `open_handle`.
    pub name: String,
}

/// Everything observed during one run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Terminal status of the main task.
    pub status: RunStatus,
    /// Captured `print` output.
    pub output: String,
    /// Data races detected by the lockset algorithm.
    pub races: Vec<RaceReport>,
    /// Buffer overflows (reported even when the raised `BufferOverflowError`
    /// was caught).
    pub overflows: Vec<OverflowReport>,
    /// Handles never closed.
    pub leaks: Vec<LeakReport>,
    /// Uncaught exceptions in *spawned* tasks (main-task escapes are in
    /// `status`).
    pub task_failures: Vec<ExcInfo>,
    /// Instructions executed.
    pub steps: u64,
    /// Virtual seconds elapsed.
    pub vtime: f64,
    /// Value returned by the entry function (for `call`).
    pub return_value: Option<Value>,
}

impl RunOutcome {
    /// True when the run completed with no uncaught exception anywhere.
    pub fn clean(&self) -> bool {
        matches!(self.status, RunStatus::Completed) && self.task_failures.is_empty()
    }
}

#[derive(Debug)]
enum BlockKind {
    Except { handler: u32 },
    Finally { handler: u32 },
}

#[derive(Debug)]
struct Block {
    kind: BlockKind,
    stack_depth: usize,
}

#[derive(Debug)]
struct Frame {
    code: Rc<Code>,
    pc: usize,
    stack: Vec<Value>,
    locals: Vec<Option<Value>>,
    blocks: Vec<Block>,
}

impl Frame {
    fn new(code: Rc<Code>) -> Self {
        let n = code.locals.len();
        Frame {
            code,
            pc: 0,
            stack: Vec::new(),
            locals: vec![None; n],
            blocks: Vec::new(),
        }
    }
}

/// What a blocked task is waiting for.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Wait {
    /// Virtual-time sleep until the given instant.
    Sleep { wake_at: f64 },
    /// Lock acquisition.
    Lock(LockId),
    /// Join on another task.
    Join(TaskId),
}

#[derive(Debug)]
enum TaskStatus {
    Ready,
    Blocked(Wait),
    Done(Result<Value, Rc<ExcObj>>),
}

struct Task {
    id: TaskId,
    frames: Vec<Frame>,
    status: TaskStatus,
    current_exc: Option<Value>,
    failure_line: Option<u32>,
}

impl Task {
    fn dummy() -> Self {
        Task {
            id: usize::MAX,
            frames: Vec::new(),
            status: TaskStatus::Done(Ok(Value::None)),
            current_exc: None,
            failure_line: None,
        }
    }

    fn done(&self) -> bool {
        matches!(self.status, TaskStatus::Done(_))
    }
}

#[derive(Debug, Default)]
struct LockState {
    held_by: Option<TaskId>,
}

#[derive(Debug, PartialEq, Eq, Hash, Clone, Copy)]
enum AccessKey {
    /// A global, identified by its slot in the installed [`GlobalTable`].
    Global(u16),
    Object(usize),
}

/// FNV-1a hasher for the machine's interior maps (access tracking,
/// container names). The keys are small integers, the maps are never
/// iterated, and lookups sit on the per-instruction hot path of the
/// race detector — where the default SipHash costs more than the rest
/// of the bookkeeping combined.
#[derive(Default)]
struct FastHasher(u64);

impl std::hash::Hasher for FastHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }

    fn write_u16(&mut self, n: u16) {
        self.write_u64(u64::from(n));
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x100_0000_01b3);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

type FastMap<K, V> = HashMap<K, V, std::hash::BuildHasherDefault<FastHasher>>;

#[derive(Debug)]
struct AccessState {
    owner: TaskId,
    shared: bool,
    written: bool,
    modified_shared: bool,
    lockset: BTreeSet<LockId>,
    reported: bool,
    /// Global step count of the most recent access (used for the
    /// spawn-boundary ownership-transfer refinement).
    last_step: u64,
}

pub(crate) enum BuiltinFlow {
    /// Builtin produced a value; push it.
    Value(Value),
    /// Builtin raised.
    Raise(Value),
    /// Builtin blocks the task; the wake-up logic pushes the resume value.
    Block(Wait),
}

enum StepFlow {
    Normal,
    Yield,
    Finished,
}

/// The PyLite virtual machine. See the [module docs](self) for an overview.
///
/// # Examples
///
/// ```
/// use nfi_pylite::{Machine, MachineConfig};
///
/// let mut m = Machine::new(MachineConfig::default());
/// let out = m.run_source("def f(x):\n    return x * 2\nprint(f(21))\n")?;
/// assert_eq!(out.output, "42\n");
/// # Ok::<(), nfi_pylite::PyliteError>(())
/// ```
pub struct Machine {
    config: MachineConfig,
    /// Global table of the most recently run module code; slot operands
    /// in `LoadGlobal`/`StoreGlobal` index into `slots` through it.
    table: Rc<GlobalTable>,
    /// Slot-indexed global values (parallel to `table.names`).
    slots: Vec<Option<Value>>,
    /// Host-set globals whose names the installed table does not know.
    extra_globals: HashMap<String, Value>,
    tasks: Vec<Task>,
    /// Locks held per task (indexed by `TaskId`; lives outside `Task`
    /// because the running task is checked out of `tasks` during a step).
    task_locks: Vec<BTreeSet<LockId>>,
    /// Global step count at which each task was spawned.
    task_spawn_step: Vec<u64>,
    pub(crate) clock: f64,
    pub(crate) rng: StdRng,
    pub(crate) output: String,
    locks: Vec<LockState>,
    pub(crate) handles: Vec<Rc<HandleObj>>,
    races: Vec<RaceReport>,
    pub(crate) overflows: Vec<OverflowReport>,
    steps: u64,
    access: FastMap<AccessKey, AccessState>,
    obj_names: FastMap<usize, String>,
    pub(crate) next_handle: usize,
    current_line: Option<u32>,
    spawned_failures: Vec<ExcInfo>,
    /// Scratch buffer reused by `schedule()` for the per-quantum
    /// runnable-task collection (avoids a fresh `Vec` every quantum).
    runnable: Vec<TaskId>,
}

impl Machine {
    /// Creates a machine with the given configuration.
    pub fn new(config: MachineConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        Machine {
            config,
            table: Rc::new(GlobalTable::default()),
            slots: Vec::new(),
            extra_globals: HashMap::new(),
            tasks: Vec::new(),
            task_locks: Vec::new(),
            task_spawn_step: Vec::new(),
            clock: 0.0,
            rng,
            output: String::new(),
            locks: Vec::new(),
            handles: Vec::new(),
            races: Vec::new(),
            overflows: Vec::new(),
            steps: 0,
            access: FastMap::default(),
            obj_names: FastMap::default(),
            next_handle: 0,
            current_line: None,
            spawned_failures: Vec::new(),
            runnable: Vec::new(),
        }
    }

    /// Resets the machine to the observable state of a fresh
    /// `Machine::new(config)` while retaining allocations (and the
    /// installed global table), so harnesses can reuse one machine
    /// across many runs instead of rebuilding it per run. The RNG
    /// stream, virtual clock, globals, locks, and handle ids all
    /// restart exactly as on a new machine.
    pub fn reset(&mut self, config: MachineConfig) {
        self.rng = StdRng::seed_from_u64(config.seed);
        self.config = config;
        for slot in &mut self.slots {
            *slot = None;
        }
        self.extra_globals.clear();
        self.tasks.clear();
        self.task_locks.clear();
        self.task_spawn_step.clear();
        self.clock = 0.0;
        self.output.clear();
        self.locks.clear();
        self.handles.clear();
        self.races.clear();
        self.overflows.clear();
        self.steps = 0;
        self.access.clear();
        self.obj_names.clear();
        self.next_handle = 0;
        self.current_line = None;
        self.spawned_failures.clear();
    }

    /// Parses, compiles, and runs source text as a module.
    ///
    /// # Errors
    ///
    /// Returns lex/parse/compile errors; *runtime* failures are reported
    /// inside the [`RunOutcome`].
    pub fn run_source(&mut self, source: &str) -> Result<RunOutcome, PyliteError> {
        let module = parse(source)?;
        self.run_module(&module)
    }

    /// Compiles and runs a module's top-level code. Definitions persist in
    /// the machine's globals for later [`Machine::call`]s.
    ///
    /// # Errors
    ///
    /// Returns compile errors; runtime failures are in the [`RunOutcome`].
    pub fn run_module(&mut self, module: &Module) -> Result<RunOutcome, PyliteError> {
        let code = compile_module(module)?;
        Ok(self.run_code(code))
    }

    /// Calls a previously-defined global function to completion under the
    /// scheduler (used by the test harness to invoke entry points).
    ///
    /// # Errors
    ///
    /// Returns a [`ErrorKind::Runtime`] error when `name` is not a defined
    /// function.
    pub fn call(&mut self, name: &str, args: Vec<Value>) -> Result<RunOutcome, PyliteError> {
        let func = match self.global(name) {
            Some(Value::Func(f)) => f.clone(),
            Some(other) => {
                return Err(PyliteError::new(
                    ErrorKind::Runtime,
                    format!("global `{name}` is {} and not callable", other.type_name()),
                ))
            }
            None => {
                return Err(PyliteError::new(
                    ErrorKind::Runtime,
                    format!("no function named `{name}`"),
                ))
            }
        };
        let mut frame = Frame::new(func.code.clone());
        if let Err(e) = bind_args(&func, args, &mut frame) {
            return Err(PyliteError::new(ErrorKind::Runtime, e.py_str()));
        }
        Ok(self.run_frames(vec![frame]))
    }

    /// A borrowed reference to the value of a global variable, if defined.
    pub fn global(&self, name: &str) -> Option<&Value> {
        match self.table.slot(name) {
            Some(slot) => self.slots.get(slot as usize).and_then(|v| v.as_ref()),
            None => self.extra_globals.get(name),
        }
    }

    /// Sets a global variable (used by harnesses to parameterize runs).
    ///
    /// Names the installed global table does not know are kept aside and
    /// migrated into slots when a module that references them runs.
    pub fn set_global(&mut self, name: &str, value: Value) {
        match self.table.slot(name) {
            Some(slot) => self.slots[slot as usize] = Some(value),
            None => {
                self.extra_globals.insert(name.to_string(), value);
            }
        }
    }

    /// Names of globals holding user-defined functions, sorted (borrowed
    /// from the machine's global table; no per-name clone).
    pub fn function_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .table
            .names
            .iter()
            .zip(self.slots.iter())
            .filter(|(_, val)| matches!(val, Some(Value::Func(_))))
            .map(|(k, _)| k.as_str())
            .chain(
                self.extra_globals
                    .iter()
                    .filter(|(_, val)| matches!(val, Value::Func(_)))
                    .map(|(k, _)| k.as_str()),
            )
            .collect();
        v.sort_unstable();
        v
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Runs a precompiled module code object (the compile-once, run-many
    /// entry used by harnesses together with a code cache). Installs the
    /// code's global table when it differs from the currently installed
    /// one; definitions persist in the machine's globals exactly as with
    /// [`Machine::run_module`].
    pub fn run_code(&mut self, code: Rc<Code>) -> RunOutcome {
        if let Some(table) = &code.globals {
            self.install_table(Rc::clone(table));
        }
        self.run_frames(vec![Frame::new(code)])
    }

    /// Swaps in a module's global table, carrying existing global values
    /// over by name so name-keyed semantics survive a module switch.
    fn install_table(&mut self, table: Rc<GlobalTable>) {
        if Rc::ptr_eq(&self.table, &table) {
            return;
        }
        let old = std::mem::replace(&mut self.table, Rc::clone(&table));
        for (i, v) in self.slots.drain(..).enumerate() {
            if let Some(v) = v {
                self.extra_globals.insert(old.names[i].clone(), v);
            }
        }
        self.slots = vec![None; table.names.len()];
        for (i, name) in table.names.iter().enumerate() {
            if let Some(v) = self.extra_globals.remove(name) {
                self.slots[i] = Some(v);
            }
        }
    }

    fn run_frames(&mut self, frames: Vec<Frame>) -> RunOutcome {
        // Fresh per-run state.
        self.tasks.clear();
        self.task_locks.clear();
        self.task_spawn_step.clear();
        // Lock *objects* persist across runs (they live in globals); only
        // their held state resets, since task ids are per-run.
        for lock in &mut self.locks {
            lock.held_by = None;
        }
        self.races.clear();
        self.overflows.clear();
        self.access.clear();
        self.obj_names.clear();
        self.output.clear();
        self.spawned_failures.clear();
        let start_steps = self.steps;
        let start_clock = self.clock;
        self.steps = 0;
        let _ = start_steps;
        self.tasks.push(Task {
            id: 0,
            frames,
            status: TaskStatus::Ready,
            current_exc: None,
            failure_line: None,
        });
        self.task_locks.push(BTreeSet::new());
        self.task_spawn_step.push(0);

        let status = self.schedule();

        // Leak detection: handles opened during this run and still open.
        let leaks: Vec<LeakReport> = self
            .handles
            .drain(..)
            .filter(|h| !h.closed.get())
            .map(|h| LeakReport {
                name: h.name.clone(),
            })
            .collect();

        let return_value = match &self.tasks.first().map(|t| &t.status) {
            Some(TaskStatus::Done(Ok(v))) => Some(v.clone()),
            _ => None,
        };

        RunOutcome {
            status,
            output: std::mem::take(&mut self.output),
            races: std::mem::take(&mut self.races),
            overflows: std::mem::take(&mut self.overflows),
            leaks,
            task_failures: std::mem::take(&mut self.spawned_failures),
            steps: self.steps,
            vtime: self.clock - start_clock,
            return_value,
        }
    }

    // ---- scheduler --------------------------------------------------------

    fn schedule(&mut self) -> RunStatus {
        // The runnable collection reuses one machine-owned scratch buffer
        // across every quantum of the run (taken out of `self` here to
        // satisfy the borrow checker around `wait_satisfied`).
        let mut runnable = std::mem::take(&mut self.runnable);
        let status = 'sched: loop {
            if self.tasks.iter().all(|t| t.done()) {
                break self.main_status();
            }
            // A task is runnable when Ready, or blocked on a condition that
            // is now satisfied.
            runnable.clear();
            for t in &self.tasks {
                let ready = match &t.status {
                    TaskStatus::Ready => true,
                    TaskStatus::Blocked(w) => self.wait_satisfied(w),
                    TaskStatus::Done(_) => false,
                };
                if ready {
                    runnable.push(t.id);
                }
            }
            if runnable.is_empty() {
                // Advance virtual time to the earliest sleeper, else deadlock.
                let min_wake = self
                    .tasks
                    .iter()
                    .filter_map(|t| match &t.status {
                        TaskStatus::Blocked(Wait::Sleep { wake_at }) => Some(*wake_at),
                        _ => None,
                    })
                    .fold(f64::INFINITY, f64::min);
                if min_wake.is_finite() {
                    self.clock = min_wake;
                    continue;
                }
                self.fail_unfinished_tasks();
                break RunStatus::Hung(HangKind::Deadlock);
            }
            let pick = runnable[self.rng.gen_range(0..runnable.len())];
            self.wake(pick);
            // Check the task out once per quantum, not once per step:
            // `step_inner` needs it outside `self.tasks` anyway (its
            // slot holds a Done dummy meanwhile), and hoisting the swap
            // out of the step loop removes two `Task` moves per
            // instruction from the dispatch path.
            let mut task = std::mem::replace(&mut self.tasks[pick], Task::dummy());
            let mut executed = 0u32;
            let mut out_of_steps = false;
            while executed < self.config.quantum {
                if self.steps >= self.config.step_budget {
                    out_of_steps = true;
                    break;
                }
                self.steps += 1;
                executed += 1;
                match self.step_inner(&mut task) {
                    StepFlow::Normal => {
                        if !matches!(task.status, TaskStatus::Ready) {
                            break;
                        }
                    }
                    StepFlow::Yield | StepFlow::Finished => break,
                }
            }
            self.tasks[pick] = task;
            if out_of_steps {
                self.fail_unfinished_tasks();
                break 'sched RunStatus::Hung(HangKind::StepBudget);
            }
        };
        self.runnable = runnable;
        status
    }

    fn main_status(&mut self) -> RunStatus {
        // Collect failures in spawned tasks first.
        for t in &self.tasks {
            if t.id == 0 {
                continue;
            }
            if let TaskStatus::Done(Err(exc)) = &t.status {
                let info = ExcInfo {
                    kind: exc.kind.clone(),
                    message: exc.message.clone(),
                    line: t.failure_line,
                    task: t.id,
                };
                if !self.spawned_failures.contains(&info) {
                    self.spawned_failures.push(info);
                }
            }
        }
        match &self.tasks[0].status {
            TaskStatus::Done(Ok(_)) => RunStatus::Completed,
            TaskStatus::Done(Err(exc)) => RunStatus::Uncaught(ExcInfo {
                kind: exc.kind.clone(),
                message: exc.message.clone(),
                line: self.tasks[0].failure_line,
                task: 0,
            }),
            _ => RunStatus::Hung(HangKind::Deadlock),
        }
    }

    fn fail_unfinished_tasks(&mut self) {
        self.main_status();
    }

    fn wait_satisfied(&self, w: &Wait) -> bool {
        match w {
            Wait::Sleep { wake_at } => self.clock >= *wake_at,
            Wait::Lock(l) => self.locks[*l].held_by.is_none(),
            Wait::Join(t) => self.tasks.get(*t).map(|t| t.done()).unwrap_or(true),
        }
    }

    /// Transitions a runnable blocked task back to Ready, performing the
    /// wake-up side effect (lock grant, join result push, ...).
    fn wake(&mut self, tid: TaskId) {
        let wait = match &self.tasks[tid].status {
            TaskStatus::Blocked(w) => w.clone(),
            _ => return,
        };
        match wait {
            Wait::Sleep { .. } => {
                self.tasks[tid].status = TaskStatus::Ready;
                self.push_value(tid, Value::None);
            }
            Wait::Lock(l) => {
                debug_assert!(self.locks[l].held_by.is_none());
                self.locks[l].held_by = Some(tid);
                self.task_locks[tid].insert(l);
                self.tasks[tid].status = TaskStatus::Ready;
                self.push_value(tid, Value::Bool(true));
            }
            Wait::Join(target) => {
                let result = match &self.tasks[target].status {
                    TaskStatus::Done(r) => r.clone(),
                    _ => unreachable!("join wake requires finished target"),
                };
                self.tasks[tid].status = TaskStatus::Ready;
                match result {
                    Ok(v) => self.push_value(tid, v),
                    Err(exc) => {
                        let exc = Value::Exc(exc);
                        self.raise_in_task(tid, exc);
                    }
                }
            }
        }
    }

    fn push_value(&mut self, tid: TaskId, v: Value) {
        if let Some(frame) = self.tasks[tid].frames.last_mut() {
            frame.stack.push(v);
        }
    }

    // ---- race detection ---------------------------------------------------

    /// Remembers the global name a container was first stored under, so
    /// race reports on the container can name it. Only clones the name
    /// when a new container is seen.
    fn note_global_store_hint(&mut self, slot: u16, value: &Value) {
        if let Some(addr) = container_addr(value) {
            if !self.obj_names.contains_key(&addr) {
                if let Some(name) = self.table.names.get(slot as usize) {
                    self.obj_names.insert(addr, name.clone());
                }
            }
        }
    }

    // Both recorders skip while `tasks.len() == 1`: until a second task
    // has *ever* been spawned nothing can race, and the entries skipped
    // here are observably dead — the first post-spawn access of a
    // location recreates exactly the owner/lockset state the
    // spawn-boundary ownership transfer would have derived from them
    // (the `written` flag they would have accumulated is never read).
    fn record_global_access(&mut self, tid: TaskId, slot: u16, is_write: bool) {
        if !self.config.detect_races || self.tasks.len() == 1 {
            return;
        }
        self.record_access(AccessKey::Global(slot), tid, is_write, "");
    }

    pub(crate) fn record_object_access(&mut self, tid: TaskId, value: &Value, is_write: bool) {
        if !self.config.detect_races || self.tasks.len() == 1 {
            return;
        }
        let Some(addr) = container_addr(value) else {
            return;
        };
        self.record_access(AccessKey::Object(addr), tid, is_write, value.type_name());
    }

    /// Core lockset bookkeeping for one access. `type_name` is only used
    /// when an [`AccessKey::Object`] race is reported and no stored name
    /// hint exists; the location string is built lazily at report time
    /// rather than on every access.
    fn record_access(&mut self, key: AccessKey, tid: TaskId, is_write: bool, type_name: &str) {
        let line = self.current_line;
        let now = self.steps;
        let spawn_step = self.task_spawn_step[tid];
        // Sequential-phase reset: when every other task has finished, the
        // program is single-threaded again (e.g. main reading results after
        // joining workers), so accesses cannot race. Note the running task
        // is checked out of `tasks` (its slot holds a Done dummy), hence
        // the index comparison.
        let others_alive = self
            .tasks
            .iter()
            .enumerate()
            .any(|(i, t)| i != tid && !t.done());
        if !others_alive {
            if let Some(entry) = self.access.get_mut(&key) {
                entry.shared = false;
                entry.owner = tid;
                entry.written = is_write;
                entry.lockset.clear();
                entry.last_step = now;
                return;
            }
        }
        let entry = self.access.entry(key).or_insert_with(|| AccessState {
            owner: tid,
            shared: false,
            written: is_write,
            modified_shared: false,
            lockset: BTreeSet::new(),
            reported: false,
            last_step: now,
        });
        if !entry.shared {
            if entry.owner == tid {
                entry.written |= is_write;
                entry.last_step = now;
                return;
            }
            if entry.last_step <= spawn_step {
                // Every prior access happened before this task was spawned:
                // initialization hand-off, not sharing. Transfer ownership.
                entry.owner = tid;
                entry.written = is_write;
                entry.last_step = now;
                return;
            }
            // Second concurrent task touches the location: shared regime.
            entry.shared = true;
            entry.lockset = self.task_locks[tid].clone();
            entry.modified_shared = is_write;
        } else {
            // Intersect in place: the common spin-loop case re-observes
            // the same lockset every iteration, and `retain` avoids the
            // per-access `BTreeSet` rebuild an `intersection().collect()`
            // would allocate.
            if !entry.lockset.is_empty() {
                let held = &self.task_locks[tid];
                entry.lockset.retain(|l| held.contains(l));
            }
            entry.modified_shared |= is_write;
        }
        entry.written |= is_write;
        entry.last_step = now;
        if entry.modified_shared && entry.lockset.is_empty() && !entry.reported {
            entry.reported = true;
            let location = match key {
                AccessKey::Global(slot) => self
                    .table
                    .names
                    .get(slot as usize)
                    .cloned()
                    .unwrap_or_default(),
                AccessKey::Object(addr) => self
                    .obj_names
                    .get(&addr)
                    .cloned()
                    .unwrap_or_else(|| format!("<{type_name}@{addr:x}>")),
            };
            self.races.push(RaceReport {
                location,
                first_task: entry.owner,
                second_task: tid,
                line,
            });
        }
    }

    // ---- task / builtin support (used by builtins.rs) ---------------------

    pub(crate) fn spawn_task(
        &mut self,
        func: Rc<FuncObj>,
        args: Vec<Value>,
    ) -> Result<TaskId, Value> {
        let mut frame = Frame::new(func.code.clone());
        bind_args(&func, args, &mut frame)?;
        let id = self.tasks.len();
        self.tasks.push(Task {
            id,
            frames: vec![frame],
            status: TaskStatus::Ready,
            current_exc: None,
            failure_line: None,
        });
        self.task_locks.push(BTreeSet::new());
        self.task_spawn_step.push(self.steps);
        Ok(id)
    }

    pub(crate) fn new_lock(&mut self) -> LockId {
        self.locks.push(LockState::default());
        self.locks.len() - 1
    }

    pub(crate) fn try_acquire(&mut self, tid: TaskId, lock: LockId) -> bool {
        if self.locks[lock].held_by.is_none() {
            self.locks[lock].held_by = Some(tid);
            self.task_locks[tid].insert(lock);
            true
        } else {
            false
        }
    }

    pub(crate) fn release_lock(&mut self, tid: TaskId, lock: LockId) -> Result<(), Value> {
        if self.locks[lock].held_by != Some(tid) {
            return Err(Value::exc(
                "RuntimeError",
                "release of a lock not held by this task",
            ));
        }
        self.locks[lock].held_by = None;
        self.task_locks[tid].remove(&lock);
        Ok(())
    }

    pub(crate) fn lock_exists(&self, lock: LockId) -> bool {
        lock < self.locks.len()
    }

    pub(crate) fn try_peek_free(&self, lock: LockId) -> bool {
        self.locks[lock].held_by.is_none()
    }

    pub(crate) fn task_exists(&self, t: TaskId) -> bool {
        t < self.tasks.len()
    }

    pub(crate) fn print_line(&mut self, line: &str) {
        if self.output.len() < self.config.max_output {
            self.output.push_str(line);
            self.output.push('\n');
        }
    }

    pub(crate) fn note_overflow(&mut self, index: i64, capacity: usize) {
        let line = self.current_line;
        self.overflows.push(OverflowReport {
            index,
            capacity,
            line,
        });
    }

    // ---- exception handling ------------------------------------------------

    /// Raises `exc` inside a task, unwinding frames until a handler is
    /// found. When nothing catches it, the task dies.
    fn raise_in_task(&mut self, tid: TaskId, exc: Value) {
        let exc_obj = match &exc {
            Value::Exc(e) => e.clone(),
            other => Rc::new(ExcObj::new(
                "TypeError",
                format!(
                    "exceptions must be exception values, not {}",
                    other.type_name()
                ),
            )),
        };
        let exc = Value::Exc(exc_obj.clone());
        let task = &mut self.tasks[tid];
        loop {
            let Some(frame) = task.frames.last_mut() else {
                task.failure_line = self.current_line;
                task.status = TaskStatus::Done(Err(exc_obj));
                return;
            };
            if let Some(block) = frame.blocks.pop() {
                frame.stack.truncate(block.stack_depth);
                frame.stack.push(exc.clone());
                match block.kind {
                    BlockKind::Except { handler } | BlockKind::Finally { handler } => {
                        frame.pc = handler as usize;
                    }
                }
                task.current_exc = Some(exc);
                return;
            }
            // No handler in this frame: release nothing (locks are
            // task-scoped, not frame-scoped) and pop the frame.
            task.frames.pop();
        }
    }

    // ---- the interpreter loop ----------------------------------------------

    fn step_inner(&mut self, task: &mut Task) -> StepFlow {
        let tid = task.id;
        let Some(frame) = task.frames.last_mut() else {
            task.status = TaskStatus::Done(Ok(Value::None));
            return StepFlow::Finished;
        };
        if frame.pc >= frame.code.instrs.len() {
            // Fell off the end (defensive; compiler always emits Return).
            let result = frame.stack.pop().unwrap_or(Value::None);
            task.frames.pop();
            if task.frames.is_empty() {
                task.status = TaskStatus::Done(Ok(result));
                return StepFlow::Finished;
            }
            task.frames
                .last_mut()
                .expect("caller frame")
                .stack
                .push(result);
            return StepFlow::Normal;
        }
        let instr = frame.code.instrs[frame.pc];
        self.current_line = frame.code.span_at(frame.pc).map(|s| s.line);
        frame.pc += 1;

        macro_rules! raise {
            ($task:expr, $exc:expr) => {{
                let exc = $exc;
                self.raise_in_task_local($task, exc);
                return StepFlow::Normal;
            }};
        }

        match instr {
            Instr::LoadConst(i) => {
                let v = match &frame.code.consts[i as usize] {
                    Const::Value(v) => v.clone(),
                    Const::Code(_) => Value::None,
                };
                frame.stack.push(v);
            }
            Instr::LoadLocal(i) => match frame.locals[i as usize].clone() {
                Some(v) => frame.stack.push(v),
                None => {
                    let name = frame.code.locals[i as usize].clone();
                    raise!(
                        task,
                        Value::exc(
                            "UnboundLocalError",
                            format!("local variable `{name}` referenced before assignment")
                        )
                    );
                }
            },
            Instr::StoreLocal(i) => {
                let v = frame.stack.pop().expect("store requires a value");
                frame.locals[i as usize] = Some(v);
            }
            Instr::LoadGlobal(i) => {
                // Slot-resolved hot path: a vector index into the
                // machine's global slots, with the builtin fallback
                // pre-resolved per slot at compile time.
                match self.slots.get(i as usize).and_then(|v| v.clone()) {
                    Some(v) => {
                        self.record_global_access(tid, i, false);
                        task.frames.last_mut().expect("frame").stack.push(v);
                    }
                    None => match self.table.builtins.get(i as usize).and_then(|b| b.clone()) {
                        Some(v) => frame.stack.push(v),
                        None => {
                            let name = self
                                .table
                                .names
                                .get(i as usize)
                                .cloned()
                                .unwrap_or_default();
                            raise!(
                                task,
                                Value::exc("NameError", format!("name `{name}` is not defined"))
                            )
                        }
                    },
                }
            }
            Instr::StoreGlobal(i) => {
                let v = frame.stack.pop().expect("store requires a value");
                self.note_global_store_hint(i, &v);
                self.record_global_access(tid, i, true);
                let slot = i as usize;
                if slot >= self.slots.len() {
                    self.slots.resize(slot + 1, None);
                }
                self.slots[slot] = Some(v);
            }
            Instr::Bin(op) => {
                let b = frame.stack.pop().expect("binop rhs");
                let a = frame.stack.pop().expect("binop lhs");
                match ops::binary(op, &a, &b) {
                    Ok(v) => frame.stack.push(v),
                    Err(e) => raise!(task, e),
                }
            }
            Instr::Cmp(op) => {
                let b = frame.stack.pop().expect("cmp rhs");
                let a = frame.stack.pop().expect("cmp lhs");
                match ops::compare(op, &a, &b) {
                    Ok(v) => frame.stack.push(v),
                    Err(e) => raise!(task, e),
                }
            }
            Instr::Not => {
                let v = frame.stack.pop().expect("not operand");
                frame.stack.push(Value::Bool(!v.truthy()));
            }
            Instr::Neg => {
                let v = frame.stack.pop().expect("neg operand");
                match v {
                    Value::Int(i) => frame.stack.push(Value::Int(-i)),
                    Value::Float(f) => frame.stack.push(Value::Float(-f)),
                    Value::Bool(b) => frame.stack.push(Value::Int(-(b as i64))),
                    other => raise!(
                        task,
                        Value::exc(
                            "TypeError",
                            format!("bad operand type for unary -: {}", other.type_name())
                        )
                    ),
                }
            }
            Instr::Jump(t) => frame.pc = t as usize,
            Instr::JumpIfFalsePop(t) => {
                let v = frame.stack.pop().expect("jump condition");
                if !v.truthy() {
                    frame.pc = t as usize;
                }
            }
            Instr::JumpIfTruePop(t) => {
                let v = frame.stack.pop().expect("jump condition");
                if v.truthy() {
                    frame.pc = t as usize;
                }
            }
            Instr::JumpIfFalsePeek(t) => {
                let v = frame.stack.last().expect("jump condition");
                if !v.truthy() {
                    frame.pc = t as usize;
                }
            }
            Instr::JumpIfTruePeek(t) => {
                let v = frame.stack.last().expect("jump condition");
                if v.truthy() {
                    frame.pc = t as usize;
                }
            }
            Instr::MakeList(n) => {
                let at = frame.stack.len() - n as usize;
                let items = frame.stack.split_off(at);
                frame.stack.push(Value::list(items));
            }
            Instr::MakeTuple(n) => {
                let at = frame.stack.len() - n as usize;
                let items = frame.stack.split_off(at);
                frame.stack.push(Value::Tuple(Rc::new(items)));
            }
            Instr::MakeDict(n) => {
                let at = frame.stack.len() - 2 * n as usize;
                let flat = frame.stack.split_off(at);
                let mut pairs = Vec::with_capacity(n as usize);
                let mut it = flat.into_iter();
                while let (Some(k), Some(v)) = (it.next(), it.next()) {
                    pairs.push((k, v));
                }
                frame.stack.push(Value::dict(pairs));
            }
            Instr::GetIndex => {
                let index = frame.stack.pop().expect("index");
                let obj = frame.stack.pop().expect("object");
                self.record_object_access(tid, &obj, false);
                let frame = task.frames.last_mut().expect("frame");
                match ops::get_index(&obj, &index) {
                    Ok(v) => frame.stack.push(v),
                    Err(e) => raise!(task, e),
                }
            }
            Instr::SetIndex => {
                let value = frame.stack.pop().expect("value");
                let index = frame.stack.pop().expect("index");
                let obj = frame.stack.pop().expect("object");
                self.record_object_access(tid, &obj, true);
                if let Value::Buffer(buf) = &obj {
                    let result = builtins::buffer_write(self, buf, &index, value);
                    if let Err(e) = result {
                        raise!(task, e);
                    }
                } else if let Err(e) = ops::set_index(&obj, &index, value) {
                    raise!(task, e);
                }
            }
            Instr::Dup => {
                let v = frame.stack.last().expect("dup").clone();
                frame.stack.push(v);
            }
            Instr::Dup2 => {
                let n = frame.stack.len();
                let a = frame.stack[n - 2].clone();
                let b = frame.stack[n - 1].clone();
                frame.stack.push(a);
                frame.stack.push(b);
            }
            Instr::Pop => {
                frame.stack.pop();
            }
            Instr::Call(argc) => {
                let at = frame.stack.len() - argc as usize;
                let args = frame.stack.split_off(at);
                let callee = frame.stack.pop().expect("callee");
                return self.dispatch_call(task, callee, args);
            }
            Instr::CallMethod { name, argc } => {
                // Borrow the method name from the code object instead of
                // cloning a String per call.
                let code = Rc::clone(&frame.code);
                let at = frame.stack.len() - argc as usize;
                let args = frame.stack.split_off(at);
                let recv = frame.stack.pop().expect("receiver");
                match builtins::call_method(self, tid, &recv, &code.names[name as usize], args) {
                    BuiltinFlow::Value(v) => task.frames.last_mut().expect("frame").stack.push(v),
                    BuiltinFlow::Raise(e) => raise!(task, e),
                    BuiltinFlow::Block(w) => {
                        task.status = TaskStatus::Blocked(w);
                        return StepFlow::Yield;
                    }
                }
            }
            Instr::Return => {
                let result = frame.stack.pop().unwrap_or(Value::None);
                task.frames.pop();
                if task.frames.is_empty() {
                    task.status = TaskStatus::Done(Ok(result));
                    return StepFlow::Finished;
                }
                task.frames
                    .last_mut()
                    .expect("caller frame")
                    .stack
                    .push(result);
            }
            Instr::MakeFunction { code, n_defaults } => {
                let at = frame.stack.len() - n_defaults as usize;
                let defaults = frame.stack.split_off(at);
                let code = match &frame.code.consts[code as usize] {
                    Const::Code(c) => c.clone(),
                    Const::Value(_) => unreachable!("MakeFunction requires a code constant"),
                };
                frame.stack.push(Value::Func(Rc::new(FuncObj {
                    name: code.name.clone(),
                    code,
                    defaults,
                })));
            }
            Instr::GetIter => {
                let v = frame.stack.pop().expect("iterable");
                match builtins::make_iter(&v) {
                    Ok(it) => frame.stack.push(it),
                    Err(e) => raise!(task, e),
                }
            }
            Instr::ForIter(end) => {
                let next = {
                    let Some(Value::Iter(it)) = frame.stack.last() else {
                        raise!(
                            task,
                            Value::exc("TypeError", "for-loop target is not an iterator")
                        );
                    };
                    next_item(&mut it.borrow_mut())
                };
                match next {
                    Some(v) => frame.stack.push(v),
                    None => {
                        frame.stack.pop();
                        frame.pc = end as usize;
                    }
                }
            }
            Instr::UnpackTuple(n) => {
                let v = frame.stack.pop().expect("unpack source");
                let items: Vec<Value> = match &v {
                    Value::Tuple(t) => t.as_ref().clone(),
                    Value::List(l) => l.borrow().clone(),
                    other => raise!(
                        task,
                        Value::exc("TypeError", format!("cannot unpack {}", other.type_name()))
                    ),
                };
                if items.len() != n as usize {
                    raise!(
                        task,
                        Value::exc(
                            "ValueError",
                            format!("expected {n} values to unpack, got {}", items.len())
                        )
                    );
                }
                for item in items.into_iter().rev() {
                    frame.stack.push(item);
                }
            }
            Instr::Raise => {
                let v = frame.stack.pop().expect("exception");
                let exc = match v {
                    Value::Exc(_) => v,
                    Value::ExcCtor(kind) => Value::exc(kind.as_ref(), ""),
                    other => Value::exc(
                        "TypeError",
                        format!("cannot raise {} value", other.type_name()),
                    ),
                };
                raise!(task, exc);
            }
            Instr::Reraise => match task.current_exc.clone() {
                Some(exc) => raise!(task, exc),
                None => raise!(
                    task,
                    Value::exc("RuntimeError", "no active exception to re-raise")
                ),
            },
            Instr::RaiseAssert => {
                let msg = frame.stack.pop().expect("assert message");
                raise!(task, Value::exc("AssertionError", msg.py_str()));
            }
            Instr::SetupExcept(handler) => {
                let depth = frame.stack.len();
                frame.blocks.push(Block {
                    kind: BlockKind::Except { handler },
                    stack_depth: depth,
                });
            }
            Instr::SetupFinally(handler) => {
                let depth = frame.stack.len();
                frame.blocks.push(Block {
                    kind: BlockKind::Finally { handler },
                    stack_depth: depth,
                });
            }
            Instr::PopBlock => {
                frame.blocks.pop();
            }
            Instr::MatchExc(i) => {
                let matched = match frame.stack.last() {
                    Some(Value::Exc(e)) => e.matches(&frame.code.names[i as usize]),
                    _ => false,
                };
                frame.stack.push(Value::Bool(matched));
            }
        }
        StepFlow::Normal
    }

    /// Raise inside a task we currently hold `&mut` to (cannot use the
    /// tid-indexed path because the task is checked out of the vec).
    fn raise_in_task_local(&mut self, task: &mut Task, exc: Value) {
        let exc_obj = match &exc {
            Value::Exc(e) => e.clone(),
            other => Rc::new(ExcObj::new(
                "TypeError",
                format!(
                    "exceptions must be exception values, not {}",
                    other.type_name()
                ),
            )),
        };
        let exc = Value::Exc(exc_obj.clone());
        loop {
            let Some(frame) = task.frames.last_mut() else {
                task.failure_line = self.current_line;
                task.status = TaskStatus::Done(Err(exc_obj));
                return;
            };
            if let Some(block) = frame.blocks.pop() {
                frame.stack.truncate(block.stack_depth);
                frame.stack.push(exc.clone());
                match block.kind {
                    BlockKind::Except { handler } | BlockKind::Finally { handler } => {
                        frame.pc = handler as usize;
                    }
                }
                task.current_exc = Some(exc);
                return;
            }
            task.frames.pop();
        }
    }

    fn dispatch_call(&mut self, task: &mut Task, callee: Value, args: Vec<Value>) -> StepFlow {
        match callee {
            Value::Func(f) => {
                if task.frames.len() >= self.config.max_frames {
                    self.raise_in_task_local(
                        task,
                        Value::exc("RecursionError", "maximum recursion depth exceeded"),
                    );
                    return StepFlow::Normal;
                }
                let mut frame = Frame::new(f.code.clone());
                match bind_args(&f, args, &mut frame) {
                    Ok(()) => {
                        task.frames.push(frame);
                        StepFlow::Normal
                    }
                    Err(e) => {
                        self.raise_in_task_local(task, e);
                        StepFlow::Normal
                    }
                }
            }
            Value::Builtin(name) => match builtins::call(self, task.id, name, args) {
                BuiltinFlow::Value(v) => {
                    task.frames.last_mut().expect("frame").stack.push(v);
                    StepFlow::Normal
                }
                BuiltinFlow::Raise(e) => {
                    self.raise_in_task_local(task, e);
                    StepFlow::Normal
                }
                BuiltinFlow::Block(w) => {
                    task.status = TaskStatus::Blocked(w);
                    StepFlow::Yield
                }
            },
            Value::ExcCtor(kind) => {
                let msg = args.first().map(|v| v.py_str()).unwrap_or_default();
                task.frames
                    .last_mut()
                    .expect("frame")
                    .stack
                    .push(Value::exc(kind.as_ref(), msg));
                StepFlow::Normal
            }
            other => {
                self.raise_in_task_local(
                    task,
                    Value::exc(
                        "TypeError",
                        format!("{} is not callable", other.type_name()),
                    ),
                );
                StepFlow::Normal
            }
        }
    }
}

fn container_addr(v: &Value) -> Option<usize> {
    match v {
        Value::List(l) => Some(Rc::as_ptr(l) as usize),
        Value::Dict(d) => Some(Rc::as_ptr(d) as usize),
        Value::Buffer(b) => Some(Rc::as_ptr(b) as usize),
        _ => None,
    }
}

fn bind_args(func: &FuncObj, args: Vec<Value>, frame: &mut Frame) -> Result<(), Value> {
    let n_params = func.code.params.len();
    let n_required = n_params - func.defaults.len();
    if args.len() > n_params || args.len() < n_required {
        return Err(Value::exc(
            "TypeError",
            format!(
                "{}() takes {}..{} arguments but {} were given",
                func.name,
                n_required,
                n_params,
                args.len()
            ),
        ));
    }
    let given = args.len();
    for (i, a) in args.into_iter().enumerate() {
        frame.locals[i] = Some(a);
    }
    for i in given..n_params {
        frame.locals[i] = Some(func.defaults[i - n_required].clone());
    }
    Ok(())
}

fn next_item(it: &mut IterObj) -> Option<Value> {
    match it {
        IterObj::Range { next, stop, step } => {
            let more = if *step > 0 {
                *next < *stop
            } else {
                *next > *stop
            };
            if more {
                let v = *next;
                *next += *step;
                Some(Value::Int(v))
            } else {
                None
            }
        }
        IterObj::Items { items, index } => {
            if *index < items.len() {
                let v = items[*index].clone();
                *index += 1;
                Some(v)
            } else {
                None
            }
        }
        IterObj::Chars { chars, index } => {
            if *index < chars.len() {
                let v = Value::str(chars[*index].to_string());
                *index += 1;
                Some(v)
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> RunOutcome {
        Machine::new(MachineConfig::default())
            .run_source(src)
            .unwrap()
    }

    #[test]
    fn arithmetic_and_print() {
        let out = run("print(1 + 2 * 3)\nprint(10 / 4)\nprint(7 // 2, 7 % 2)\n");
        assert_eq!(out.output, "7\n2.5\n3 1\n");
        assert!(out.clean());
    }

    #[test]
    fn functions_defaults_and_recursion() {
        let out = run(
            "def fib(n):\n    if n < 2:\n        return n\n    return fib(n - 1) + fib(n - 2)\nprint(fib(10))\n",
        );
        assert_eq!(out.output, "55\n");
    }

    #[test]
    fn default_arguments() {
        let out = run("def greet(name, greeting=\"hello\"):\n    return greeting + \" \" + name\nprint(greet(\"world\"))\nprint(greet(\"x\", \"hi\"))\n");
        assert_eq!(out.output, "hello world\nhi x\n");
    }

    #[test]
    fn while_loop_with_break_continue() {
        let out = run(
            "total = 0\ni = 0\nwhile True:\n    i += 1\n    if i > 10:\n        break\n    if i % 2 == 0:\n        continue\n    total += i\nprint(total)\n",
        );
        assert_eq!(out.output, "25\n");
    }

    #[test]
    fn for_loop_over_range_and_list() {
        let out = run(
            "s = 0\nfor i in range(5):\n    s += i\nfor x in [10, 20]:\n    s += x\nprint(s)\n",
        );
        assert_eq!(out.output, "40\n");
    }

    #[test]
    fn for_with_tuple_unpack() {
        let out =
            run("d = {\"a\": 1, \"b\": 2}\nt = 0\nfor k, v in d.items():\n    t += v\nprint(t)\n");
        assert_eq!(out.output, "3\n");
    }

    #[test]
    fn try_except_catches_matching_kind() {
        let out = run(
            "try:\n    raise ValueError(\"boom\")\nexcept KeyError:\n    print(\"key\")\nexcept ValueError as e:\n    print(\"caught\", str(e))\n",
        );
        assert_eq!(out.output, "caught ValueError: boom\n");
        assert!(out.clean());
    }

    #[test]
    fn uncaught_exception_reports_kind_and_line() {
        let out = run("x = 1\nraise RuntimeError(\"bad\")\n");
        match out.status {
            RunStatus::Uncaught(info) => {
                assert_eq!(info.kind, "RuntimeError");
                assert_eq!(info.message, "bad");
                assert_eq!(info.line, Some(2));
            }
            other => panic!("expected uncaught, got {other:?}"),
        }
    }

    #[test]
    fn finally_runs_on_both_paths() {
        let out = run(
            "def f(fail):\n    try:\n        if fail:\n            raise ValueError(\"x\")\n        return \"ok\"\n    finally:\n        print(\"cleanup\")\nprint(f(False))\ntry:\n    f(True)\nexcept ValueError:\n    print(\"caught\")\n",
        );
        assert_eq!(out.output, "cleanup\nok\ncleanup\ncaught\n");
    }

    #[test]
    fn bare_raise_reraises() {
        let out = run(
            "try:\n    try:\n        raise KeyError(\"k\")\n    except KeyError:\n        raise\nexcept KeyError:\n    print(\"outer\")\n",
        );
        assert_eq!(out.output, "outer\n");
    }

    #[test]
    fn division_by_zero_is_catchable() {
        let out = run("try:\n    x = 1 / 0\nexcept ZeroDivisionError:\n    print(\"div0\")\n");
        assert_eq!(out.output, "div0\n");
    }

    #[test]
    fn infinite_loop_hits_step_budget() {
        let mut m = Machine::new(MachineConfig {
            step_budget: 10_000,
            ..MachineConfig::default()
        });
        let out = m.run_source("while True:\n    pass\n").unwrap();
        assert_eq!(out.status, RunStatus::Hung(HangKind::StepBudget));
    }

    #[test]
    fn recursion_limit_raises_not_hangs() {
        let out = run("def f():\n    return f()\ntry:\n    f()\nexcept RecursionError:\n    print(\"deep\")\n");
        assert_eq!(out.output, "deep\n");
    }

    #[test]
    fn globals_persist_across_call() {
        let mut m = Machine::new(MachineConfig::default());
        m.run_source(
            "counter = 0\ndef bump():\n    global counter\n    counter += 1\n    return counter\n",
        )
        .unwrap();
        let out = m.call("bump", vec![]).unwrap();
        assert!(out.return_value.unwrap().py_eq(&Value::Int(1)));
        let out = m.call("bump", vec![]).unwrap();
        assert!(out.return_value.unwrap().py_eq(&Value::Int(2)));
    }

    #[test]
    fn call_missing_function_is_host_error() {
        let mut m = Machine::new(MachineConfig::default());
        m.run_source("x = 1\n").unwrap();
        assert!(m.call("nope", vec![]).is_err());
    }

    #[test]
    fn spawn_join_returns_value() {
        let out = run("def work(n):\n    return n * 2\nt = spawn(work, 21)\nprint(join(t))\n");
        assert_eq!(out.output, "42\n");
        assert!(out.clean());
    }

    #[test]
    fn join_propagates_exception() {
        let out = run(
            "def bad():\n    raise ValueError(\"worker\")\nt = spawn(bad)\ntry:\n    join(t)\nexcept ValueError:\n    print(\"propagated\")\n",
        );
        assert_eq!(out.output, "propagated\n");
    }

    #[test]
    fn unjoined_task_failure_is_reported() {
        let out = run(
            "def bad():\n    raise RuntimeError(\"lost\")\nspawn(bad)\nsleep(1)\nprint(\"done\")\n",
        );
        assert_eq!(out.task_failures.len(), 1);
        assert_eq!(out.task_failures[0].kind, "RuntimeError");
    }

    #[test]
    fn sleep_advances_virtual_time_not_wall_time() {
        let out = run("sleep(1000)\nprint(now())\n");
        assert!(out.vtime >= 1000.0);
        assert!(out.clean());
    }

    #[test]
    fn unsynchronized_counter_race_is_detected() {
        let src = "counter = 0\ndef work():\n    global counter\n    for i in range(50):\n        counter = counter + 1\nt1 = spawn(work)\nt2 = spawn(work)\njoin(t1)\njoin(t2)\nprint(counter)\n";
        let out = run(src);
        assert!(
            !out.races.is_empty(),
            "expected a race on `counter`, got none"
        );
        assert_eq!(out.races[0].location, "counter");
    }

    #[test]
    fn lock_protected_counter_has_no_race() {
        let src = "counter = 0\nm = lock()\ndef work():\n    global counter\n    for i in range(50):\n        m.acquire()\n        counter = counter + 1\n        m.release()\nt1 = spawn(work)\nt2 = spawn(work)\njoin(t1)\njoin(t2)\nprint(counter)\n";
        let out = run(src);
        assert!(out.races.is_empty(), "unexpected race: {:?}", out.races);
        assert_eq!(out.output, "100\n");
    }

    #[test]
    fn deadlock_is_detected() {
        let src = "a = lock()\nb = lock()\ndef one():\n    a.acquire()\n    sleep(1)\n    b.acquire()\ndef two():\n    b.acquire()\n    sleep(1)\n    a.acquire()\nt1 = spawn(one)\nt2 = spawn(two)\njoin(t1)\njoin(t2)\n";
        let out = run(src);
        assert_eq!(out.status, RunStatus::Hung(HangKind::Deadlock));
    }

    #[test]
    fn leaked_handle_is_reported() {
        let out = run("h = open_handle(\"conn\")\nprint(\"no close\")\n");
        assert_eq!(out.leaks.len(), 1);
        assert_eq!(out.leaks[0].name, "conn");
    }

    #[test]
    fn closed_handle_is_not_a_leak() {
        let out = run("h = open_handle(\"conn\")\nh.close()\n");
        assert!(out.leaks.is_empty());
    }

    #[test]
    fn buffer_overflow_is_recorded_and_raised() {
        let out = run(
            "b = make_buffer(2)\nb.append(1)\nb.append(2)\ntry:\n    b.append(3)\nexcept BufferOverflowError:\n    print(\"overflow\")\n",
        );
        assert_eq!(out.output, "overflow\n");
        assert_eq!(out.overflows.len(), 1, "caught overflow is still recorded");
    }

    #[test]
    fn scheduler_is_deterministic_per_seed() {
        let src = "log = []\ndef w(tag):\n    for i in range(5):\n        log.append(tag)\nt1 = spawn(w, \"a\")\nt2 = spawn(w, \"b\")\njoin(t1)\njoin(t2)\nprint(len(log))\n";
        let mut outs = Vec::new();
        for _ in 0..2 {
            let mut m = Machine::new(MachineConfig {
                seed: 7,
                quantum: 3,
                ..MachineConfig::default()
            });
            outs.push(m.run_source(src).unwrap().output);
        }
        assert_eq!(outs[0], outs[1]);
    }

    #[test]
    fn string_methods_work() {
        let out = run("s = \"a,b,c\"\nparts = s.split(\",\")\nprint(len(parts), parts[1])\nprint(\"-\".join(parts))\nprint(\"  x \".strip())\n");
        assert_eq!(out.output, "3 b\na-b-c\nx\n");
    }

    #[test]
    fn dict_and_list_methods() {
        let out = run(
            "d = {}\nd[\"k\"] = 1\nd[\"k\"] += 1\nprint(d.get(\"k\"), d.get(\"missing\", -1))\nl = [3, 1, 2]\nl.sort()\nprint(l)\nl.append(9)\nprint(l.pop(), len(l))\n",
        );
        assert_eq!(out.output, "2 -1\n[1, 2, 3]\n9 3\n");
    }

    #[test]
    fn assert_failure_raises_assertion_error() {
        let out = run(
            "try:\n    assert 1 == 2, \"nope\"\nexcept AssertionError as e:\n    print(str(e))\n",
        );
        assert_eq!(out.output, "AssertionError: nope\n");
    }

    #[test]
    fn unbound_local_raises() {
        let out = run("def f():\n    x = y\n    y = 1\ntry:\n    f()\nexcept UnboundLocalError:\n    print(\"unbound\")\n");
        assert_eq!(out.output, "unbound\n");
    }

    #[test]
    fn ternary_and_boolean_shortcircuit() {
        let out = run("def boom():\n    raise ValueError(\"no\")\nx = 1 if True else boom()\ny = False and boom()\nz = True or boom()\nprint(x, y, z)\n");
        assert_eq!(out.output, "1 False True\n");
    }
}
