//! Operator semantics for PyLite values.
//!
//! All fallible operations return `Result<Value, Value>` where the error
//! is a raised exception value, so the VM can route failures through its
//! normal unwinding path.

use crate::ast::{BinOp, CmpOp};
use crate::value::Value;
use std::rc::Rc;

/// Raises `kind(msg)` as an `Err` exception value.
pub fn raise(kind: &str, msg: impl Into<String>) -> Result<Value, Value> {
    Err(Value::exc(kind, msg))
}

/// Applies a binary operator.
pub fn binary(op: BinOp, a: &Value, b: &Value) -> Result<Value, Value> {
    use Value::*;
    match op {
        BinOp::Add => match (a, b) {
            (Int(x), Int(y)) => match x.checked_add(*y) {
                Some(v) => Ok(Int(v)),
                Option::None => raise("OverflowError", "integer addition overflow"),
            },
            (Str(x), Str(y)) => Ok(Value::str(format!("{x}{y}"))),
            (List(x), List(y)) => {
                let mut v = x.borrow().clone();
                v.extend(y.borrow().iter().cloned());
                Ok(Value::list(v))
            }
            (Tuple(x), Tuple(y)) => {
                let mut v = x.as_ref().clone();
                v.extend(y.iter().cloned());
                Ok(Tuple(Rc::new(v)))
            }
            _ => numeric(op, a, b),
        },
        BinOp::Mul => match (a, b) {
            (Int(x), Int(y)) => match x.checked_mul(*y) {
                Some(v) => Ok(Int(v)),
                Option::None => raise("OverflowError", "integer multiplication overflow"),
            },
            (Str(s), Int(n)) | (Int(n), Str(s)) => {
                if *n <= 0 {
                    Ok(Value::str(""))
                } else {
                    Ok(Value::str(s.repeat(*n as usize)))
                }
            }
            (List(l), Int(n)) | (Int(n), List(l)) => {
                let src = l.borrow();
                let mut v = Vec::new();
                for _ in 0..(*n).max(0) {
                    v.extend(src.iter().cloned());
                }
                Ok(Value::list(v))
            }
            _ => numeric(op, a, b),
        },
        _ => match (a, b) {
            (Int(x), Int(y)) => int_arith(op, *x, *y),
            _ => numeric(op, a, b),
        },
    }
}

fn int_arith(op: BinOp, x: i64, y: i64) -> Result<Value, Value> {
    use Value::*;
    match op {
        BinOp::Sub => match x.checked_sub(y) {
            Some(v) => Ok(Int(v)),
            Option::None => raise("OverflowError", "integer subtraction overflow"),
        },
        BinOp::Div => {
            if y == 0 {
                raise("ZeroDivisionError", "division by zero")
            } else {
                Ok(Float(x as f64 / y as f64))
            }
        }
        BinOp::FloorDiv => {
            if y == 0 {
                raise("ZeroDivisionError", "integer division by zero")
            } else {
                Ok(Int(x.div_euclid(y)))
            }
        }
        BinOp::Mod => {
            if y == 0 {
                raise("ZeroDivisionError", "integer modulo by zero")
            } else {
                Ok(Int(x.rem_euclid(y)))
            }
        }
        BinOp::Pow => {
            if y >= 0 {
                let mut acc: i64 = 1;
                for _ in 0..y {
                    acc = match acc.checked_mul(x) {
                        Some(v) => v,
                        Option::None => return raise("OverflowError", "integer power overflow"),
                    };
                }
                Ok(Int(acc))
            } else {
                Ok(Float((x as f64).powf(y as f64)))
            }
        }
        BinOp::Add | BinOp::Mul => unreachable!("handled by binary()"),
    }
}

fn numeric(op: BinOp, a: &Value, b: &Value) -> Result<Value, Value> {
    let (x, y) = match (as_f64(a), as_f64(b)) {
        (Some(x), Some(y)) => (x, y),
        _ => {
            return raise(
                "TypeError",
                format!(
                    "unsupported operand types for {}: {} and {}",
                    op.symbol(),
                    a.type_name(),
                    b.type_name()
                ),
            )
        }
    };
    let v = match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => {
            if y == 0.0 {
                return raise("ZeroDivisionError", "float division by zero");
            }
            x / y
        }
        BinOp::FloorDiv => {
            if y == 0.0 {
                return raise("ZeroDivisionError", "float floor division by zero");
            }
            (x / y).floor()
        }
        BinOp::Mod => {
            if y == 0.0 {
                return raise("ZeroDivisionError", "float modulo by zero");
            }
            x.rem_euclid(y)
        }
        BinOp::Pow => x.powf(y),
    };
    Ok(Value::Float(v))
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        Value::Bool(b) => Some(*b as i64 as f64),
        _ => None,
    }
}

/// Applies a comparison operator.
pub fn compare(op: CmpOp, a: &Value, b: &Value) -> Result<Value, Value> {
    match op {
        CmpOp::Eq => Ok(Value::Bool(a.py_eq(b))),
        CmpOp::Ne => Ok(Value::Bool(!a.py_eq(b))),
        CmpOp::In => contains(b, a).map(Value::Bool),
        CmpOp::NotIn => contains(b, a).map(|r| Value::Bool(!r)),
        _ => match a.py_cmp(b) {
            Some(ord) => {
                let r = match op {
                    CmpOp::Lt => ord.is_lt(),
                    CmpOp::Le => ord.is_le(),
                    CmpOp::Gt => ord.is_gt(),
                    CmpOp::Ge => ord.is_ge(),
                    _ => unreachable!("eq/ne/in handled above"),
                };
                Ok(Value::Bool(r))
            }
            None => raise(
                "TypeError",
                format!(
                    "`{}` not supported between {} and {}",
                    op.symbol(),
                    a.type_name(),
                    b.type_name()
                ),
            ),
        },
    }
}

/// Membership test `item in container`.
pub fn contains(container: &Value, item: &Value) -> Result<bool, Value> {
    match container {
        Value::List(l) => Ok(l.borrow().iter().any(|v| v.py_eq(item))),
        Value::Tuple(t) => Ok(t.iter().any(|v| v.py_eq(item))),
        Value::Dict(d) => Ok(d.borrow().iter().any(|(k, _)| k.py_eq(item))),
        Value::Str(s) => match item {
            Value::Str(sub) => Ok(s.contains(sub.as_ref())),
            _ => Err(Value::exc(
                "TypeError",
                "`in <string>` requires a string operand",
            )),
        },
        other => Err(Value::exc(
            "TypeError",
            format!("`in` not supported on {}", other.type_name()),
        )),
    }
}

/// Subscript read `obj[index]`.
pub fn get_index(obj: &Value, index: &Value) -> Result<Value, Value> {
    match obj {
        Value::List(l) => {
            let l = l.borrow();
            let i = norm_index(index, l.len(), "list")?;
            Ok(l[i].clone())
        }
        Value::Tuple(t) => {
            let i = norm_index(index, t.len(), "tuple")?;
            Ok(t[i].clone())
        }
        Value::Str(s) => {
            let chars: Vec<char> = s.chars().collect();
            let i = norm_index(index, chars.len(), "string")?;
            Ok(Value::str(chars[i].to_string()))
        }
        Value::Dict(d) => {
            let d = d.borrow();
            match d.iter().find(|(k, _)| k.py_eq(index)) {
                Some((_, v)) => Ok(v.clone()),
                None => raise("KeyError", index.repr()),
            }
        }
        Value::Buffer(b) => {
            let b = b.borrow();
            let i = match index {
                Value::Int(i) => *i,
                _ => return raise("TypeError", "buffer index must be an integer"),
            };
            if i < 0 || i as usize >= b.data.len() {
                return raise(
                    "IndexError",
                    format!("buffer read index {i} out of range (len {})", b.data.len()),
                );
            }
            Ok(b.data[i as usize].clone())
        }
        other => raise(
            "TypeError",
            format!("{} is not subscriptable", other.type_name()),
        ),
    }
}

/// Subscript write `obj[index] = value`. Buffer writes are handled by the
/// machine directly (they feed the overflow detector).
pub fn set_index(obj: &Value, index: &Value, value: Value) -> Result<(), Value> {
    match obj {
        Value::List(l) => {
            let mut l = l.borrow_mut();
            let len = l.len();
            let i = norm_index(index, len, "list")?;
            l[i] = value;
            Ok(())
        }
        Value::Dict(d) => {
            let mut d = d.borrow_mut();
            if let Some(slot) = d.iter_mut().find(|(k, _)| k.py_eq(index)) {
                slot.1 = value;
            } else {
                d.push((index.clone(), value));
            }
            Ok(())
        }
        other => Err(Value::exc(
            "TypeError",
            format!("{} does not support item assignment", other.type_name()),
        )),
    }
}

/// Normalizes a (possibly negative) index into `0..len`.
fn norm_index(index: &Value, len: usize, what: &str) -> Result<usize, Value> {
    let i = match index {
        Value::Int(i) => *i,
        Value::Bool(b) => *b as i64,
        _ => {
            return Err(Value::exc(
                "TypeError",
                format!("{what} index must be an integer, not {}", index.type_name()),
            ))
        }
    };
    let adjusted = if i < 0 { i + len as i64 } else { i };
    if adjusted < 0 || adjusted as usize >= len {
        return Err(Value::exc(
            "IndexError",
            format!("{what} index {i} out of range (len {len})"),
        ));
    }
    Ok(adjusted as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> Value {
        Value::Int(v)
    }

    #[test]
    fn integer_arithmetic() {
        assert!(binary(BinOp::Add, &int(2), &int(3)).unwrap().py_eq(&int(5)));
        assert!(binary(BinOp::FloorDiv, &int(7), &int(2))
            .unwrap()
            .py_eq(&int(3)));
        assert!(
            binary(BinOp::Mod, &int(-7), &int(3))
                .unwrap()
                .py_eq(&int(2)),
            "python-style euclidean modulo"
        );
        assert!(binary(BinOp::Pow, &int(2), &int(10))
            .unwrap()
            .py_eq(&int(1024)));
    }

    #[test]
    fn true_division_yields_float() {
        let v = binary(BinOp::Div, &int(7), &int(2)).unwrap();
        assert!(v.py_eq(&Value::Float(3.5)));
    }

    #[test]
    fn division_by_zero_raises() {
        let err = binary(BinOp::Div, &int(1), &int(0)).unwrap_err();
        match err {
            Value::Exc(e) => assert_eq!(e.kind, "ZeroDivisionError"),
            _ => panic!("expected exception"),
        }
    }

    #[test]
    fn overflow_raises_instead_of_wrapping() {
        let err = binary(BinOp::Add, &int(i64::MAX), &int(1)).unwrap_err();
        match err {
            Value::Exc(e) => assert_eq!(e.kind, "OverflowError"),
            _ => panic!("expected exception"),
        }
    }

    #[test]
    fn string_and_list_concat() {
        let v = binary(BinOp::Add, &Value::str("ab"), &Value::str("cd")).unwrap();
        assert!(v.py_eq(&Value::str("abcd")));
        let v = binary(
            BinOp::Add,
            &Value::list(vec![int(1)]),
            &Value::list(vec![int(2)]),
        )
        .unwrap();
        assert!(v.py_eq(&Value::list(vec![int(1), int(2)])));
    }

    #[test]
    fn string_repetition() {
        let v = binary(BinOp::Mul, &Value::str("ab"), &int(3)).unwrap();
        assert!(v.py_eq(&Value::str("ababab")));
        let v = binary(BinOp::Mul, &Value::str("ab"), &int(-1)).unwrap();
        assert!(v.py_eq(&Value::str("")));
    }

    #[test]
    fn type_error_on_mixed_operands() {
        assert!(binary(BinOp::Add, &int(1), &Value::str("x")).is_err());
        assert!(binary(BinOp::Sub, &Value::str("a"), &Value::str("b")).is_err());
    }

    #[test]
    fn comparisons() {
        assert!(compare(CmpOp::Lt, &int(1), &int(2)).unwrap().truthy());
        assert!(compare(CmpOp::Ge, &Value::Float(2.0), &int(2))
            .unwrap()
            .truthy());
        assert!(compare(CmpOp::Lt, &int(1), &Value::str("a")).is_err());
    }

    #[test]
    fn membership() {
        let l = Value::list(vec![int(1), int(2)]);
        assert!(compare(CmpOp::In, &int(2), &l).unwrap().truthy());
        assert!(compare(CmpOp::NotIn, &int(3), &l).unwrap().truthy());
        let s = Value::str("hello");
        assert!(compare(CmpOp::In, &Value::str("ell"), &s).unwrap().truthy());
    }

    #[test]
    fn list_indexing_with_negative_index() {
        let l = Value::list(vec![int(1), int(2), int(3)]);
        assert!(get_index(&l, &int(-1)).unwrap().py_eq(&int(3)));
        assert!(get_index(&l, &int(3)).is_err());
    }

    #[test]
    fn dict_get_and_set() {
        let d = Value::dict(vec![(Value::str("a"), int(1))]);
        assert!(get_index(&d, &Value::str("a")).unwrap().py_eq(&int(1)));
        set_index(&d, &Value::str("b"), int(2)).unwrap();
        assert!(get_index(&d, &Value::str("b")).unwrap().py_eq(&int(2)));
        let err = get_index(&d, &Value::str("zzz")).unwrap_err();
        match err {
            Value::Exc(e) => assert_eq!(e.kind, "KeyError"),
            _ => panic!("expected KeyError"),
        }
    }

    #[test]
    fn string_indexing() {
        let s = Value::str("abc");
        assert!(get_index(&s, &int(1)).unwrap().py_eq(&Value::str("b")));
        assert!(get_index(&s, &int(-1)).unwrap().py_eq(&Value::str("c")));
    }
}
