//! Pretty-printer: AST → canonical PyLite source.
//!
//! The printer emits 4-space indentation and minimal parentheses guided by
//! operator precedence, so that `parse(print(ast))` is structurally equal
//! to `ast` (property-tested in the crate test suite).

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole module as source text.
///
/// # Examples
///
/// ```
/// let m = nfi_pylite::parse("x  =  1+2\n")?;
/// assert_eq!(nfi_pylite::print_module(&m), "x = 1 + 2\n");
/// # Ok::<(), nfi_pylite::PyliteError>(())
/// ```
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    for stmt in &module.body {
        print_stmt(&mut out, stmt, 0);
    }
    out
}

/// Renders a statement list at the given indent depth (used to display
/// generated fault snippets).
pub fn print_block(stmts: &[Stmt], indent: usize) -> String {
    let mut out = String::new();
    if stmts.is_empty() {
        writeln!(out, "{}pass", pad(indent)).expect("string write cannot fail");
        return out;
    }
    for stmt in stmts {
        print_stmt(&mut out, stmt, indent);
    }
    out
}

/// Renders a single expression as source text.
pub fn print_expr(expr: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, expr, 0);
    out
}

fn pad(indent: usize) -> String {
    "    ".repeat(indent)
}

fn print_stmt(out: &mut String, stmt: &Stmt, indent: usize) {
    let p = pad(indent);
    match &stmt.kind {
        StmtKind::Expr(e) => {
            let _ = writeln!(out, "{p}{}", print_expr(e));
        }
        StmtKind::Assign { target, value } => {
            let _ = writeln!(out, "{p}{} = {}", print_target(target), print_expr(value));
        }
        StmtKind::AugAssign { target, op, value } => {
            let _ = writeln!(
                out,
                "{p}{} {}= {}",
                print_target(target),
                op.symbol(),
                print_expr(value)
            );
        }
        StmtKind::If { cond, then, orelse } => {
            let _ = writeln!(out, "{p}if {}:", print_expr(cond));
            write_suite(out, then, indent + 1);
            if !orelse.is_empty() {
                // Render `else: if ...` chains as `elif`.
                if orelse.len() == 1 {
                    if let StmtKind::If { .. } = &orelse[0].kind {
                        let mut nested = String::new();
                        print_stmt(&mut nested, &orelse[0], indent);
                        let nested = nested.replacen(&format!("{p}if "), &format!("{p}elif "), 1);
                        out.push_str(&nested);
                        return;
                    }
                }
                let _ = writeln!(out, "{p}else:");
                write_suite(out, orelse, indent + 1);
            }
        }
        StmtKind::While { cond, body } => {
            let _ = writeln!(out, "{p}while {}:", print_expr(cond));
            write_suite(out, body, indent + 1);
        }
        StmtKind::For { vars, iter, body } => {
            let _ = writeln!(out, "{p}for {} in {}:", vars.join(", "), print_expr(iter));
            write_suite(out, body, indent + 1);
        }
        StmtKind::Def {
            name,
            params,
            defaults,
            body,
        } => {
            let n_required = params.len() - defaults.len();
            let rendered: Vec<String> = params
                .iter()
                .enumerate()
                .map(|(i, param)| {
                    if i >= n_required {
                        format!("{param}={}", print_expr(&defaults[i - n_required]))
                    } else {
                        param.clone()
                    }
                })
                .collect();
            let _ = writeln!(out, "{p}def {name}({}):", rendered.join(", "));
            write_suite(out, body, indent + 1);
        }
        StmtKind::Return(value) => match value {
            Some(v) => {
                let _ = writeln!(out, "{p}return {}", print_expr(v));
            }
            None => {
                let _ = writeln!(out, "{p}return");
            }
        },
        StmtKind::Raise(value) => match value {
            Some(v) => {
                let _ = writeln!(out, "{p}raise {}", print_expr(v));
            }
            None => {
                let _ = writeln!(out, "{p}raise");
            }
        },
        StmtKind::Try {
            body,
            handlers,
            finally,
        } => {
            let _ = writeln!(out, "{p}try:");
            write_suite(out, body, indent + 1);
            for h in handlers {
                match (&h.kind, &h.bind) {
                    (Some(k), Some(b)) => {
                        let _ = writeln!(out, "{p}except {k} as {b}:");
                    }
                    (Some(k), None) => {
                        let _ = writeln!(out, "{p}except {k}:");
                    }
                    _ => {
                        let _ = writeln!(out, "{p}except:");
                    }
                }
                write_suite(out, &h.body, indent + 1);
            }
            if !finally.is_empty() {
                let _ = writeln!(out, "{p}finally:");
                write_suite(out, finally, indent + 1);
            }
        }
        StmtKind::Global(names) => {
            let _ = writeln!(out, "{p}global {}", names.join(", "));
        }
        StmtKind::Break => {
            let _ = writeln!(out, "{p}break");
        }
        StmtKind::Continue => {
            let _ = writeln!(out, "{p}continue");
        }
        StmtKind::Pass => {
            let _ = writeln!(out, "{p}pass");
        }
        StmtKind::Assert { cond, msg } => match msg {
            Some(m) => {
                let _ = writeln!(out, "{p}assert {}, {}", print_expr(cond), print_expr(m));
            }
            None => {
                let _ = writeln!(out, "{p}assert {}", print_expr(cond));
            }
        },
    }
}

fn write_suite(out: &mut String, stmts: &[Stmt], indent: usize) {
    if stmts.is_empty() {
        let _ = writeln!(out, "{}pass", pad(indent));
        return;
    }
    for s in stmts {
        print_stmt(out, s, indent);
    }
}

fn print_target(t: &Target) -> String {
    match t {
        Target::Name(n) => n.clone(),
        Target::Index { obj, index } => {
            format!("{}[{}]", print_expr(obj), print_expr(index))
        }
        Target::Tuple(names) => names.join(", "),
    }
}

/// Operator precedence levels; higher binds tighter.
fn prec(kind: &ExprKind) -> u8 {
    match kind {
        ExprKind::Ternary { .. } => 1,
        ExprKind::Bool { op: BoolOp::Or, .. } => 2,
        ExprKind::Bool {
            op: BoolOp::And, ..
        } => 3,
        ExprKind::Unary {
            op: UnaryOp::Not, ..
        } => 4,
        ExprKind::Cmp { .. } => 5,
        ExprKind::Bin { op, .. } => match op {
            BinOp::Add | BinOp::Sub => 6,
            BinOp::Mul | BinOp::Div | BinOp::FloorDiv | BinOp::Mod => 7,
            BinOp::Pow => 9,
        },
        ExprKind::Unary {
            op: UnaryOp::Neg, ..
        } => 8,
        // Negative numeric literals print with a leading minus, so they
        // bind exactly like a unary negation.
        ExprKind::Const(Lit::Int(v)) if *v < 0 => 8,
        ExprKind::Const(Lit::Float(v)) if *v < 0.0 => 8,
        _ => 10,
    }
}

fn write_expr(out: &mut String, e: &Expr, min_prec: u8) {
    let my_prec = prec(&e.kind);
    let needs_parens = my_prec < min_prec;
    if needs_parens {
        out.push('(');
    }
    match &e.kind {
        ExprKind::Const(lit) => write_lit(out, lit),
        ExprKind::Name(n) => out.push_str(n),
        ExprKind::Bin { op, left, right } => {
            // Left-associative: right child needs strictly higher precedence.
            // Pow is right-associative: mirror image.
            let (lp, rp) = if *op == BinOp::Pow {
                (my_prec + 1, my_prec)
            } else {
                (my_prec, my_prec + 1)
            };
            write_expr(out, left, lp);
            let _ = write!(out, " {} ", op.symbol());
            write_expr(out, right, rp);
        }
        ExprKind::Unary { op, operand } => match op {
            UnaryOp::Neg => {
                out.push('-');
                write_expr(out, operand, my_prec);
            }
            UnaryOp::Not => {
                out.push_str("not ");
                write_expr(out, operand, my_prec);
            }
        },
        ExprKind::Bool { op, left, right } => {
            let word = match op {
                BoolOp::And => "and",
                BoolOp::Or => "or",
            };
            write_expr(out, left, my_prec);
            let _ = write!(out, " {word} ");
            write_expr(out, right, my_prec + 1);
        }
        ExprKind::Cmp { op, left, right } => {
            write_expr(out, left, my_prec + 1);
            let _ = write!(out, " {} ", op.symbol());
            write_expr(out, right, my_prec + 1);
        }
        ExprKind::Call { func, args } => {
            write_expr(out, func, 10);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a, 0);
            }
            out.push(')');
        }
        ExprKind::MethodCall { obj, name, args } => {
            write_expr(out, obj, 10);
            let _ = write!(out, ".{name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a, 0);
            }
            out.push(')');
        }
        ExprKind::Index { obj, index } => {
            write_expr(out, obj, 10);
            out.push('[');
            write_expr(out, index, 0);
            out.push(']');
        }
        ExprKind::List(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, item, 0);
            }
            out.push(']');
        }
        ExprKind::Tuple(items) => {
            out.push('(');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, item, 0);
            }
            if items.len() == 1 {
                out.push(',');
            }
            out.push(')');
        }
        ExprKind::Dict(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, k, 0);
                out.push_str(": ");
                write_expr(out, v, 0);
            }
            out.push('}');
        }
        ExprKind::Ternary { cond, then, orelse } => {
            write_expr(out, then, my_prec + 1);
            out.push_str(" if ");
            write_expr(out, cond, my_prec + 1);
            out.push_str(" else ");
            write_expr(out, orelse, my_prec);
        }
    }
    if needs_parens {
        out.push(')');
    }
}

fn write_lit(out: &mut String, lit: &Lit) {
    match lit {
        Lit::None => out.push_str("None"),
        Lit::Bool(true) => out.push_str("True"),
        Lit::Bool(false) => out.push_str("False"),
        Lit::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Lit::Float(v) => {
            if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Lit::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    '\0' => out.push_str("\\0"),
                    other => out.push(other),
                }
            }
            out.push('"');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(src: &str) {
        let m1 = parse(src).unwrap();
        let printed = print_module(&m1);
        let m2 = parse(&printed)
            .unwrap_or_else(|e| panic!("reprint failed to parse: {e}\n---\n{printed}"));
        assert_eq!(m1, m2, "round-trip mismatch:\n{printed}");
    }

    #[test]
    fn roundtrip_basic_constructs() {
        roundtrip("x = 1\ny = x + 2 * 3\nprint(y)\n");
        roundtrip("def f(a, b=1):\n    if a > b:\n        return a\n    return b\n");
        roundtrip("for i in range(10):\n    if i % 2 == 0:\n        continue\n    total += i\n");
        roundtrip("try:\n    f()\nexcept ValueError as e:\n    print(e)\nfinally:\n    done()\n");
        roundtrip("while not done:\n    step()\n");
    }

    #[test]
    fn roundtrip_precedence_parens() {
        roundtrip("x = (1 + 2) * 3\n");
        roundtrip("y = -(a + b)\n");
        roundtrip("z = not (a and b)\n");
        roundtrip("w = (a or b) and c\n");
        roundtrip("v = 2 ** (3 ** 2)\n");
        roundtrip("u = (2 ** 3) ** 2\n");
        roundtrip("t = a - (b - c)\n");
    }

    #[test]
    fn roundtrip_containers() {
        roundtrip("d = {\"a\": [1, 2], \"b\": (3, 4)}\n");
        roundtrip("s = (1,)\n");
        roundtrip("e = ()\n");
        roundtrip("n = d[\"a\"][0]\n");
    }

    #[test]
    fn roundtrip_strings_with_escapes() {
        roundtrip("s = \"line1\\nline2\\t\\\"quoted\\\"\"\n");
    }

    #[test]
    fn elif_chain_is_preserved() {
        let src = "if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3\n";
        let m = parse(src).unwrap();
        let printed = print_module(&m);
        assert!(printed.contains("elif b:"), "got:\n{printed}");
        roundtrip(src);
    }

    #[test]
    fn empty_suite_prints_pass() {
        let m = parse("if x:\n    pass\n").unwrap();
        let printed = print_module(&m);
        assert!(printed.contains("pass"));
    }

    #[test]
    fn floats_keep_decimal_point() {
        let m = parse("x = 2.0\n").unwrap();
        assert_eq!(print_module(&m), "x = 2.0\n");
    }

    #[test]
    fn ternary_roundtrip() {
        roundtrip("x = 1 if a > 2 else 3\n");
        roundtrip("y = (1 if a else 2) if b else 3\n");
    }

    #[test]
    fn print_block_of_empty_is_pass() {
        assert_eq!(print_block(&[], 1), "    pass\n");
    }
}
