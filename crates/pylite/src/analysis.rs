//! Static analysis utilities over PyLite ASTs.
//!
//! These are shared by the fault-operator site scanner (`nfi-sfi`), the
//! NLP engine's code-context analysis (`nfi-nlp`), and the patching tool
//! (`nfi-inject`).

use crate::ast::*;
use std::collections::BTreeSet;

/// Summary of a function definition found in a module.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionInfo {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Number of statements in the body (all nesting levels).
    pub body_stmts: usize,
    /// Names of functions called from the body.
    pub calls: Vec<String>,
    /// Whether the body contains a `try` statement.
    pub has_try: bool,
    /// Whether the body contains a loop.
    pub has_loop: bool,
    /// Whether the body raises.
    pub has_raise: bool,
    /// `NodeId` of the `def` statement.
    pub id: NodeId,
    /// Source line of the `def`.
    pub line: u32,
}

/// A symbol table for a module: functions, global names, call sites.
#[derive(Debug, Clone, Default)]
pub struct ModuleIndex {
    /// Top-level function definitions, in source order.
    pub functions: Vec<FunctionInfo>,
    /// Global variable names assigned at module level.
    pub globals: Vec<String>,
    /// All distinct names referenced anywhere.
    pub referenced: BTreeSet<String>,
}

impl ModuleIndex {
    /// Builds the index for a module.
    pub fn build(module: &Module) -> Self {
        let mut index = ModuleIndex::default();
        for stmt in &module.body {
            match &stmt.kind {
                StmtKind::Def {
                    name, params, body, ..
                } => {
                    let mut calls = Vec::new();
                    let mut has_try = false;
                    let mut has_loop = false;
                    let mut has_raise = false;
                    let mut count = 0usize;
                    for s in body {
                        walk_count(s, &mut count, &mut has_try, &mut has_loop, &mut has_raise);
                    }
                    collect_calls_block(body, &mut calls);
                    calls.dedup();
                    index.functions.push(FunctionInfo {
                        name: name.clone(),
                        params: params.clone(),
                        body_stmts: count,
                        calls,
                        has_try,
                        has_loop,
                        has_raise,
                        id: stmt.id,
                        line: stmt.span.line,
                    });
                }
                StmtKind::Assign {
                    target: Target::Name(n),
                    ..
                } if !index.globals.contains(n) => {
                    index.globals.push(n.clone());
                }
                _ => {}
            }
        }
        module.walk_stmts(&mut |s| collect_names_stmt(s, &mut index.referenced));
        index
    }

    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&FunctionInfo> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Names of all functions.
    pub fn function_names(&self) -> Vec<&str> {
        self.functions.iter().map(|f| f.name.as_str()).collect()
    }

    /// Functions whose names start with `test_` (the harness convention).
    pub fn test_functions(&self) -> Vec<&str> {
        self.functions
            .iter()
            .filter(|f| f.name.starts_with("test_"))
            .map(|f| f.name.as_str())
            .collect()
    }
}

fn walk_count(
    stmt: &Stmt,
    count: &mut usize,
    has_try: &mut bool,
    has_loop: &mut bool,
    has_raise: &mut bool,
) {
    *count += 1;
    match &stmt.kind {
        StmtKind::Try { .. } => *has_try = true,
        StmtKind::While { .. } | StmtKind::For { .. } => *has_loop = true,
        StmtKind::Raise(_) => *has_raise = true,
        _ => {}
    }
    for block in stmt_blocks(stmt) {
        for s in block {
            walk_count(s, count, has_try, has_loop, has_raise);
        }
    }
}

fn collect_calls_block(body: &[Stmt], out: &mut Vec<String>) {
    for s in body {
        collect_calls_stmt(s, out);
    }
}

fn collect_calls_stmt(stmt: &Stmt, out: &mut Vec<String>) {
    visit_exprs_stmt(stmt, &mut |e| {
        if let ExprKind::Call { func, .. } = &e.kind {
            if let ExprKind::Name(n) = &func.kind {
                if !out.contains(n) {
                    out.push(n.clone());
                }
            }
        }
    });
    for block in stmt_blocks(stmt) {
        for s in block {
            collect_calls_stmt(s, out);
        }
    }
}

fn collect_names_stmt(stmt: &Stmt, out: &mut BTreeSet<String>) {
    visit_exprs_stmt(stmt, &mut |e| {
        if let ExprKind::Name(n) = &e.kind {
            out.insert(n.clone());
        }
    });
}

/// Invokes `f` on every expression directly contained in a statement
/// (without descending into child statement blocks).
pub fn visit_exprs_stmt(stmt: &Stmt, f: &mut dyn FnMut(&Expr)) {
    match &stmt.kind {
        StmtKind::Expr(e) => visit_expr(e, f),
        StmtKind::Assign { target, value } => {
            visit_target(target, f);
            visit_expr(value, f);
        }
        StmtKind::AugAssign { target, value, .. } => {
            visit_target(target, f);
            visit_expr(value, f);
        }
        StmtKind::If { cond, .. } | StmtKind::While { cond, .. } => visit_expr(cond, f),
        StmtKind::For { iter, .. } => visit_expr(iter, f),
        StmtKind::Def { defaults, .. } => {
            for d in defaults {
                visit_expr(d, f);
            }
        }
        StmtKind::Return(Some(e)) | StmtKind::Raise(Some(e)) => visit_expr(e, f),
        StmtKind::Assert { cond, msg } => {
            visit_expr(cond, f);
            if let Some(m) = msg {
                visit_expr(m, f);
            }
        }
        _ => {}
    }
}

fn visit_target(t: &Target, f: &mut dyn FnMut(&Expr)) {
    if let Target::Index { obj, index } = t {
        visit_expr(obj, f);
        visit_expr(index, f);
    }
}

/// Invokes `f` on an expression and all of its sub-expressions.
pub fn visit_expr(e: &Expr, f: &mut dyn FnMut(&Expr)) {
    f(e);
    match &e.kind {
        ExprKind::Const(_) | ExprKind::Name(_) => {}
        ExprKind::Bin { left, right, .. }
        | ExprKind::Bool { left, right, .. }
        | ExprKind::Cmp { left, right, .. } => {
            visit_expr(left, f);
            visit_expr(right, f);
        }
        ExprKind::Unary { operand, .. } => visit_expr(operand, f),
        ExprKind::Call { func, args } => {
            visit_expr(func, f);
            for a in args {
                visit_expr(a, f);
            }
        }
        ExprKind::MethodCall { obj, args, .. } => {
            visit_expr(obj, f);
            for a in args {
                visit_expr(a, f);
            }
        }
        ExprKind::Index { obj, index } => {
            visit_expr(obj, f);
            visit_expr(index, f);
        }
        ExprKind::List(items) | ExprKind::Tuple(items) => {
            for i in items {
                visit_expr(i, f);
            }
        }
        ExprKind::Dict(pairs) => {
            for (k, v) in pairs {
                visit_expr(k, f);
                visit_expr(v, f);
            }
        }
        ExprKind::Ternary { cond, then, orelse } => {
            visit_expr(cond, f);
            visit_expr(then, f);
            visit_expr(orelse, f);
        }
    }
}

/// Mutable variant of [`visit_exprs_stmt`]: invokes `f` on every
/// expression directly contained in a statement.
pub fn visit_exprs_stmt_mut(stmt: &mut Stmt, f: &mut dyn FnMut(&mut Expr)) {
    match &mut stmt.kind {
        StmtKind::Expr(e) => visit_expr_mut(e, f),
        StmtKind::Assign { target, value } => {
            visit_target_mut(target, f);
            visit_expr_mut(value, f);
        }
        StmtKind::AugAssign { target, value, .. } => {
            visit_target_mut(target, f);
            visit_expr_mut(value, f);
        }
        StmtKind::If { cond, .. } | StmtKind::While { cond, .. } => visit_expr_mut(cond, f),
        StmtKind::For { iter, .. } => visit_expr_mut(iter, f),
        StmtKind::Def { defaults, .. } => {
            for d in defaults {
                visit_expr_mut(d, f);
            }
        }
        StmtKind::Return(Some(e)) | StmtKind::Raise(Some(e)) => visit_expr_mut(e, f),
        StmtKind::Assert { cond, msg } => {
            visit_expr_mut(cond, f);
            if let Some(m) = msg {
                visit_expr_mut(m, f);
            }
        }
        _ => {}
    }
}

fn visit_target_mut(t: &mut Target, f: &mut dyn FnMut(&mut Expr)) {
    if let Target::Index { obj, index } = t {
        visit_expr_mut(obj, f);
        visit_expr_mut(index, f);
    }
}

/// Mutable variant of [`visit_expr`].
pub fn visit_expr_mut(e: &mut Expr, f: &mut dyn FnMut(&mut Expr)) {
    f(e);
    match &mut e.kind {
        ExprKind::Const(_) | ExprKind::Name(_) => {}
        ExprKind::Bin { left, right, .. }
        | ExprKind::Bool { left, right, .. }
        | ExprKind::Cmp { left, right, .. } => {
            visit_expr_mut(left, f);
            visit_expr_mut(right, f);
        }
        ExprKind::Unary { operand, .. } => visit_expr_mut(operand, f),
        ExprKind::Call { func, args } => {
            visit_expr_mut(func, f);
            for a in args {
                visit_expr_mut(a, f);
            }
        }
        ExprKind::MethodCall { obj, args, .. } => {
            visit_expr_mut(obj, f);
            for a in args {
                visit_expr_mut(a, f);
            }
        }
        ExprKind::Index { obj, index } => {
            visit_expr_mut(obj, f);
            visit_expr_mut(index, f);
        }
        ExprKind::List(items) | ExprKind::Tuple(items) => {
            for i in items {
                visit_expr_mut(i, f);
            }
        }
        ExprKind::Dict(pairs) => {
            for (k, v) in pairs {
                visit_expr_mut(k, f);
                visit_expr_mut(v, f);
            }
        }
        ExprKind::Ternary { cond, then, orelse } => {
            visit_expr_mut(cond, f);
            visit_expr_mut(then, f);
            visit_expr_mut(orelse, f);
        }
    }
}

/// Invokes `f` on every statement block in the module (the module body and
/// every nested suite), innermost blocks last. `f` may insert or remove
/// statements; callers should renumber afterwards.
pub fn rewrite_blocks(module: &mut Module, f: &mut dyn FnMut(&mut Vec<Stmt>)) {
    fn rec(block: &mut Vec<Stmt>, f: &mut dyn FnMut(&mut Vec<Stmt>)) {
        f(block);
        for stmt in block {
            match &mut stmt.kind {
                StmtKind::If { then, orelse, .. } => {
                    rec(then, f);
                    rec(orelse, f);
                }
                StmtKind::While { body, .. }
                | StmtKind::For { body, .. }
                | StmtKind::Def { body, .. } => rec(body, f),
                StmtKind::Try {
                    body,
                    handlers,
                    finally,
                } => {
                    rec(body, f);
                    for h in handlers {
                        rec(&mut h.body, f);
                    }
                    rec(finally, f);
                }
                _ => {}
            }
        }
    }
    rec(&mut module.body, f);
}

/// The name of the function whose body (transitively) contains the
/// statement with the given id, or `None` for module-level statements.
pub fn enclosing_function(module: &Module, id: NodeId) -> Option<String> {
    fn contains(body: &[Stmt], id: NodeId) -> bool {
        let mut found = false;
        for s in body {
            walk(s, id, &mut found);
        }
        found
    }
    fn walk(stmt: &Stmt, id: NodeId, found: &mut bool) {
        if stmt.id == id {
            *found = true;
            return;
        }
        for block in stmt_blocks(stmt) {
            for s in block {
                walk(s, id, found);
                if *found {
                    return;
                }
            }
        }
    }
    let mut result = None;
    module.walk_stmts(&mut |s| {
        if result.is_some() {
            return;
        }
        if let StmtKind::Def { name, body, .. } = &s.kind {
            if contains(body, id) {
                result = Some(name.clone());
            }
        }
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SRC: &str = "\
inventory = {}
def add_item(name, qty):
    if qty < 0:
        raise ValueError(\"negative\")
    inventory[name] = qty

def total():
    t = 0
    for k, v in inventory.items():
        t += v
    return t

def test_add():
    add_item(\"a\", 3)
    assert total() == 3
";

    #[test]
    fn index_finds_functions_and_globals() {
        let m = parse(SRC).unwrap();
        let idx = ModuleIndex::build(&m);
        assert_eq!(idx.function_names(), vec!["add_item", "total", "test_add"]);
        assert!(idx.globals.contains(&"inventory".to_string()));
    }

    #[test]
    fn function_info_captures_structure() {
        let m = parse(SRC).unwrap();
        let idx = ModuleIndex::build(&m);
        let add = idx.function("add_item").unwrap();
        assert_eq!(add.params, vec!["name", "qty"]);
        assert!(add.has_raise);
        assert!(!add.has_loop);
        let total = idx.function("total").unwrap();
        assert!(total.has_loop);
        assert!(!total.has_raise);
    }

    #[test]
    fn call_graph_edges() {
        let m = parse(SRC).unwrap();
        let idx = ModuleIndex::build(&m);
        let t = idx.function("test_add").unwrap();
        assert!(t.calls.contains(&"add_item".to_string()));
        assert!(t.calls.contains(&"total".to_string()));
    }

    #[test]
    fn test_functions_by_convention() {
        let m = parse(SRC).unwrap();
        let idx = ModuleIndex::build(&m);
        assert_eq!(idx.test_functions(), vec!["test_add"]);
    }

    #[test]
    fn referenced_names_include_globals_and_params() {
        let m = parse(SRC).unwrap();
        let idx = ModuleIndex::build(&m);
        assert!(idx.referenced.contains("inventory"));
        assert!(idx.referenced.contains("qty"));
    }
}
