//! Built-in functions and methods of the PyLite runtime.
//!
//! Builtins are dispatched by name. Functions that interact with the
//! scheduler (`sleep`, `join`, `lock.acquire`) return
//! [`BuiltinFlow::Block`] and are resumed by the machine's wake-up logic.

use crate::machine::{BuiltinFlow, Machine, Wait};
use crate::value::{BufferObj, ExcObj, HandleObj, IterObj, TaskId, Value};
use rand::Rng;
use std::cell::RefCell;
use std::rc::Rc;

/// Exception kinds exposed as global constructors.
pub const EXCEPTION_KINDS: &[&str] = &[
    "Exception",
    "ValueError",
    "TypeError",
    "KeyError",
    "IndexError",
    "RuntimeError",
    "TimeoutError",
    "ZeroDivisionError",
    "AssertionError",
    "ConnectionError",
    "IOError",
    "OverflowError",
    "BufferOverflowError",
    "NameError",
    "UnboundLocalError",
    "RecursionError",
    "StopIteration",
    "NotImplementedError",
    "PermissionError",
];

/// Names of all builtin functions (used by code analysis to distinguish
/// calls into user code from calls into the runtime).
pub const BUILTIN_FUNCTIONS: &[&str] = &[
    "print",
    "len",
    "range",
    "str",
    "int",
    "float",
    "bool",
    "abs",
    "min",
    "max",
    "sum",
    "sorted",
    "enumerate",
    "type",
    "repr",
    "sleep",
    "now",
    "spawn",
    "join",
    "lock",
    "open_handle",
    "make_buffer",
    "rand_int",
    "rand_float",
];

/// Resolves a global name against the builtin namespace.
pub(crate) fn lookup(name: &str) -> Option<Value> {
    if let Some(kind) = EXCEPTION_KINDS.iter().find(|k| **k == name) {
        return Some(Value::ExcCtor(Rc::from(*kind)));
    }
    BUILTIN_FUNCTIONS
        .iter()
        .find(|f| **f == name)
        .map(|f| Value::Builtin(f))
}

fn raise(kind: &str, msg: impl Into<String>) -> BuiltinFlow {
    BuiltinFlow::Raise(Value::exc(kind, msg))
}

fn arity_error(name: &str, expect: &str, got: usize) -> BuiltinFlow {
    raise(
        "TypeError",
        format!("{name}() expects {expect} arguments, got {got}"),
    )
}

/// Invokes a builtin function.
pub(crate) fn call(m: &mut Machine, tid: TaskId, name: &str, args: Vec<Value>) -> BuiltinFlow {
    match name {
        "print" => {
            let line: Vec<String> = args.iter().map(|a| a.py_str()).collect();
            m.print_line(&line.join(" "));
            BuiltinFlow::Value(Value::None)
        }
        "len" => match args.first().and_then(|v| v.py_len()) {
            Some(n) if args.len() == 1 => BuiltinFlow::Value(Value::Int(n as i64)),
            _ if args.len() != 1 => arity_error("len", "1", args.len()),
            _ => raise(
                "TypeError",
                format!("object of type {} has no len()", args[0].type_name()),
            ),
        },
        "range" => {
            let ints: Option<Vec<i64>> = args
                .iter()
                .map(|a| match a {
                    Value::Int(i) => Some(*i),
                    _ => None,
                })
                .collect();
            let Some(ints) = ints else {
                return raise("TypeError", "range() arguments must be integers");
            };
            let (start, stop, step) = match ints.as_slice() {
                [stop] => (0, *stop, 1),
                [start, stop] => (*start, *stop, 1),
                [start, stop, step] => (*start, *stop, *step),
                _ => return arity_error("range", "1..3", args.len()),
            };
            if step == 0 {
                return raise("ValueError", "range() step must not be zero");
            }
            BuiltinFlow::Value(Value::Iter(Rc::new(RefCell::new(IterObj::Range {
                next: start,
                stop,
                step,
            }))))
        }
        "str" => match args.len() {
            0 => BuiltinFlow::Value(Value::str("")),
            1 => BuiltinFlow::Value(Value::str(args[0].py_str())),
            n => arity_error("str", "0..1", n),
        },
        "repr" => match args.len() {
            1 => BuiltinFlow::Value(Value::str(args[0].repr())),
            n => arity_error("repr", "1", n),
        },
        "int" => match args.as_slice() {
            [Value::Int(i)] => BuiltinFlow::Value(Value::Int(*i)),
            [Value::Float(f)] => BuiltinFlow::Value(Value::Int(*f as i64)),
            [Value::Bool(b)] => BuiltinFlow::Value(Value::Int(*b as i64)),
            [Value::Str(s)] => match s.trim().parse::<i64>() {
                Ok(i) => BuiltinFlow::Value(Value::Int(i)),
                Err(_) => raise(
                    "ValueError",
                    format!("invalid literal for int(): {:?}", s.as_ref()),
                ),
            },
            [other] => raise(
                "TypeError",
                format!(
                    "int() argument must be numeric or string, not {}",
                    other.type_name()
                ),
            ),
            _ => arity_error("int", "1", args.len()),
        },
        "float" => match args.as_slice() {
            [Value::Int(i)] => BuiltinFlow::Value(Value::Float(*i as f64)),
            [Value::Float(f)] => BuiltinFlow::Value(Value::Float(*f)),
            [Value::Bool(b)] => BuiltinFlow::Value(Value::Float(*b as i64 as f64)),
            [Value::Str(s)] => match s.trim().parse::<f64>() {
                Ok(f) => BuiltinFlow::Value(Value::Float(f)),
                Err(_) => raise(
                    "ValueError",
                    format!("could not convert string to float: {:?}", s.as_ref()),
                ),
            },
            [other] => raise(
                "TypeError",
                format!(
                    "float() argument must be numeric or string, not {}",
                    other.type_name()
                ),
            ),
            _ => arity_error("float", "1", args.len()),
        },
        "bool" => match args.as_slice() {
            [v] => BuiltinFlow::Value(Value::Bool(v.truthy())),
            _ => arity_error("bool", "1", args.len()),
        },
        "abs" => match args.as_slice() {
            [Value::Int(i)] => BuiltinFlow::Value(Value::Int(i.abs())),
            [Value::Float(f)] => BuiltinFlow::Value(Value::Float(f.abs())),
            [other] => raise(
                "TypeError",
                format!("bad operand type for abs(): {}", other.type_name()),
            ),
            _ => arity_error("abs", "1", args.len()),
        },
        "min" | "max" => {
            let want_min = name == "min";
            let items: Vec<Value> = match args.as_slice() {
                [Value::List(l)] => l.borrow().clone(),
                [Value::Tuple(t)] => t.as_ref().clone(),
                [] => return arity_error(name, "1+", 0),
                _ => args,
            };
            if items.is_empty() {
                return raise("ValueError", format!("{name}() of empty sequence"));
            }
            let mut best = items[0].clone();
            for v in &items[1..] {
                match v.py_cmp(&best) {
                    Some(ord) => {
                        if (want_min && ord.is_lt()) || (!want_min && ord.is_gt()) {
                            best = v.clone();
                        }
                    }
                    None => return raise("TypeError", format!("{name}() got incomparable values")),
                }
            }
            BuiltinFlow::Value(best)
        }
        "sum" => {
            let items: Vec<Value> = match args.as_slice() {
                [Value::List(l)] => l.borrow().clone(),
                [Value::Tuple(t)] => t.as_ref().clone(),
                _ => return raise("TypeError", "sum() expects a list or tuple"),
            };
            let mut acc = Value::Int(0);
            for v in items {
                match crate::ops::binary(crate::ast::BinOp::Add, &acc, &v) {
                    Ok(r) => acc = r,
                    Err(e) => return BuiltinFlow::Raise(e),
                }
            }
            BuiltinFlow::Value(acc)
        }
        "sorted" => {
            let mut items: Vec<Value> = match args.as_slice() {
                [Value::List(l)] => l.borrow().clone(),
                [Value::Tuple(t)] => t.as_ref().clone(),
                _ => return raise("TypeError", "sorted() expects a list or tuple"),
            };
            let mut fail = false;
            items.sort_by(|a, b| {
                a.py_cmp(b).unwrap_or_else(|| {
                    fail = true;
                    std::cmp::Ordering::Equal
                })
            });
            if fail {
                return raise("TypeError", "sorted() got incomparable values");
            }
            BuiltinFlow::Value(Value::list(items))
        }
        "enumerate" => {
            let items: Vec<Value> = match args.as_slice() {
                [Value::List(l)] => l.borrow().clone(),
                [Value::Tuple(t)] => t.as_ref().clone(),
                _ => return raise("TypeError", "enumerate() expects a list or tuple"),
            };
            let pairs: Vec<Value> = items
                .into_iter()
                .enumerate()
                .map(|(i, v)| Value::Tuple(Rc::new(vec![Value::Int(i as i64), v])))
                .collect();
            BuiltinFlow::Value(Value::list(pairs))
        }
        "type" => match args.as_slice() {
            [v] => BuiltinFlow::Value(Value::str(v.type_name())),
            _ => arity_error("type", "1", args.len()),
        },
        "sleep" => {
            let secs = match args.as_slice() {
                [Value::Int(i)] => *i as f64,
                [Value::Float(f)] => *f,
                _ => return raise("TypeError", "sleep() expects a number of seconds"),
            };
            if secs < 0.0 {
                return raise("ValueError", "sleep() duration must be non-negative");
            }
            BuiltinFlow::Block(Wait::Sleep {
                wake_at: m.clock + secs,
            })
        }
        "now" => BuiltinFlow::Value(Value::Float(m.clock)),
        "spawn" => {
            let mut args = args;
            if args.is_empty() {
                return arity_error("spawn", "1+", 0);
            }
            let func = args.remove(0);
            match func {
                Value::Func(f) => match m.spawn_task(f, args) {
                    Ok(id) => BuiltinFlow::Value(Value::Task(id)),
                    Err(e) => BuiltinFlow::Raise(e),
                },
                other => raise(
                    "TypeError",
                    format!(
                        "spawn() first argument must be a function, not {}",
                        other.type_name()
                    ),
                ),
            }
        }
        "join" => match args.as_slice() {
            [Value::Task(t)] => {
                if *t == tid {
                    return raise("RuntimeError", "a task cannot join itself");
                }
                if !m.task_exists(*t) {
                    return raise("ValueError", "join() of unknown task");
                }
                BuiltinFlow::Block(Wait::Join(*t))
            }
            _ => raise("TypeError", "join() expects a task handle"),
        },
        "lock" => BuiltinFlow::Value(Value::Lock(m.new_lock())),
        "open_handle" => {
            let name = match args.as_slice() {
                [Value::Str(s)] => s.to_string(),
                _ => return raise("TypeError", "open_handle() expects a name string"),
            };
            let id = m.next_handle;
            m.next_handle += 1;
            let h = Rc::new(HandleObj {
                id,
                name,
                closed: std::cell::Cell::new(false),
                written: RefCell::new(Vec::new()),
            });
            m.handles.push(h.clone());
            BuiltinFlow::Value(Value::Handle(h))
        }
        "make_buffer" => {
            let cap = match args.as_slice() {
                [Value::Int(i)] if *i >= 0 => *i as usize,
                _ => {
                    return raise(
                        "ValueError",
                        "make_buffer() expects a non-negative capacity",
                    )
                }
            };
            BuiltinFlow::Value(Value::Buffer(Rc::new(RefCell::new(BufferObj {
                data: Vec::new(),
                capacity: cap,
            }))))
        }
        "rand_int" => match args.as_slice() {
            [Value::Int(lo), Value::Int(hi)] if lo < hi => {
                let v = m.rng.gen_range(*lo..*hi);
                BuiltinFlow::Value(Value::Int(v))
            }
            _ => raise("ValueError", "rand_int(lo, hi) requires lo < hi"),
        },
        "rand_float" => {
            let v: f64 = m.rng.gen();
            BuiltinFlow::Value(Value::Float(v))
        }
        other => raise("NameError", format!("unknown builtin `{other}`")),
    }
}

/// Writes `value` at `index` in a bounded buffer, recording an overflow
/// report and raising `BufferOverflowError` when the write is past
/// capacity.
pub(crate) fn buffer_write(
    m: &mut Machine,
    buf: &Rc<RefCell<BufferObj>>,
    index: &Value,
    value: Value,
) -> Result<(), Value> {
    let i = match index {
        Value::Int(i) => *i,
        _ => return Err(Value::exc("TypeError", "buffer index must be an integer")),
    };
    let mut b = buf.borrow_mut();
    if i < 0 || i as usize >= b.capacity {
        let cap = b.capacity;
        drop(b);
        m.note_overflow(i, cap);
        return Err(Value::exc(
            "BufferOverflowError",
            format!("write at index {i} beyond buffer capacity {cap}"),
        ));
    }
    let i = i as usize;
    if i >= b.data.len() {
        b.data.resize(i + 1, Value::None);
    }
    b.data[i] = value;
    Ok(())
}

/// Produces the iterator protocol value for `for` loops.
pub(crate) fn make_iter(v: &Value) -> Result<Value, Value> {
    let it = match v {
        Value::Iter(it) => return Ok(Value::Iter(it.clone())),
        Value::List(l) => IterObj::Items {
            items: l.borrow().clone(),
            index: 0,
        },
        Value::Tuple(t) => IterObj::Items {
            items: t.as_ref().clone(),
            index: 0,
        },
        Value::Dict(d) => IterObj::Items {
            items: d.borrow().iter().map(|(k, _)| k.clone()).collect(),
            index: 0,
        },
        Value::Str(s) => IterObj::Chars {
            chars: s.chars().collect(),
            index: 0,
        },
        other => {
            return Err(Value::exc(
                "TypeError",
                format!("{} is not iterable", other.type_name()),
            ))
        }
    };
    Ok(Value::Iter(Rc::new(RefCell::new(it))))
}

/// Invokes a method on a receiver value.
pub(crate) fn call_method(
    m: &mut Machine,
    tid: TaskId,
    recv: &Value,
    method: &str,
    args: Vec<Value>,
) -> BuiltinFlow {
    match recv {
        Value::List(l) => list_method(m, tid, recv, l, method, args),
        Value::Dict(d) => dict_method(m, tid, recv, d, method, args),
        Value::Str(s) => str_method(s, method, args),
        Value::Buffer(b) => buffer_method(m, tid, recv, b, method, args),
        Value::Handle(h) => handle_method(h, method, args),
        Value::Lock(id) => lock_method(m, tid, *id, method, args),
        Value::Exc(e) => exc_method(e, method, args),
        other => raise(
            "TypeError",
            format!("{} has no method `{method}`", other.type_name()),
        ),
    }
}

fn list_method(
    m: &mut Machine,
    tid: TaskId,
    recv: &Value,
    l: &Rc<RefCell<Vec<Value>>>,
    method: &str,
    args: Vec<Value>,
) -> BuiltinFlow {
    let write = matches!(
        method,
        "append" | "pop" | "insert" | "remove" | "extend" | "sort" | "reverse" | "clear"
    );
    m.record_object_access(tid, recv, write);
    match (method, args.as_slice()) {
        ("append", [v]) => {
            l.borrow_mut().push(v.clone());
            BuiltinFlow::Value(Value::None)
        }
        ("pop", []) => match l.borrow_mut().pop() {
            Some(v) => BuiltinFlow::Value(v),
            None => raise("IndexError", "pop from empty list"),
        },
        ("pop", [Value::Int(i)]) => {
            let mut list = l.borrow_mut();
            let len = list.len() as i64;
            let idx = if *i < 0 { i + len } else { *i };
            if idx < 0 || idx >= len {
                drop(list);
                raise("IndexError", format!("pop index {i} out of range"))
            } else {
                BuiltinFlow::Value(list.remove(idx as usize))
            }
        }
        ("insert", [Value::Int(i), v]) => {
            let mut list = l.borrow_mut();
            let idx = (*i).clamp(0, list.len() as i64) as usize;
            list.insert(idx, v.clone());
            BuiltinFlow::Value(Value::None)
        }
        ("remove", [v]) => {
            let mut list = l.borrow_mut();
            match list.iter().position(|x| x.py_eq(v)) {
                Some(i) => {
                    list.remove(i);
                    BuiltinFlow::Value(Value::None)
                }
                None => {
                    drop(list);
                    raise("ValueError", "list.remove(x): x not in list")
                }
            }
        }
        ("extend", [Value::List(other)]) => {
            let extra = other.borrow().clone();
            l.borrow_mut().extend(extra);
            BuiltinFlow::Value(Value::None)
        }
        ("index", [v]) => match l.borrow().iter().position(|x| x.py_eq(v)) {
            Some(i) => BuiltinFlow::Value(Value::Int(i as i64)),
            None => raise("ValueError", "value not in list"),
        },
        ("count", [v]) => {
            let n = l.borrow().iter().filter(|x| x.py_eq(v)).count();
            BuiltinFlow::Value(Value::Int(n as i64))
        }
        ("sort", []) => {
            let mut fail = false;
            l.borrow_mut().sort_by(|a, b| {
                a.py_cmp(b).unwrap_or_else(|| {
                    fail = true;
                    std::cmp::Ordering::Equal
                })
            });
            if fail {
                raise("TypeError", "sort() got incomparable values")
            } else {
                BuiltinFlow::Value(Value::None)
            }
        }
        ("reverse", []) => {
            l.borrow_mut().reverse();
            BuiltinFlow::Value(Value::None)
        }
        ("clear", []) => {
            l.borrow_mut().clear();
            BuiltinFlow::Value(Value::None)
        }
        ("copy", []) => BuiltinFlow::Value(Value::list(l.borrow().clone())),
        _ => raise(
            "TypeError",
            format!(
                "list has no method `{method}` with {} arguments",
                args.len()
            ),
        ),
    }
}

fn dict_method(
    m: &mut Machine,
    tid: TaskId,
    recv: &Value,
    d: &Rc<RefCell<Vec<(Value, Value)>>>,
    method: &str,
    args: Vec<Value>,
) -> BuiltinFlow {
    let write = matches!(method, "pop" | "clear" | "update" | "setdefault");
    m.record_object_access(tid, recv, write);
    match (method, args.as_slice()) {
        ("get", [k]) => {
            let d = d.borrow();
            let v = d
                .iter()
                .find(|(ek, _)| ek.py_eq(k))
                .map(|(_, v)| v.clone())
                .unwrap_or(Value::None);
            BuiltinFlow::Value(v)
        }
        ("get", [k, default]) => {
            let d = d.borrow();
            let v = d
                .iter()
                .find(|(ek, _)| ek.py_eq(k))
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| default.clone());
            BuiltinFlow::Value(v)
        }
        ("keys", []) => BuiltinFlow::Value(Value::list(
            d.borrow().iter().map(|(k, _)| k.clone()).collect(),
        )),
        ("values", []) => BuiltinFlow::Value(Value::list(
            d.borrow().iter().map(|(_, v)| v.clone()).collect(),
        )),
        ("items", []) => BuiltinFlow::Value(Value::list(
            d.borrow()
                .iter()
                .map(|(k, v)| Value::Tuple(Rc::new(vec![k.clone(), v.clone()])))
                .collect(),
        )),
        ("pop", [k]) => {
            let mut dict = d.borrow_mut();
            match dict.iter().position(|(ek, _)| ek.py_eq(k)) {
                Some(i) => BuiltinFlow::Value(dict.remove(i).1),
                None => {
                    drop(dict);
                    raise("KeyError", k.repr())
                }
            }
        }
        ("pop", [k, default]) => {
            let mut dict = d.borrow_mut();
            match dict.iter().position(|(ek, _)| ek.py_eq(k)) {
                Some(i) => BuiltinFlow::Value(dict.remove(i).1),
                None => BuiltinFlow::Value(default.clone()),
            }
        }
        ("clear", []) => {
            d.borrow_mut().clear();
            BuiltinFlow::Value(Value::None)
        }
        ("update", [Value::Dict(other)]) => {
            let pairs = other.borrow().clone();
            let mut dict = d.borrow_mut();
            for (k, v) in pairs {
                if let Some(slot) = dict.iter_mut().find(|(ek, _)| ek.py_eq(&k)) {
                    slot.1 = v;
                } else {
                    dict.push((k, v));
                }
            }
            BuiltinFlow::Value(Value::None)
        }
        ("setdefault", [k, default]) => {
            let mut dict = d.borrow_mut();
            if let Some((_, v)) = dict.iter().find(|(ek, _)| ek.py_eq(k)) {
                BuiltinFlow::Value(v.clone())
            } else {
                dict.push((k.clone(), default.clone()));
                BuiltinFlow::Value(default.clone())
            }
        }
        _ => raise(
            "TypeError",
            format!(
                "dict has no method `{method}` with {} arguments",
                args.len()
            ),
        ),
    }
}

fn str_method(s: &Rc<str>, method: &str, args: Vec<Value>) -> BuiltinFlow {
    match (method, args.as_slice()) {
        ("split", []) => {
            BuiltinFlow::Value(Value::list(s.split_whitespace().map(Value::str).collect()))
        }
        ("split", [Value::Str(sep)]) => {
            BuiltinFlow::Value(Value::list(s.split(sep.as_ref()).map(Value::str).collect()))
        }
        ("join", [Value::List(items)]) => {
            let mut parts = Vec::new();
            for v in items.borrow().iter() {
                match v {
                    Value::Str(p) => parts.push(p.to_string()),
                    other => {
                        return raise(
                            "TypeError",
                            format!("join() requires strings, got {}", other.type_name()),
                        )
                    }
                }
            }
            BuiltinFlow::Value(Value::str(parts.join(s)))
        }
        ("upper", []) => BuiltinFlow::Value(Value::str(s.to_uppercase())),
        ("lower", []) => BuiltinFlow::Value(Value::str(s.to_lowercase())),
        ("strip", []) => BuiltinFlow::Value(Value::str(s.trim())),
        ("startswith", [Value::Str(p)]) => {
            BuiltinFlow::Value(Value::Bool(s.starts_with(p.as_ref())))
        }
        ("endswith", [Value::Str(p)]) => BuiltinFlow::Value(Value::Bool(s.ends_with(p.as_ref()))),
        ("replace", [Value::Str(from), Value::Str(to)]) => {
            BuiltinFlow::Value(Value::str(s.replace(from.as_ref(), to.as_ref())))
        }
        ("find", [Value::Str(sub)]) => {
            let idx = s.find(sub.as_ref()).map(|i| i as i64).unwrap_or(-1);
            BuiltinFlow::Value(Value::Int(idx))
        }
        ("count", [Value::Str(sub)]) => {
            let n = if sub.is_empty() {
                0
            } else {
                s.matches(sub.as_ref()).count()
            };
            BuiltinFlow::Value(Value::Int(n as i64))
        }
        ("isdigit", []) => BuiltinFlow::Value(Value::Bool(
            !s.is_empty() && s.chars().all(|c| c.is_ascii_digit()),
        )),
        _ => raise(
            "TypeError",
            format!("str has no method `{method}` with {} arguments", args.len()),
        ),
    }
}

fn buffer_method(
    m: &mut Machine,
    tid: TaskId,
    recv: &Value,
    b: &Rc<RefCell<BufferObj>>,
    method: &str,
    args: Vec<Value>,
) -> BuiltinFlow {
    let write = matches!(method, "append" | "write" | "clear");
    m.record_object_access(tid, recv, write);
    match (method, args.as_slice()) {
        ("append", [v]) => {
            let (len, cap) = {
                let b = b.borrow();
                (b.data.len(), b.capacity)
            };
            if len >= cap {
                m.note_overflow(len as i64, cap);
                raise(
                    "BufferOverflowError",
                    format!("append beyond buffer capacity {cap}"),
                )
            } else {
                b.borrow_mut().data.push(v.clone());
                BuiltinFlow::Value(Value::None)
            }
        }
        ("write", [index, v]) => match buffer_write(m, b, index, v.clone()) {
            Ok(()) => BuiltinFlow::Value(Value::None),
            Err(e) => BuiltinFlow::Raise(e),
        },
        ("read", [Value::Int(i)]) => {
            let b = b.borrow();
            if *i < 0 || *i as usize >= b.data.len() {
                let msg = format!("buffer read index {i} out of range (len {})", b.data.len());
                drop(b);
                raise("IndexError", msg)
            } else {
                BuiltinFlow::Value(b.data[*i as usize].clone())
            }
        }
        ("size", []) => BuiltinFlow::Value(Value::Int(b.borrow().data.len() as i64)),
        ("capacity", []) => BuiltinFlow::Value(Value::Int(b.borrow().capacity as i64)),
        ("clear", []) => {
            b.borrow_mut().data.clear();
            BuiltinFlow::Value(Value::None)
        }
        _ => raise(
            "TypeError",
            format!(
                "buffer has no method `{method}` with {} arguments",
                args.len()
            ),
        ),
    }
}

fn handle_method(h: &Rc<HandleObj>, method: &str, args: Vec<Value>) -> BuiltinFlow {
    match (method, args.as_slice()) {
        ("close", []) => {
            h.closed.set(true);
            BuiltinFlow::Value(Value::None)
        }
        ("is_closed", []) => BuiltinFlow::Value(Value::Bool(h.closed.get())),
        ("name", []) => BuiltinFlow::Value(Value::str(h.name.as_str())),
        ("write", [v]) => {
            if h.closed.get() {
                raise("IOError", format!("write to closed handle `{}`", h.name))
            } else {
                h.written.borrow_mut().push(v.clone());
                BuiltinFlow::Value(Value::None)
            }
        }
        ("read_all", []) => BuiltinFlow::Value(Value::list(h.written.borrow().clone())),
        _ => raise(
            "TypeError",
            format!(
                "handle has no method `{method}` with {} arguments",
                args.len()
            ),
        ),
    }
}

fn lock_method(
    m: &mut Machine,
    tid: TaskId,
    lock: crate::value::LockId,
    method: &str,
    args: Vec<Value>,
) -> BuiltinFlow {
    if !m.lock_exists(lock) {
        return raise("RuntimeError", "unknown lock");
    }
    match (method, args.as_slice()) {
        ("acquire", []) => {
            if m.try_acquire(tid, lock) {
                BuiltinFlow::Value(Value::Bool(true))
            } else {
                BuiltinFlow::Block(Wait::Lock(lock))
            }
        }
        ("release", []) => match m.release_lock(tid, lock) {
            Ok(()) => BuiltinFlow::Value(Value::None),
            Err(e) => BuiltinFlow::Raise(e),
        },
        ("locked", []) => BuiltinFlow::Value(Value::Bool(!m.try_peek_free(lock))),
        _ => raise(
            "TypeError",
            format!(
                "lock has no method `{method}` with {} arguments",
                args.len()
            ),
        ),
    }
}

fn exc_method(e: &Rc<ExcObj>, method: &str, args: Vec<Value>) -> BuiltinFlow {
    match (method, args.as_slice()) {
        ("kind", []) => BuiltinFlow::Value(Value::str(e.kind.as_str())),
        ("message", []) => BuiltinFlow::Value(Value::str(e.message.as_str())),
        _ => raise(
            "TypeError",
            format!(
                "exception has no method `{method}` with {} arguments",
                args.len()
            ),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, MachineConfig};

    #[test]
    fn lookup_finds_builtins_and_exceptions() {
        assert!(matches!(lookup("print"), Some(Value::Builtin("print"))));
        assert!(matches!(lookup("TimeoutError"), Some(Value::ExcCtor(_))));
        assert!(lookup("definitely_not_a_builtin").is_none());
    }

    #[test]
    fn builtin_type_and_conversions() {
        let mut m = Machine::new(MachineConfig::default());
        let out = m
            .run_source("print(type(1), type(\"s\"), type([]))\nprint(int(\"42\") + 1)\nprint(float(\"2.5\"))\nprint(bool(0), bool(\"x\"))\n")
            .unwrap();
        assert_eq!(out.output, "int str list\n43\n2.5\nFalse True\n");
    }

    #[test]
    fn min_max_sum_sorted() {
        let mut m = Machine::new(MachineConfig::default());
        let out = m
            .run_source("l = [3, 1, 2]\nprint(min(l), max(l), sum(l))\nprint(sorted(l))\nprint(min(4, 2, 8))\n")
            .unwrap();
        assert_eq!(out.output, "1 3 6\n[1, 2, 3]\n2\n");
    }

    #[test]
    fn int_parse_error_raises_value_error() {
        let mut m = Machine::new(MachineConfig::default());
        let out = m
            .run_source("try:\n    int(\"abc\")\nexcept ValueError:\n    print(\"bad int\")\n")
            .unwrap();
        assert_eq!(out.output, "bad int\n");
    }

    #[test]
    fn range_with_step() {
        let mut m = Machine::new(MachineConfig::default());
        let out = m
            .run_source("v = []\nfor i in range(10, 0, -3):\n    v.append(i)\nprint(v)\n")
            .unwrap();
        assert_eq!(out.output, "[10, 7, 4, 1]\n");
    }

    #[test]
    fn enumerate_pairs() {
        let mut m = Machine::new(MachineConfig::default());
        let out = m
            .run_source("for i, v in enumerate([\"a\", \"b\"]):\n    print(i, v)\n")
            .unwrap();
        assert_eq!(out.output, "0 a\n1 b\n");
    }

    #[test]
    fn rand_is_deterministic_per_seed() {
        let run = |seed| {
            let mut m = Machine::new(MachineConfig {
                seed,
                ..MachineConfig::default()
            });
            m.run_source("print(rand_int(0, 1000))\n").unwrap().output
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn handle_write_after_close_raises() {
        let mut m = Machine::new(MachineConfig::default());
        let out = m
            .run_source("h = open_handle(\"f\")\nh.close()\ntry:\n    h.write(1)\nexcept IOError:\n    print(\"closed\")\n")
            .unwrap();
        assert_eq!(out.output, "closed\n");
    }

    #[test]
    fn str_methods() {
        let mut m = Machine::new(MachineConfig::default());
        let out = m
            .run_source("print(\"ab-cd\".replace(\"-\", \"+\"))\nprint(\"abc\".upper(), \"ABC\".lower())\nprint(\"hello\".find(\"ll\"), \"hello\".find(\"zz\"))\nprint(\"a b  c\".split())\nprint(\"123\".isdigit(), \"12a\".isdigit())\n")
            .unwrap();
        assert_eq!(
            out.output,
            "ab+cd\nABC abc\n2 -1\n[\"a\", \"b\", \"c\"]\nTrue False\n"
        );
    }
}
