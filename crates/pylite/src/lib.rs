//! # nfi-pylite — the PyLite language substrate
//!
//! A deliberately small Python dialect with a lexer, parser, pretty
//! printer, bytecode compiler, and a deterministic cooperative virtual
//! machine. It is the *injection substrate* of the Neural Fault Injection
//! workspace: the paper evaluates on Python programs mutated by a
//! ProFIPy-style tool, and PyLite plays the role of that Python runtime.
//!
//! The VM is built first for dependability experiments, but its hot path
//! is engineered: globals are resolved to per-module slots at compile
//! time (vector indexing, no string-keyed map on the dispatch path), the
//! scheduler checks the running task out once per quantum and reuses its
//! runnable scratch buffer, race-detector bookkeeping stays off the
//! dispatch path until a second task has ever been spawned, and compiled
//! code objects are `Rc`-shared so harnesses compile once and run many
//! times (see [`Machine::run_code`]). The dependability instrumentation:
//!
//! * deterministic, seed-driven preemptive scheduling of cooperative
//!   tasks (`spawn` / `join` / `lock`) — interleavings are reproducible,
//! * a virtual clock (`sleep` / `now`) so timeout scenarios run in
//!   microseconds of wall time,
//! * an Eraser-style lockset **data-race detector**,
//! * **resource-leak** tracking (`open_handle` without `close`),
//! * **bounded buffers** whose overflows are detected and reported,
//! * a step budget plus deadlock detection for **hang** classification.
//!
//! ## Quick start
//!
//! ```
//! use nfi_pylite::{Machine, MachineConfig};
//!
//! let source = "def double(x):\n    return x * 2\nprint(double(21))\n";
//! let mut machine = Machine::new(MachineConfig::default());
//! let outcome = machine.run_source(source)?;
//! assert_eq!(outcome.output, "42\n");
//! assert!(outcome.clean());
//! # Ok::<(), nfi_pylite::PyliteError>(())
//! ```
//!
//! ## Parsing and printing
//!
//! ```
//! let module = nfi_pylite::parse("x = 1 + 2\n")?;
//! assert_eq!(nfi_pylite::print_module(&module), "x = 1 + 2\n");
//! # Ok::<(), nfi_pylite::PyliteError>(())
//! ```

pub mod analysis;
pub mod anchors;
pub mod ast;
mod builtins;
pub mod code;
pub mod compile;
pub mod error;
pub mod fingerprint;
pub mod lexer;
pub mod machine;
pub mod ops;
pub mod parser;
pub mod printer;
pub mod value;

pub use anchors::{ModuleAnchors, StmtAnchor};
pub use ast::{Module, NodeId, Span, Stmt, StmtKind};
pub use builtins::{BUILTIN_FUNCTIONS, EXCEPTION_KINDS};
pub use error::{ErrorKind, PyliteError};
pub use fingerprint::{fingerprint, fnv1a};
pub use machine::{
    ExcInfo, HangKind, LeakReport, Machine, MachineConfig, OverflowReport, RaceReport, RunOutcome,
    RunStatus,
};
pub use parser::parse;
pub use printer::{print_block, print_expr, print_module};
pub use value::Value;
