//! Bytecode representation executed by the PyLite virtual machine.
//!
//! PyLite compiles to a compact stack bytecode instead of walking the AST
//! directly so that execution is *pausable at every instruction*: the
//! cooperative scheduler in [`crate::machine`] preempts tasks between
//! instructions, which is what makes deterministic interleaving
//! exploration (and therefore race-condition faults) possible.

use crate::ast::{BinOp, CmpOp, Span};
use crate::value::Value;
use std::collections::HashMap;
use std::rc::Rc;

/// Per-module global name table, resolved at compile time.
///
/// `LoadGlobal`/`StoreGlobal` operands are *slots* into this table, so
/// the VM's hot path is a vector index instead of a string-keyed
/// `HashMap` lookup. The compiler also pre-resolves every slot's
/// builtin fallback (`builtins::lookup`) once here, so a global miss
/// costs a second vector index rather than a match over builtin names.
///
/// One table is shared by the module-level code object and every
/// function compiled within it (nested compilers intern into the same
/// table), which is what lets a slot mean the same name everywhere.
#[derive(Debug, Default)]
pub struct GlobalTable {
    /// Slot → name, for diagnostics and race reports.
    pub names: Vec<String>,
    /// Name → slot, for host-side lookups (`Machine::call`, `global`).
    pub index: HashMap<String, u16>,
    /// Slot → pre-resolved builtin fallback (parallel to `names`).
    pub builtins: Vec<Option<Value>>,
}

impl GlobalTable {
    /// Slot for `name`, when the compiled module references it.
    pub fn slot(&self, name: &str) -> Option<u16> {
        self.index.get(name).copied()
    }
}

/// A compile-time constant.
#[derive(Debug, Clone)]
pub enum Const {
    /// An immediate value (numbers, strings, None, bools).
    Value(Value),
    /// A nested code object (function body).
    Code(Rc<Code>),
}

/// A single VM instruction.
///
/// Jump operands are absolute instruction indexes within the same
/// [`Code`]. `u16` operands index the `consts` / `names` / `locals`
/// tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// Push `consts[i]`.
    LoadConst(u16),
    /// Push local slot `i` (raises `UnboundLocalError` when unset).
    LoadLocal(u16),
    /// Pop into local slot `i`.
    StoreLocal(u16),
    /// Push global slot `i` of the module's [`GlobalTable`] (falls back
    /// to the slot's pre-resolved builtin, else `NameError`).
    LoadGlobal(u16),
    /// Pop into global slot `i` of the module's [`GlobalTable`].
    StoreGlobal(u16),
    /// Binary arithmetic on the top two stack values.
    Bin(BinOp),
    /// Comparison on the top two stack values.
    Cmp(CmpOp),
    /// Logical `not` of the top value.
    Not,
    /// Arithmetic negation of the top value.
    Neg,
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump when falsy.
    JumpIfFalsePop(u32),
    /// Pop; jump when truthy.
    JumpIfTruePop(u32),
    /// Peek; jump when falsy keeping the value (for `and`).
    JumpIfFalsePeek(u32),
    /// Peek; jump when truthy keeping the value (for `or`).
    JumpIfTruePeek(u32),
    /// Pop `n` values into a new list.
    MakeList(u16),
    /// Pop `n` values into a new tuple.
    MakeTuple(u16),
    /// Pop `2n` values into a new dict.
    MakeDict(u16),
    /// `obj[index]` — pops index, obj; pushes element.
    GetIndex,
    /// `obj[index] = value` — pops value, index, obj.
    SetIndex,
    /// Duplicate the top value.
    Dup,
    /// Duplicate the top two values (for augmented subscript assignment).
    Dup2,
    /// Discard the top value.
    Pop,
    /// Call with `argc` positional arguments (callee below the arguments).
    Call(u8),
    /// Method call `obj.names[name](...)` with `argc` arguments.
    CallMethod {
        /// Index into `names` for the method name.
        name: u16,
        /// Number of positional arguments.
        argc: u8,
    },
    /// Return the top value from the current frame.
    Return,
    /// Create a function from `consts[code]`, popping `n_defaults`
    /// default values (rightmost on top).
    MakeFunction {
        /// Index into `consts` of the [`Const::Code`].
        code: u16,
        /// Number of trailing parameter defaults to pop.
        n_defaults: u8,
    },
    /// Replace TOS with an iterator over it.
    GetIter,
    /// TOS is an iterator: push the next element, or pop it and jump when
    /// exhausted.
    ForIter(u32),
    /// Pop a sequence of exactly `n` elements; push them so the first
    /// element ends on top.
    UnpackTuple(u8),
    /// Raise the popped exception (or instantiate a popped exception
    /// constructor).
    Raise,
    /// Re-raise the task's current exception (bare `raise`).
    Reraise,
    /// Pop a message value and raise `AssertionError` with it.
    RaiseAssert,
    /// Enter a `try` region whose except-dispatch starts at the operand.
    SetupExcept(u32),
    /// Enter a `try`/`finally` region whose exception-path copy of the
    /// finally suite starts at the operand.
    SetupFinally(u32),
    /// Leave the innermost `try` region (normal path).
    PopBlock,
    /// Peek the exception on TOS; push whether it matches `names[i]`.
    MatchExc(u16),
}

/// A compiled function (or module) body.
#[derive(Debug, Default)]
pub struct Code {
    /// Name for diagnostics (`"<module>"` for top level).
    pub name: String,
    /// Parameter names (locals `0..params.len()`).
    pub params: Vec<String>,
    /// All local variable names (including parameters).
    pub locals: Vec<String>,
    /// Constant pool.
    pub consts: Vec<Const>,
    /// Method / exception-kind name pool (globals live in the module's
    /// [`GlobalTable`] instead).
    pub names: Vec<String>,
    /// Instruction stream.
    pub instrs: Vec<Instr>,
    /// Source span per instruction (parallel to `instrs`).
    pub spans: Vec<Span>,
    /// The module-wide global table. `Some` only on the module-level
    /// code object; nested function codes share it through the machine
    /// that installed it.
    pub globals: Option<Rc<GlobalTable>>,
}

impl Code {
    /// The source span of instruction `pc`, when in range.
    pub fn span_at(&self, pc: usize) -> Option<Span> {
        self.spans.get(pc).copied()
    }

    /// A readable disassembly, one instruction per line (for debugging
    /// and for compiler tests).
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "code {} ({} locals)", self.name, self.locals.len());
        for (i, instr) in self.instrs.iter().enumerate() {
            let _ = writeln!(out, "  {i:4}: {instr:?}");
        }
        for c in &self.consts {
            if let Const::Code(code) = c {
                out.push_str(&code.disassemble());
            }
        }
        out
    }
}
