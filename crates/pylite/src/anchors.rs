//! Site-stable structural anchors: a per-statement key that survives
//! edits *elsewhere* in the module.
//!
//! The incremental campaign store addresses work by content. Its fast
//! path keys a whole segment by the module fingerprint, which is exact
//! but all-or-nothing: one edited line anywhere re-executes every unit
//! in the module. Anchors recover per-function granularity. Each
//! statement is assigned
//!
//! * an **anchor** — a hash of the statement's *structural
//!   neighborhood*: for a statement inside a `def`, the dotted def
//!   path (`"f"`, `"f.g"`, …) extended with the canonical printed text
//!   of that innermost def; for a top-level statement, the printed
//!   text of all non-def top-level statements. Anchors never fold in
//!   byte offsets, line numbers, or node ids, so they are insensitive
//!   to comments, formatting, and edits outside the neighborhood;
//! * an **ordinal** — the statement's pre-order position *within its
//!   anchor group*, which disambiguates repeated statements inside one
//!   function without reintroducing whole-module position sensitivity.
//!
//! Together `(anchor, ordinal)` identify an injection site across
//! module versions: editing one function changes only that function's
//! anchor (its printed body changed), while every other statement in
//! the module keeps both its anchor and its ordinal. The campaign
//! store exploits this in its anchor-fallback path — on a
//! module-fingerprint miss, any unit whose anchor-stable key still
//! resolves in the previous segment replays verbatim.
//!
//! Granularity notes, all conservative (they can only cause extra
//! re-execution, never a stale replay):
//!
//! * a `def` *statement itself* anchors to its own function — renaming
//!   or editing `f` re-executes units that target the `f` def site;
//! * a def nested in another def (`f.g`) gets its own anchor, so
//!   editing `f`'s straight-line body re-executes `f`'s units but not
//!   `g`'s — while editing `g` changes both (its printed text is part
//!   of `f`'s);
//! * a def nested inside a *non-def top-level statement* (under an
//!   `if`, say) is treated as part of that top-level statement's
//!   neighborhood, not given its own anchor;
//! * appending or editing any non-def top-level statement changes the
//!   shared top-level anchor, re-executing all top-level units.

use crate::ast::{stmt_blocks, Module, NodeId, Stmt, StmtKind};
use crate::fingerprint::{fnv1a, fnv1a_extend};
use crate::printer::print_block;
use std::collections::HashMap;

/// Domain tag for def-scoped anchors (keeps a def path from ever
/// colliding with printed top-level text).
const DEF_TAG: &[u8] = b"nfi-anchor-def\x00";
/// Domain tag for the shared top-level anchor.
const TOP_TAG: &[u8] = b"nfi-anchor-top\x00";

/// The `(anchor, ordinal)` pair assigned to one statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StmtAnchor {
    /// Structural-neighborhood hash (see module docs).
    pub anchor: u64,
    /// Pre-order position within the anchor group.
    pub ordinal: u32,
}

/// All statement anchors of one module, computed in a single pass.
#[derive(Debug, Clone)]
pub struct ModuleAnchors {
    by_stmt: HashMap<NodeId, StmtAnchor>,
}

impl ModuleAnchors {
    /// Computes anchors for every statement in `module` (every
    /// statement reachable from the module body is assigned — nested
    /// blocks included).
    pub fn compute(module: &Module) -> ModuleAnchors {
        let mut anchors = ModuleAnchors {
            by_stmt: HashMap::new(),
        };
        // The shared top-level anchor hashes the printed text of the
        // non-def top-level statements only, so adding or editing a
        // function leaves top-level units anchored.
        let top_level: Vec<Stmt> = module
            .body
            .iter()
            .filter(|s| !matches!(s.kind, StmtKind::Def { .. }))
            .cloned()
            .collect();
        let top_anchor = fnv1a_extend(fnv1a(TOP_TAG), print_block(&top_level, 0).as_bytes());
        let mut top_ordinal = 0u32;
        for stmt in &module.body {
            match &stmt.kind {
                StmtKind::Def { name, .. } => anchors.assign_def(stmt, name),
                _ => anchors.assign_group(stmt, top_anchor, &mut top_ordinal),
            }
        }
        anchors
    }

    /// The anchor assigned to `stmt_id`, or `None` for an id that is
    /// not a statement of the computed module.
    pub fn get(&self, stmt_id: NodeId) -> Option<StmtAnchor> {
        self.by_stmt.get(&stmt_id).copied()
    }

    /// Number of anchored statements.
    pub fn len(&self) -> usize {
        self.by_stmt.len()
    }

    /// Whether the module had no statements at all.
    pub fn is_empty(&self) -> bool {
        self.by_stmt.is_empty()
    }

    /// Anchors a def and its whole subtree: the def statement itself
    /// and its body share `fnv1a(path) ⊕ printed def`, while nested
    /// defs recurse with a `path.name` extension and their own anchor.
    fn assign_def(&mut self, def: &Stmt, path: &str) {
        let mut h = fnv1a(DEF_TAG);
        h = fnv1a_extend(h, path.as_bytes());
        h = fnv1a_extend(h, b"\x00");
        let printed = print_block(std::slice::from_ref(def), 0);
        let anchor = fnv1a_extend(h, printed.as_bytes());
        let mut ordinal = 0u32;
        self.assign_in_def(def, path, anchor, &mut ordinal);
    }

    /// Pre-order assignment inside a def, branching off to
    /// [`assign_def`](Self::assign_def) at nested defs.
    fn assign_in_def(&mut self, stmt: &Stmt, path: &str, anchor: u64, ordinal: &mut u32) {
        self.by_stmt.insert(
            stmt.id,
            StmtAnchor {
                anchor,
                ordinal: *ordinal,
            },
        );
        *ordinal += 1;
        for block in stmt_blocks(stmt) {
            for child in block {
                if let StmtKind::Def { name, .. } = &child.kind {
                    self.assign_def(child, &format!("{path}.{name}"));
                } else {
                    self.assign_in_def(child, path, anchor, ordinal);
                }
            }
        }
    }

    /// Pre-order assignment of a whole subtree to one anchor group
    /// (the top-level group; nested defs under non-def statements stay
    /// in the group, per the module docs).
    fn assign_group(&mut self, stmt: &Stmt, anchor: u64, ordinal: &mut u32) {
        self.by_stmt.insert(
            stmt.id,
            StmtAnchor {
                anchor,
                ordinal: *ordinal,
            },
        );
        *ordinal += 1;
        for block in stmt_blocks(stmt) {
            for child in block {
                self.assign_group(child, anchor, ordinal);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const BASE: &str = "x = 1\ndef f(a):\n    y = a + 1\n    return y\ndef g(b):\n    while b > 0:\n        b = b - 1\n    return b\nz = f(2) + g(3)\n";

    /// Anchors of every statement in the subtree of the named def.
    fn def_anchors(src: &str, name: &str) -> Vec<StmtAnchor> {
        let module = parse(src).unwrap();
        let anchors = ModuleAnchors::compute(&module);
        let def = module
            .body
            .iter()
            .find(|s| matches!(&s.kind, StmtKind::Def { name: n, .. } if n == name))
            .unwrap_or_else(|| panic!("no def {name}"));
        let mut out = Vec::new();
        collect(def, &anchors, &mut out);
        out
    }

    fn collect(stmt: &Stmt, anchors: &ModuleAnchors, out: &mut Vec<StmtAnchor>) {
        out.push(anchors.get(stmt.id).expect("every stmt is anchored"));
        for block in stmt_blocks(stmt) {
            for child in block {
                collect(child, anchors, out);
            }
        }
    }

    /// Anchors of the non-def top-level statements (whole subtrees).
    fn top_anchors(src: &str) -> Vec<StmtAnchor> {
        let module = parse(src).unwrap();
        let anchors = ModuleAnchors::compute(&module);
        let mut out = Vec::new();
        for stmt in &module.body {
            if !matches!(stmt.kind, StmtKind::Def { .. }) {
                collect(stmt, &anchors, &mut out);
            }
        }
        out
    }

    #[test]
    fn every_statement_is_anchored() {
        let module = parse(BASE).unwrap();
        let anchors = ModuleAnchors::compute(&module);
        let mut total = 0usize;
        module.walk_stmts(&mut |stmt| {
            assert!(anchors.get(stmt.id).is_some(), "stmt {:?}", stmt.id);
            total += 1;
        });
        assert_eq!(anchors.len(), total);
        assert!(!anchors.is_empty());
    }

    #[test]
    fn anchor_ordinal_pairs_are_unique_per_module() {
        let module = parse(BASE).unwrap();
        let anchors = ModuleAnchors::compute(&module);
        let mut pairs: Vec<(u64, u32)> = Vec::new();
        module.walk_stmts(&mut |stmt| {
            let a = anchors.get(stmt.id).unwrap();
            pairs.push((a.anchor, a.ordinal));
        });
        pairs.sort_unstable();
        let before = pairs.len();
        pairs.dedup();
        assert_eq!(pairs.len(), before, "(anchor, ordinal) must be unique");
    }

    #[test]
    fn comment_and_formatting_edits_preserve_all_anchors() {
        // Same program with comments, blank lines, and redundant
        // parentheses — the parser canonicalizes all of it away.
        let noisy = "# leading comment\nx = 1\n\ndef f(a):\n    # inner comment\n    y = (a + 1)\n    return (y)\n\ndef g(b):\n    while (b > 0):\n        b = b - 1\n    return b\nz = (f(2) + g(3))\n";
        assert_eq!(def_anchors(BASE, "f"), def_anchors(noisy, "f"));
        assert_eq!(def_anchors(BASE, "g"), def_anchors(noisy, "g"));
        assert_eq!(top_anchors(BASE), top_anchors(noisy));
    }

    #[test]
    fn unrelated_function_edit_preserves_other_anchors() {
        // Edit g's body only: f and the top level keep every anchor.
        let edited = BASE.replace("b = b - 1", "b = b - 1 - 0");
        assert_ne!(edited, BASE);
        assert_eq!(def_anchors(BASE, "f"), def_anchors(&edited, "f"));
        assert_eq!(top_anchors(BASE), top_anchors(&edited));
        // While g's own anchor changed for every statement in g.
        let before = def_anchors(BASE, "g");
        let after = def_anchors(&edited, "g");
        for (b, a) in before.iter().zip(&after) {
            assert_ne!(b.anchor, a.anchor, "g's anchor must change");
        }
    }

    #[test]
    fn body_edit_changes_only_the_enclosing_functions_anchor() {
        let edited = BASE.replace("y = a + 1", "y = a + 1 + 0");
        assert_ne!(edited, BASE);
        let before_f = def_anchors(BASE, "f");
        let after_f = def_anchors(&edited, "f");
        assert_eq!(before_f.len(), after_f.len());
        for (b, a) in before_f.iter().zip(&after_f) {
            assert_ne!(b.anchor, a.anchor);
            // Ordinals survive a body edit that keeps the shape.
            assert_eq!(b.ordinal, a.ordinal);
        }
        assert_eq!(def_anchors(BASE, "g"), def_anchors(&edited, "g"));
        assert_eq!(top_anchors(BASE), top_anchors(&edited));
    }

    #[test]
    fn added_function_preserves_existing_anchors() {
        let grown = format!("{BASE}def h(c):\n    return c\n");
        assert_eq!(def_anchors(BASE, "f"), def_anchors(&grown, "f"));
        assert_eq!(def_anchors(BASE, "g"), def_anchors(&grown, "g"));
        assert_eq!(top_anchors(BASE), top_anchors(&grown));
    }

    #[test]
    fn top_level_edit_changes_top_anchors_but_not_function_anchors() {
        let grown = format!("{BASE}marker = 1\n");
        assert_eq!(def_anchors(BASE, "f"), def_anchors(&grown, "f"));
        let before = top_anchors(BASE);
        let after = top_anchors(&grown);
        assert_eq!(after.len(), before.len() + 1);
        for (b, a) in before.iter().zip(&after) {
            assert_ne!(b.anchor, a.anchor, "top-level anchor must change");
            assert_eq!(b.ordinal, a.ordinal);
        }
    }

    #[test]
    fn nested_defs_anchor_independently_of_the_outer_body() {
        let nested =
            "def f(a):\n    y = a + 1\n    def g(b):\n        return b + y\n    return g(a)\n";
        // Editing f's straight-line body leaves g's anchors alone …
        let edited = nested.replace("y = a + 1", "y = a + 1 + 0");
        let module = parse(nested).unwrap();
        let module_edited = parse(&edited).unwrap();
        let a = ModuleAnchors::compute(&module);
        let b = ModuleAnchors::compute(&module_edited);
        let g_of = |m: &Module, an: &ModuleAnchors| {
            let f = m.body.first().unwrap();
            let body = stmt_blocks(f)[0];
            let g = body
                .iter()
                .find(|s| matches!(s.kind, StmtKind::Def { .. }))
                .unwrap();
            let mut out = Vec::new();
            collect(g, an, &mut out);
            out
        };
        assert_eq!(g_of(&module, &a), g_of(&module_edited, &b));
        // … while same-named defs at different paths never collide.
        let twice = "def f(a):\n    def g(b):\n        return b\n    return g(a)\ndef g(b):\n    return b\n";
        let m = parse(twice).unwrap();
        let an = ModuleAnchors::compute(&m);
        let outer_g = def_anchors(twice, "g");
        let f_stmt = m.body.first().unwrap();
        let inner_g = stmt_blocks(f_stmt)[0]
            .iter()
            .find(|s| matches!(s.kind, StmtKind::Def { .. }))
            .unwrap();
        assert_ne!(
            an.get(inner_g.id).unwrap().anchor,
            outer_g[0].anchor,
            "f.g and g have distinct anchors even with identical bodies"
        );
    }
}
