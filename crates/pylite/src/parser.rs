//! Recursive-descent parser for PyLite.
//!
//! Grammar (indentation-sensitive, a strict subset of Python):
//!
//! ```text
//! module     := stmt*
//! stmt       := simple_stmt NEWLINE | compound_stmt
//! simple     := assign | aug_assign | return | raise | global | pass
//!             | break | continue | assert | expr
//! compound   := if | while | for | def | try
//! expr       := ternary
//! ternary    := or_expr ['if' or_expr 'else' ternary]
//! or_expr    := and_expr ('or' and_expr)*
//! and_expr   := not_expr ('and' not_expr)*
//! not_expr   := 'not' not_expr | comparison
//! comparison := arith (cmp_op arith)?          -- non-chained
//! arith      := term (('+'|'-') term)*
//! term       := factor (('*'|'/'|'//'|'%') factor)*
//! factor     := ('-') factor | power
//! power      := postfix ['**' factor]
//! postfix    := atom (call | index | attr)*
//! atom       := NAME | literal | '(' expr [',' ...] ')' | '[' ... ']' | '{' ... '}'
//! ```

use crate::ast::*;
use crate::error::{ErrorKind, PyliteError};
use crate::lexer::{tokenize, Kw, OpTok, SpannedTok, Tok};

/// Parses PyLite source text into a [`Module`] with dense pre-order node ids.
///
/// # Errors
///
/// Returns a [`PyliteError`] of kind `Lex` or `Parse` describing the first
/// problem encountered, with its source position.
///
/// # Examples
///
/// ```
/// let module = nfi_pylite::parse("def f(x):\n    return x + 1\n")?;
/// assert_eq!(module.def_names(), vec!["f".to_string()]);
/// # Ok::<(), nfi_pylite::PyliteError>(())
/// ```
pub fn parse(source: &str) -> Result<Module, PyliteError> {
    let toks = tokenize(source)?;
    let mut p = Parser {
        toks,
        pos: 0,
        next_id: 0,
    };
    let mut body = Vec::new();
    while !p.at(&Tok::Eof) {
        body.push(p.stmt()?);
    }
    let mut module = Module { body };
    module.renumber();
    Ok(module)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    next_id: u32,
}

impl Parser {
    fn cur(&self) -> &SpannedTok {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn at(&self, t: &Tok) -> bool {
        &self.cur().tok == t
    }

    fn at_op(&self, op: OpTok) -> bool {
        matches!(&self.cur().tok, Tok::Op(o) if *o == op)
    }

    fn at_kw(&self, kw: Kw) -> bool {
        matches!(&self.cur().tok, Tok::Kw(k) if *k == kw)
    }

    fn bump(&mut self) -> SpannedTok {
        let t = self.cur().clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_op(&mut self, op: OpTok) -> bool {
        if self.at_op(op) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Kw) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_op(&mut self, op: OpTok, what: &str) -> Result<(), PyliteError> {
        if self.eat_op(op) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.cur().tok)))
        }
    }

    fn expect_newline(&mut self) -> Result<(), PyliteError> {
        if self.at(&Tok::Newline) {
            self.bump();
            Ok(())
        } else if self.at(&Tok::Eof) {
            Ok(())
        } else {
            Err(self.err(format!("expected end of line, found {:?}", self.cur().tok)))
        }
    }

    fn expect_name(&mut self, what: &str) -> Result<String, PyliteError> {
        match &self.cur().tok {
            Tok::Name(n) => {
                let n = n.clone();
                self.bump();
                Ok(n)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn err(&self, msg: impl Into<String>) -> PyliteError {
        PyliteError::new(ErrorKind::Parse, msg).with_span(self.cur().span)
    }

    fn id(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    fn mk_expr(&mut self, span: Span, kind: ExprKind) -> Expr {
        Expr {
            id: self.id(),
            span,
            kind,
        }
    }

    fn mk_stmt(&mut self, span: Span, kind: StmtKind) -> Stmt {
        Stmt {
            id: self.id(),
            span,
            kind,
        }
    }

    // ---- statements ------------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt, PyliteError> {
        let span = self.cur().span;
        match &self.cur().tok {
            Tok::Kw(Kw::If) => self.if_stmt(),
            Tok::Kw(Kw::While) => self.while_stmt(),
            Tok::Kw(Kw::For) => self.for_stmt(),
            Tok::Kw(Kw::Def) => self.def_stmt(),
            Tok::Kw(Kw::Try) => self.try_stmt(),
            _ => {
                let s = self.simple_stmt(span)?;
                self.expect_newline()?;
                Ok(s)
            }
        }
    }

    fn simple_stmt(&mut self, span: Span) -> Result<Stmt, PyliteError> {
        if self.eat_kw(Kw::Return) {
            let value = if self.at(&Tok::Newline) || self.at(&Tok::Eof) {
                None
            } else {
                Some(self.expr()?)
            };
            return Ok(self.mk_stmt(span, StmtKind::Return(value)));
        }
        if self.eat_kw(Kw::Raise) {
            let value = if self.at(&Tok::Newline) || self.at(&Tok::Eof) {
                None
            } else {
                Some(self.expr()?)
            };
            return Ok(self.mk_stmt(span, StmtKind::Raise(value)));
        }
        if self.eat_kw(Kw::Global) {
            let mut names = vec![self.expect_name("name after `global`")?];
            while self.eat_op(OpTok::Comma) {
                names.push(self.expect_name("name after `,`")?);
            }
            return Ok(self.mk_stmt(span, StmtKind::Global(names)));
        }
        if self.eat_kw(Kw::Pass) {
            return Ok(self.mk_stmt(span, StmtKind::Pass));
        }
        if self.eat_kw(Kw::Break) {
            return Ok(self.mk_stmt(span, StmtKind::Break));
        }
        if self.eat_kw(Kw::Continue) {
            return Ok(self.mk_stmt(span, StmtKind::Continue));
        }
        if self.eat_kw(Kw::Assert) {
            let cond = self.expr()?;
            let msg = if self.eat_op(OpTok::Comma) {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(self.mk_stmt(span, StmtKind::Assert { cond, msg }));
        }
        // expression, assignment, or augmented assignment
        let first = self.expr()?;
        if self.at_op(OpTok::Comma) {
            // tuple-unpacking assignment: a, b = expr
            let mut names = vec![match first.kind {
                ExprKind::Name(ref n) => n.clone(),
                _ => return Err(self.err("only names can appear in tuple assignment")),
            }];
            while self.eat_op(OpTok::Comma) {
                names.push(self.expect_name("name in tuple assignment")?);
            }
            self.expect_op(OpTok::Assign, "`=` after tuple target")?;
            let value = self.expr()?;
            return Ok(self.mk_stmt(
                span,
                StmtKind::Assign {
                    target: Target::Tuple(names),
                    value,
                },
            ));
        }
        if self.at_op(OpTok::Assign) {
            self.bump();
            let value = self.expr()?;
            let target = self.expr_to_target(first)?;
            return Ok(self.mk_stmt(span, StmtKind::Assign { target, value }));
        }
        let aug = match &self.cur().tok {
            Tok::Op(OpTok::PlusEq) => Some(BinOp::Add),
            Tok::Op(OpTok::MinusEq) => Some(BinOp::Sub),
            Tok::Op(OpTok::StarEq) => Some(BinOp::Mul),
            Tok::Op(OpTok::SlashEq) => Some(BinOp::Div),
            Tok::Op(OpTok::SlashSlashEq) => Some(BinOp::FloorDiv),
            Tok::Op(OpTok::StarStarEq) => Some(BinOp::Pow),
            Tok::Op(OpTok::PercentEq) => Some(BinOp::Mod),
            _ => None,
        };
        if let Some(op) = aug {
            self.bump();
            let value = self.expr()?;
            let target = self.expr_to_target(first)?;
            return Ok(self.mk_stmt(span, StmtKind::AugAssign { target, op, value }));
        }
        Ok(self.mk_stmt(span, StmtKind::Expr(first)))
    }

    fn expr_to_target(&self, e: Expr) -> Result<Target, PyliteError> {
        match e.kind {
            ExprKind::Name(n) => Ok(Target::Name(n)),
            ExprKind::Index { obj, index } => Ok(Target::Index {
                obj: *obj,
                index: *index,
            }),
            _ => Err(
                PyliteError::new(ErrorKind::Parse, "invalid assignment target").with_span(e.span),
            ),
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, PyliteError> {
        self.expect_op(OpTok::Colon, "`:`")?;
        if self.at(&Tok::Newline) {
            self.bump();
            if !self.at(&Tok::Indent) {
                return Err(self.err("expected an indented block"));
            }
            self.bump();
            let mut body = Vec::new();
            while !self.at(&Tok::Dedent) && !self.at(&Tok::Eof) {
                body.push(self.stmt()?);
            }
            if self.at(&Tok::Dedent) {
                self.bump();
            }
            Ok(body)
        } else {
            // single-line suite: `if x: y = 1`
            let span = self.cur().span;
            let s = self.simple_stmt(span)?;
            self.expect_newline()?;
            Ok(vec![s])
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, PyliteError> {
        let span = self.cur().span;
        self.bump(); // if / elif
        let cond = self.expr()?;
        let then = self.block()?;
        let orelse = if self.at_kw(Kw::Elif) {
            vec![self.if_stmt()?] // reuse: elif parses like a nested if
        } else if self.eat_kw(Kw::Else) {
            self.block()?
        } else {
            Vec::new()
        };
        Ok(self.mk_stmt(span, StmtKind::If { cond, then, orelse }))
    }

    fn while_stmt(&mut self) -> Result<Stmt, PyliteError> {
        let span = self.cur().span;
        self.bump();
        let cond = self.expr()?;
        let body = self.block()?;
        Ok(self.mk_stmt(span, StmtKind::While { cond, body }))
    }

    fn for_stmt(&mut self) -> Result<Stmt, PyliteError> {
        let span = self.cur().span;
        self.bump();
        let mut vars = vec![self.expect_name("loop variable")?];
        while self.eat_op(OpTok::Comma) {
            vars.push(self.expect_name("loop variable")?);
        }
        if !self.eat_kw(Kw::In) {
            return Err(self.err("expected `in` in for statement"));
        }
        let iter = self.expr()?;
        let body = self.block()?;
        Ok(self.mk_stmt(span, StmtKind::For { vars, iter, body }))
    }

    fn def_stmt(&mut self) -> Result<Stmt, PyliteError> {
        let span = self.cur().span;
        self.bump();
        let name = self.expect_name("function name")?;
        self.expect_op(OpTok::LParen, "`(`")?;
        let mut params = Vec::new();
        let mut defaults = Vec::new();
        while !self.at_op(OpTok::RParen) {
            let p = self.expect_name("parameter name")?;
            params.push(p);
            if self.eat_op(OpTok::Assign) {
                defaults.push(self.expr()?);
            } else if !defaults.is_empty() {
                return Err(self.err("non-default parameter after default parameter"));
            }
            if !self.eat_op(OpTok::Comma) {
                break;
            }
        }
        self.expect_op(OpTok::RParen, "`)`")?;
        let body = self.block()?;
        Ok(self.mk_stmt(
            span,
            StmtKind::Def {
                name,
                params,
                defaults,
                body,
            },
        ))
    }

    fn try_stmt(&mut self) -> Result<Stmt, PyliteError> {
        let span = self.cur().span;
        self.bump();
        let body = self.block()?;
        let mut handlers = Vec::new();
        while self.at_kw(Kw::Except) {
            self.bump();
            let (kind, bind) = if self.at_op(OpTok::Colon) {
                (None, None)
            } else {
                let kind = self.expect_name("exception kind")?;
                let bind = if self.eat_kw(Kw::As) {
                    Some(self.expect_name("binding name after `as`")?)
                } else {
                    None
                };
                (Some(kind), bind)
            };
            let hbody = self.block()?;
            handlers.push(Handler {
                kind,
                bind,
                body: hbody,
            });
        }
        let finally = if self.eat_kw(Kw::Finally) {
            self.block()?
        } else {
            Vec::new()
        };
        if handlers.is_empty() && finally.is_empty() {
            return Err(self.err("try statement needs at least one except or finally clause"));
        }
        Ok(self.mk_stmt(
            span,
            StmtKind::Try {
                body,
                handlers,
                finally,
            },
        ))
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, PyliteError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, PyliteError> {
        let span = self.cur().span;
        let value = self.or_expr()?;
        if self.at_kw(Kw::If) {
            self.bump();
            let cond = self.or_expr()?;
            if !self.eat_kw(Kw::Else) {
                return Err(self.err("expected `else` in conditional expression"));
            }
            let orelse = self.ternary()?;
            return Ok(self.mk_expr(
                span,
                ExprKind::Ternary {
                    cond: Box::new(cond),
                    then: Box::new(value),
                    orelse: Box::new(orelse),
                },
            ));
        }
        Ok(value)
    }

    fn or_expr(&mut self) -> Result<Expr, PyliteError> {
        let span = self.cur().span;
        let mut left = self.and_expr()?;
        while self.eat_kw(Kw::Or) {
            let right = self.and_expr()?;
            left = self.mk_expr(
                span,
                ExprKind::Bool {
                    op: BoolOp::Or,
                    left: Box::new(left),
                    right: Box::new(right),
                },
            );
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, PyliteError> {
        let span = self.cur().span;
        let mut left = self.not_expr()?;
        while self.eat_kw(Kw::And) {
            let right = self.not_expr()?;
            left = self.mk_expr(
                span,
                ExprKind::Bool {
                    op: BoolOp::And,
                    left: Box::new(left),
                    right: Box::new(right),
                },
            );
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, PyliteError> {
        let span = self.cur().span;
        if self.eat_kw(Kw::Not) {
            let operand = self.not_expr()?;
            return Ok(self.mk_expr(
                span,
                ExprKind::Unary {
                    op: UnaryOp::Not,
                    operand: Box::new(operand),
                },
            ));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, PyliteError> {
        let span = self.cur().span;
        let left = self.arith()?;
        let op = match &self.cur().tok {
            Tok::Op(OpTok::EqEq) => Some(CmpOp::Eq),
            Tok::Op(OpTok::NotEq) => Some(CmpOp::Ne),
            Tok::Op(OpTok::Lt) => Some(CmpOp::Lt),
            Tok::Op(OpTok::Le) => Some(CmpOp::Le),
            Tok::Op(OpTok::Gt) => Some(CmpOp::Gt),
            Tok::Op(OpTok::Ge) => Some(CmpOp::Ge),
            Tok::Kw(Kw::In) => Some(CmpOp::In),
            Tok::Kw(Kw::Not) => {
                // `not in`
                if matches!(
                    self.toks.get(self.pos + 1).map(|t| &t.tok),
                    Some(Tok::Kw(Kw::In))
                ) {
                    self.bump();
                    Some(CmpOp::NotIn)
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.arith()?;
            return Ok(self.mk_expr(
                span,
                ExprKind::Cmp {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                },
            ));
        }
        Ok(left)
    }

    fn arith(&mut self) -> Result<Expr, PyliteError> {
        let span = self.cur().span;
        let mut left = self.term()?;
        loop {
            let op = match &self.cur().tok {
                Tok::Op(OpTok::Plus) => BinOp::Add,
                Tok::Op(OpTok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.term()?;
            left = self.mk_expr(
                span,
                ExprKind::Bin {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                },
            );
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<Expr, PyliteError> {
        let span = self.cur().span;
        let mut left = self.factor()?;
        loop {
            let op = match &self.cur().tok {
                Tok::Op(OpTok::Star) => BinOp::Mul,
                Tok::Op(OpTok::Slash) => BinOp::Div,
                Tok::Op(OpTok::SlashSlash) => BinOp::FloorDiv,
                Tok::Op(OpTok::Percent) => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.factor()?;
            left = self.mk_expr(
                span,
                ExprKind::Bin {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                },
            );
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<Expr, PyliteError> {
        let span = self.cur().span;
        if self.eat_op(OpTok::Minus) {
            let operand = self.factor()?;
            // Fold negated numeric literals so `-714` round-trips as a
            // constant rather than `Neg(714)`.
            match &operand.kind {
                ExprKind::Const(Lit::Int(v)) => {
                    let folded = v.wrapping_neg();
                    return Ok(self.mk_expr(span, ExprKind::Const(Lit::Int(folded))));
                }
                ExprKind::Const(Lit::Float(v)) => {
                    let folded = -*v;
                    return Ok(self.mk_expr(span, ExprKind::Const(Lit::Float(folded))));
                }
                _ => {}
            }
            return Ok(self.mk_expr(
                span,
                ExprKind::Unary {
                    op: UnaryOp::Neg,
                    operand: Box::new(operand),
                },
            ));
        }
        self.power()
    }

    fn power(&mut self) -> Result<Expr, PyliteError> {
        let span = self.cur().span;
        let base = self.postfix()?;
        if self.eat_op(OpTok::StarStar) {
            let exp = self.factor()?; // right-associative
            return Ok(self.mk_expr(
                span,
                ExprKind::Bin {
                    op: BinOp::Pow,
                    left: Box::new(base),
                    right: Box::new(exp),
                },
            ));
        }
        Ok(base)
    }

    fn postfix(&mut self) -> Result<Expr, PyliteError> {
        let mut e = self.atom()?;
        loop {
            let span = self.cur().span;
            if self.eat_op(OpTok::LParen) {
                let mut args = Vec::new();
                while !self.at_op(OpTok::RParen) {
                    args.push(self.expr()?);
                    if !self.eat_op(OpTok::Comma) {
                        break;
                    }
                }
                self.expect_op(OpTok::RParen, "`)`")?;
                e = self.mk_expr(
                    span,
                    ExprKind::Call {
                        func: Box::new(e),
                        args,
                    },
                );
            } else if self.eat_op(OpTok::LBracket) {
                let index = self.expr()?;
                self.expect_op(OpTok::RBracket, "`]`")?;
                e = self.mk_expr(
                    span,
                    ExprKind::Index {
                        obj: Box::new(e),
                        index: Box::new(index),
                    },
                );
            } else if self.eat_op(OpTok::Dot) {
                let name = self.expect_name("method name after `.`")?;
                self.expect_op(OpTok::LParen, "`(` (PyLite attributes are method calls)")?;
                let mut args = Vec::new();
                while !self.at_op(OpTok::RParen) {
                    args.push(self.expr()?);
                    if !self.eat_op(OpTok::Comma) {
                        break;
                    }
                }
                self.expect_op(OpTok::RParen, "`)`")?;
                e = self.mk_expr(
                    span,
                    ExprKind::MethodCall {
                        obj: Box::new(e),
                        name,
                        args,
                    },
                );
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<Expr, PyliteError> {
        let span = self.cur().span;
        let tok = self.cur().tok.clone();
        match tok {
            Tok::Int(v) => {
                self.bump();
                Ok(self.mk_expr(span, ExprKind::Const(Lit::Int(v))))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(self.mk_expr(span, ExprKind::Const(Lit::Float(v))))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(self.mk_expr(span, ExprKind::Const(Lit::Str(s))))
            }
            Tok::Kw(Kw::True) => {
                self.bump();
                Ok(self.mk_expr(span, ExprKind::Const(Lit::Bool(true))))
            }
            Tok::Kw(Kw::False) => {
                self.bump();
                Ok(self.mk_expr(span, ExprKind::Const(Lit::Bool(false))))
            }
            Tok::Kw(Kw::None) => {
                self.bump();
                Ok(self.mk_expr(span, ExprKind::Const(Lit::None)))
            }
            Tok::Name(n) => {
                self.bump();
                Ok(self.mk_expr(span, ExprKind::Name(n)))
            }
            Tok::Op(OpTok::LParen) => {
                self.bump();
                if self.at_op(OpTok::RParen) {
                    self.bump();
                    return Ok(self.mk_expr(span, ExprKind::Tuple(Vec::new())));
                }
                let first = self.expr()?;
                if self.at_op(OpTok::Comma) {
                    let mut items = vec![first];
                    while self.eat_op(OpTok::Comma) {
                        if self.at_op(OpTok::RParen) {
                            break;
                        }
                        items.push(self.expr()?);
                    }
                    self.expect_op(OpTok::RParen, "`)`")?;
                    Ok(self.mk_expr(span, ExprKind::Tuple(items)))
                } else {
                    self.expect_op(OpTok::RParen, "`)`")?;
                    Ok(first)
                }
            }
            Tok::Op(OpTok::LBracket) => {
                self.bump();
                let mut items = Vec::new();
                while !self.at_op(OpTok::RBracket) {
                    items.push(self.expr()?);
                    if !self.eat_op(OpTok::Comma) {
                        break;
                    }
                }
                self.expect_op(OpTok::RBracket, "`]`")?;
                Ok(self.mk_expr(span, ExprKind::List(items)))
            }
            Tok::Op(OpTok::LBrace) => {
                self.bump();
                let mut pairs = Vec::new();
                while !self.at_op(OpTok::RBrace) {
                    let k = self.expr()?;
                    self.expect_op(OpTok::Colon, "`:` in dict literal")?;
                    let v = self.expr()?;
                    pairs.push((k, v));
                    if !self.eat_op(OpTok::Comma) {
                        break;
                    }
                }
                self.expect_op(OpTok::RBrace, "`}`")?;
                Ok(self.mk_expr(span, ExprKind::Dict(pairs)))
            }
            other => Err(self.err(format!("unexpected token {other:?} in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(src: &str) -> Module {
        parse(src).unwrap()
    }

    #[test]
    fn parses_assignment_and_expression_statement() {
        let m = p("x = 1\nf(x)\n");
        assert_eq!(m.body.len(), 2);
        assert!(matches!(m.body[0].kind, StmtKind::Assign { .. }));
        assert!(matches!(m.body[1].kind, StmtKind::Expr(_)));
    }

    #[test]
    fn operator_precedence_mul_binds_tighter_than_add() {
        let m = p("y = 1 + 2 * 3\n");
        if let StmtKind::Assign { value, .. } = &m.body[0].kind {
            if let ExprKind::Bin { op, right, .. } = &value.kind {
                assert_eq!(*op, BinOp::Add);
                assert!(matches!(right.kind, ExprKind::Bin { op: BinOp::Mul, .. }));
                return;
            }
        }
        panic!("unexpected shape");
    }

    #[test]
    fn power_is_right_associative() {
        let m = p("y = 2 ** 3 ** 2\n");
        if let StmtKind::Assign { value, .. } = &m.body[0].kind {
            if let ExprKind::Bin { op, right, .. } = &value.kind {
                assert_eq!(*op, BinOp::Pow);
                assert!(matches!(right.kind, ExprKind::Bin { op: BinOp::Pow, .. }));
                return;
            }
        }
        panic!("unexpected shape");
    }

    #[test]
    fn parses_if_elif_else() {
        let m = p("if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3\n");
        if let StmtKind::If { orelse, .. } = &m.body[0].kind {
            assert_eq!(orelse.len(), 1);
            assert!(matches!(orelse[0].kind, StmtKind::If { .. }));
        } else {
            panic!("expected if");
        }
    }

    #[test]
    fn parses_def_with_defaults() {
        let m = p("def f(a, b=2, c=3):\n    return a + b + c\n");
        if let StmtKind::Def {
            params, defaults, ..
        } = &m.body[0].kind
        {
            assert_eq!(params.len(), 3);
            assert_eq!(defaults.len(), 2);
        } else {
            panic!("expected def");
        }
    }

    #[test]
    fn rejects_default_before_positional() {
        assert!(parse("def f(a=1, b):\n    pass\n").is_err());
    }

    #[test]
    fn parses_try_except_finally() {
        let m = p(
            "try:\n    risky()\nexcept ValueError as e:\n    handle(e)\nexcept:\n    other()\nfinally:\n    cleanup()\n",
        );
        if let StmtKind::Try {
            handlers, finally, ..
        } = &m.body[0].kind
        {
            assert_eq!(handlers.len(), 2);
            assert_eq!(handlers[0].kind.as_deref(), Some("ValueError"));
            assert_eq!(handlers[0].bind.as_deref(), Some("e"));
            assert!(handlers[1].kind.is_none());
            assert_eq!(finally.len(), 1);
        } else {
            panic!("expected try");
        }
    }

    #[test]
    fn try_without_clauses_is_error() {
        assert!(parse("try:\n    x = 1\n").is_err());
    }

    #[test]
    fn parses_for_with_tuple_unpack() {
        let m = p("for k, v in d.items():\n    print(k, v)\n");
        if let StmtKind::For { vars, .. } = &m.body[0].kind {
            assert_eq!(vars, &vec!["k".to_string(), "v".to_string()]);
        } else {
            panic!("expected for");
        }
    }

    #[test]
    fn parses_method_calls_and_indexing() {
        let m = p("x = d.get(\"k\")[0]\n");
        if let StmtKind::Assign { value, .. } = &m.body[0].kind {
            assert!(matches!(value.kind, ExprKind::Index { .. }));
        } else {
            panic!("expected assign");
        }
    }

    #[test]
    fn parses_dict_and_list_literals() {
        let m = p("d = {\"a\": 1, \"b\": 2}\nl = [1, 2, 3]\nt = (1, 2)\n");
        assert_eq!(m.body.len(), 3);
    }

    #[test]
    fn parses_ternary() {
        let m = p("x = 1 if cond else 2\n");
        if let StmtKind::Assign { value, .. } = &m.body[0].kind {
            assert!(matches!(value.kind, ExprKind::Ternary { .. }));
        } else {
            panic!("expected assign");
        }
    }

    #[test]
    fn parses_not_in() {
        let m = p("x = a not in b\n");
        if let StmtKind::Assign { value, .. } = &m.body[0].kind {
            assert!(matches!(
                value.kind,
                ExprKind::Cmp {
                    op: CmpOp::NotIn,
                    ..
                }
            ));
        } else {
            panic!("expected assign");
        }
    }

    #[test]
    fn parses_single_line_suite() {
        let m = p("if x: y = 1\n");
        if let StmtKind::If { then, .. } = &m.body[0].kind {
            assert_eq!(then.len(), 1);
        } else {
            panic!("expected if");
        }
    }

    #[test]
    fn parses_tuple_assignment() {
        let m = p("a, b = f()\n");
        assert!(matches!(
            m.body[0].kind,
            StmtKind::Assign {
                target: Target::Tuple(_),
                ..
            }
        ));
    }

    #[test]
    fn parses_augmented_assignment() {
        let m = p("x += 1\nd[\"k\"] -= 2\n");
        assert!(matches!(
            m.body[0].kind,
            StmtKind::AugAssign { op: BinOp::Add, .. }
        ));
        assert!(matches!(
            m.body[1].kind,
            StmtKind::AugAssign {
                op: BinOp::Sub,
                target: Target::Index { .. },
                ..
            }
        ));
    }

    #[test]
    fn invalid_assignment_target_is_error() {
        assert!(parse("1 = x\n").is_err());
        assert!(parse("f() = x\n").is_err());
    }

    #[test]
    fn reports_error_position() {
        let err = parse("x = ,\n").unwrap_err();
        assert!(err.span().is_some());
    }

    #[test]
    fn global_statement() {
        let m = p("def f():\n    global a, b\n    a = 1\n");
        if let StmtKind::Def { body, .. } = &m.body[0].kind {
            assert!(matches!(&body[0].kind, StmtKind::Global(names) if names.len() == 2));
        } else {
            panic!("expected def");
        }
    }
}
