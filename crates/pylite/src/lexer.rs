//! Tokenizer for PyLite source text.
//!
//! Produces a flat token stream with explicit `Indent` / `Dedent` tokens,
//! mirroring CPython's tokenizer: leading whitespace of each logical line
//! is compared against an indentation stack. Blank lines and `#` comments
//! are skipped.

use crate::ast::Span;
use crate::error::{ErrorKind, PyliteError};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword-candidate name.
    Name(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (contents, unescaped).
    Str(String),
    /// A keyword (subset of Python's).
    Kw(Kw),
    /// Punctuation / operator.
    Op(OpTok),
    /// End of a logical line.
    Newline,
    /// Indentation increased.
    Indent,
    /// Indentation decreased.
    Dedent,
    /// End of input.
    Eof,
}

/// Keywords recognized by the lexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kw {
    Def,
    Return,
    If,
    Elif,
    Else,
    While,
    For,
    In,
    Break,
    Continue,
    Pass,
    Try,
    Except,
    Finally,
    Raise,
    Global,
    And,
    Or,
    Not,
    True,
    False,
    None,
    Assert,
    As,
}

impl Kw {
    fn from_str(s: &str) -> Option<Kw> {
        Some(match s {
            "def" => Kw::Def,
            "return" => Kw::Return,
            "if" => Kw::If,
            "elif" => Kw::Elif,
            "else" => Kw::Else,
            "while" => Kw::While,
            "for" => Kw::For,
            "in" => Kw::In,
            "break" => Kw::Break,
            "continue" => Kw::Continue,
            "pass" => Kw::Pass,
            "try" => Kw::Try,
            "except" => Kw::Except,
            "finally" => Kw::Finally,
            "raise" => Kw::Raise,
            "global" => Kw::Global,
            "and" => Kw::And,
            "or" => Kw::Or,
            "not" => Kw::Not,
            "True" => Kw::True,
            "False" => Kw::False,
            "None" => Kw::None,
            "assert" => Kw::Assert,
            "as" => Kw::As,
            _ => return None,
        })
    }
}

/// Operator and punctuation tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpTok {
    Plus,
    Minus,
    Star,
    StarStar,
    Slash,
    SlashSlash,
    Percent,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    Assign,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    SlashSlashEq,
    StarStarEq,
    PercentEq,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Colon,
    Dot,
}

/// A token paired with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub span: Span,
}

/// Tokenizes `source` into a vector of spanned tokens ending with [`Tok::Eof`].
///
/// # Errors
///
/// Returns a [`PyliteError`] with kind [`ErrorKind::Lex`] on malformed
/// input: inconsistent dedents, unterminated strings, bad numbers, or
/// characters outside the language.
pub fn tokenize(source: &str) -> Result<Vec<SpannedTok>, PyliteError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    indents: Vec<usize>,
    toks: Vec<SpannedTok>,
    paren_depth: usize,
    source: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            indents: vec![0],
            toks: Vec::new(),
            paren_depth: 0,
            source,
        }
    }

    fn err(&self, msg: impl Into<String>) -> PyliteError {
        PyliteError::new(ErrorKind::Lex, msg).with_span(Span::new(self.line, self.col))
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, tok: Tok, span: Span) {
        self.toks.push(SpannedTok { tok, span });
    }

    fn at_line_start(&self) -> bool {
        self.col == 1
    }

    fn run(mut self) -> Result<Vec<SpannedTok>, PyliteError> {
        let _ = self.source;
        loop {
            if self.at_line_start() && self.paren_depth == 0 && !self.handle_indentation()? {
                break;
            }
            match self.peek() {
                None => break,
                Some(c) => {
                    if c == '\n' {
                        let span = Span::new(self.line, self.col);
                        self.bump();
                        if self.paren_depth == 0 {
                            // Collapse consecutive newlines.
                            if !matches!(
                                self.toks.last().map(|t| &t.tok),
                                Some(Tok::Newline) | Some(Tok::Indent) | Some(Tok::Dedent) | None
                            ) {
                                self.push(Tok::Newline, span);
                            }
                        }
                    } else if c == '#' {
                        while let Some(c) = self.peek() {
                            if c == '\n' {
                                break;
                            }
                            self.bump();
                        }
                    } else if c == ' ' || c == '\t' || c == '\r' {
                        self.bump();
                    } else if c.is_ascii_digit() {
                        self.lex_number()?;
                    } else if c == '"' || c == '\'' {
                        self.lex_string(c)?;
                    } else if c.is_alphabetic() || c == '_' {
                        self.lex_name();
                    } else {
                        self.lex_op(c)?;
                    }
                }
            }
        }
        // Close the final line and any open indents.
        let span = Span::new(self.line, self.col);
        if !matches!(
            self.toks.last().map(|t| &t.tok),
            Some(Tok::Newline) | Some(Tok::Dedent) | None
        ) {
            self.push(Tok::Newline, span);
        }
        while self.indents.len() > 1 {
            self.indents.pop();
            self.push(Tok::Dedent, span);
        }
        self.push(Tok::Eof, span);
        Ok(self.toks)
    }

    /// Measures indentation of the upcoming line; emits Indent/Dedent.
    /// Returns `false` at end of input.
    fn handle_indentation(&mut self) -> Result<bool, PyliteError> {
        loop {
            let mut width = 0usize;
            let start_pos = self.pos;
            while let Some(c) = self.peek() {
                match c {
                    ' ' => {
                        width += 1;
                        self.bump();
                    }
                    '\t' => {
                        width += 8 - width % 8;
                        self.bump();
                    }
                    _ => break,
                }
            }
            match self.peek() {
                None => return Ok(false),
                Some('\n') => {
                    self.bump();
                    continue; // blank line: ignore indentation
                }
                Some('\r') => {
                    self.bump();
                    continue;
                }
                Some('#') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                    continue;
                }
                Some(_) => {
                    let span = Span::new(self.line, (width + 1) as u32);
                    let current = *self.indents.last().expect("indent stack never empty");
                    if width > current {
                        self.indents.push(width);
                        self.push(Tok::Indent, span);
                    } else if width < current {
                        while *self.indents.last().expect("indent stack never empty") > width {
                            self.indents.pop();
                            self.push(Tok::Dedent, span);
                        }
                        if *self.indents.last().expect("indent stack never empty") != width {
                            return Err(self.err(format!(
                                "inconsistent dedent to column {} at line {}",
                                width, self.line
                            )));
                        }
                    }
                    let _ = start_pos;
                    return Ok(true);
                }
            }
        }
    }

    fn lex_number(&mut self) -> Result<(), PyliteError> {
        let span = Span::new(self.line, self.col);
        let mut text = String::new();
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                if c != '_' {
                    text.push(c);
                }
                self.bump();
            } else if c == '.' && !is_float && self.peek2().is_some_and(|c2| c2.is_ascii_digit()) {
                is_float = true;
                text.push(c);
                self.bump();
            } else if (c == 'e' || c == 'E')
                && self
                    .peek2()
                    .is_some_and(|c2| c2.is_ascii_digit() || c2 == '-' || c2 == '+')
            {
                is_float = true;
                text.push(c);
                self.bump();
                if let Some(sign) = self.peek() {
                    if sign == '-' || sign == '+' {
                        text.push(sign);
                        self.bump();
                    }
                }
            } else {
                break;
            }
        }
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| self.err(format!("invalid float literal `{text}`")))?;
            self.push(Tok::Float(v), span);
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| self.err(format!("invalid integer literal `{text}`")))?;
            self.push(Tok::Int(v), span);
        }
        Ok(())
    }

    fn lex_string(&mut self, quote: char) -> Result<(), PyliteError> {
        let span = Span::new(self.line, self.col);
        self.bump(); // opening quote
        let mut text = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string literal")),
                Some('\n') => return Err(self.err("newline inside string literal")),
                Some('\\') => match self.bump() {
                    Some('n') => text.push('\n'),
                    Some('t') => text.push('\t'),
                    Some('r') => text.push('\r'),
                    Some('\\') => text.push('\\'),
                    Some('\'') => text.push('\''),
                    Some('"') => text.push('"'),
                    Some('0') => text.push('\0'),
                    Some(other) => {
                        text.push('\\');
                        text.push(other);
                    }
                    None => return Err(self.err("unterminated escape in string literal")),
                },
                Some(c) if c == quote => break,
                Some(c) => text.push(c),
            }
        }
        self.push(Tok::Str(text), span);
        Ok(())
    }

    fn lex_name(&mut self) {
        let span = Span::new(self.line, self.col);
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match Kw::from_str(&text) {
            Some(kw) => self.push(Tok::Kw(kw), span),
            None => self.push(Tok::Name(text), span),
        }
    }

    fn lex_op(&mut self, c: char) -> Result<(), PyliteError> {
        let span = Span::new(self.line, self.col);
        let two = |l: &Self| l.peek2();
        let op = match c {
            '+' => {
                if two(self) == Some('=') {
                    self.bump();
                    OpTok::PlusEq
                } else {
                    OpTok::Plus
                }
            }
            '-' => {
                if two(self) == Some('=') {
                    self.bump();
                    OpTok::MinusEq
                } else {
                    OpTok::Minus
                }
            }
            '*' => {
                if two(self) == Some('*') {
                    self.bump();
                    if two(self) == Some('=') {
                        self.bump();
                        OpTok::StarStarEq
                    } else {
                        OpTok::StarStar
                    }
                } else if two(self) == Some('=') {
                    self.bump();
                    OpTok::StarEq
                } else {
                    OpTok::Star
                }
            }
            '/' => {
                if two(self) == Some('/') {
                    self.bump();
                    if two(self) == Some('=') {
                        self.bump();
                        OpTok::SlashSlashEq
                    } else {
                        OpTok::SlashSlash
                    }
                } else if two(self) == Some('=') {
                    self.bump();
                    OpTok::SlashEq
                } else {
                    OpTok::Slash
                }
            }
            '%' => {
                if two(self) == Some('=') {
                    self.bump();
                    OpTok::PercentEq
                } else {
                    OpTok::Percent
                }
            }
            '=' => {
                if two(self) == Some('=') {
                    self.bump();
                    OpTok::EqEq
                } else {
                    OpTok::Assign
                }
            }
            '!' => {
                if two(self) == Some('=') {
                    self.bump();
                    OpTok::NotEq
                } else {
                    return Err(self.err("unexpected `!` (did you mean `!=`?)"));
                }
            }
            '<' => {
                if two(self) == Some('=') {
                    self.bump();
                    OpTok::Le
                } else {
                    OpTok::Lt
                }
            }
            '>' => {
                if two(self) == Some('=') {
                    self.bump();
                    OpTok::Ge
                } else {
                    OpTok::Gt
                }
            }
            '(' => {
                self.paren_depth += 1;
                OpTok::LParen
            }
            ')' => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                OpTok::RParen
            }
            '[' => {
                self.paren_depth += 1;
                OpTok::LBracket
            }
            ']' => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                OpTok::RBracket
            }
            '{' => {
                self.paren_depth += 1;
                OpTok::LBrace
            }
            '}' => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                OpTok::RBrace
            }
            ',' => OpTok::Comma,
            ':' => OpTok::Colon,
            '.' => OpTok::Dot,
            other => return Err(self.err(format!("unexpected character `{other}`"))),
        };
        self.bump();
        self.push(Tok::Op(op), span);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn tokenizes_simple_assignment() {
        assert_eq!(
            toks("x = 1\n"),
            vec![
                Tok::Name("x".into()),
                Tok::Op(OpTok::Assign),
                Tok::Int(1),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn indentation_produces_indent_dedent() {
        let t = toks("if x:\n    y = 1\nz = 2\n");
        assert!(t.contains(&Tok::Indent));
        assert!(t.contains(&Tok::Dedent));
    }

    #[test]
    fn nested_dedents_unwind_fully_at_eof() {
        let t = toks("if a:\n    if b:\n        c = 1\n");
        let dedents = t.iter().filter(|t| **t == Tok::Dedent).count();
        assert_eq!(dedents, 2);
    }

    #[test]
    fn blank_lines_and_comments_are_ignored() {
        let t = toks("x = 1\n\n# comment\n   # indented comment\ny = 2\n");
        let names: Vec<_> = t
            .iter()
            .filter_map(|t| match t {
                Tok::Name(n) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["x", "y"]);
    }

    #[test]
    fn newlines_inside_parens_are_ignored() {
        let t = toks("f(1,\n  2)\n");
        let newlines = t.iter().filter(|t| **t == Tok::Newline).count();
        assert_eq!(newlines, 1);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            toks("s = \"a\\nb\"\n")[2],
            Tok::Str("a\nb".into()),
            "escape sequence must be decoded"
        );
    }

    #[test]
    fn float_and_int_literals() {
        assert_eq!(toks("1.5\n")[0], Tok::Float(1.5));
        assert_eq!(toks("10\n")[0], Tok::Int(10));
        assert_eq!(toks("1e3\n")[0], Tok::Float(1000.0));
        assert_eq!(toks("2.5e-1\n")[0], Tok::Float(0.25));
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(toks("a // b\n")[1], Tok::Op(OpTok::SlashSlash));
        assert_eq!(toks("a ** b\n")[1], Tok::Op(OpTok::StarStar));
        assert_eq!(toks("a != b\n")[1], Tok::Op(OpTok::NotEq));
        assert_eq!(toks("a <= b\n")[1], Tok::Op(OpTok::Le));
        assert_eq!(toks("a += 1\n")[1], Tok::Op(OpTok::PlusEq));
        assert_eq!(toks("a //= 2\n")[1], Tok::Op(OpTok::SlashSlashEq));
        assert_eq!(toks("a **= 2\n")[1], Tok::Op(OpTok::StarStarEq));
    }

    #[test]
    fn inconsistent_dedent_is_an_error() {
        let src = "if a:\n        x = 1\n    y = 2\n";
        assert!(tokenize(src).is_err());
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(tokenize("s = \"abc\n").is_err());
    }

    #[test]
    fn keywords_are_recognized() {
        let t = toks("def f():\n    return None\n");
        assert_eq!(t[0], Tok::Kw(Kw::Def));
        assert!(t.contains(&Tok::Kw(Kw::Return)));
        assert!(t.contains(&Tok::Kw(Kw::None)));
    }

    #[test]
    fn bad_character_is_an_error() {
        assert!(tokenize("x = 1 @ 2\n").is_err());
    }
}
