//! Abstract syntax tree for the PyLite language.
//!
//! PyLite is a deliberately small Python dialect that serves as the
//! injection substrate for the whole workspace: fault operators mutate
//! these trees, the code generator synthesizes fragments of them, and the
//! [`crate::machine::Machine`] executes them.
//!
//! Every node carries a [`Span`] (source position) and a [`NodeId`]
//! (stable identity used by fault-injection site descriptors). Equality
//! (`PartialEq`) is *structural*: spans and node ids are ignored, so a
//! parse → print → parse round-trip compares equal.

use std::fmt;

/// A source position (1-based line, 1-based column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl Span {
    /// Creates a new span.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Stable identity of an AST node within one [`Module`].
///
/// Node ids are assigned in pre-order by the parser and re-assigned by
/// [`Module::renumber`] after mutation, so a `NodeId` uniquely names an
/// injection site inside a given module snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Binary arithmetic / container operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `//`
    FloorDiv,
    /// `%`
    Mod,
    /// `**`
    Pow,
}

impl BinOp {
    /// The surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::FloorDiv => "//",
            BinOp::Mod => "%",
            BinOp::Pow => "**",
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `in`
    In,
    /// `not in`
    NotIn,
}

impl CmpOp {
    /// The surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::In => "in",
            CmpOp::NotIn => "not in",
        }
    }

    /// The negated comparison, e.g. `==` becomes `!=`.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::In => CmpOp::NotIn,
            CmpOp::NotIn => CmpOp::In,
        }
    }

    /// A "close" neighbouring comparison used by off-by-one style fault
    /// operators, e.g. `<` becomes `<=`.
    pub fn relax(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Le,
            CmpOp::Le => CmpOp::Lt,
            CmpOp::Gt => CmpOp::Ge,
            CmpOp::Ge => CmpOp::Gt,
            other => other.negate(),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `not`
    Not,
}

/// Boolean connectives with short-circuit semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoolOp {
    /// `and`
    And,
    /// `or`
    Or,
}

/// Literal constants.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// `None`
    None,
    /// `True` / `False`
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
}

/// An expression node.
#[derive(Debug, Clone)]
pub struct Expr {
    /// Stable node identity (ignored by `PartialEq`).
    pub id: NodeId,
    /// Source position (ignored by `PartialEq`).
    pub span: Span,
    /// The expression payload.
    pub kind: ExprKind,
}

impl PartialEq for Expr {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
    }
}

/// Expression payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Literal constant.
    Const(Lit),
    /// Variable reference.
    Name(String),
    /// Binary arithmetic operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Short-circuit boolean operation.
    Bool {
        /// Connective.
        op: BoolOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Comparison (non-chained).
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Function call `f(a, b)`.
    Call {
        /// Callee expression.
        func: Box<Expr>,
        /// Positional arguments.
        args: Vec<Expr>,
    },
    /// Method call `obj.name(a, b)`.
    MethodCall {
        /// Receiver.
        obj: Box<Expr>,
        /// Method name.
        name: String,
        /// Positional arguments.
        args: Vec<Expr>,
    },
    /// Subscript `obj[idx]`.
    Index {
        /// Container.
        obj: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// List display `[a, b]`.
    List(Vec<Expr>),
    /// Tuple display `(a, b)`.
    Tuple(Vec<Expr>),
    /// Dict display `{k: v}`.
    Dict(Vec<(Expr, Expr)>),
    /// Conditional expression `a if cond else b`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when the condition is truthy.
        then: Box<Expr>,
        /// Value when the condition is falsy.
        orelse: Box<Expr>,
    },
}

/// Assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// Simple name binding `x = ...`.
    Name(String),
    /// Subscript store `obj[idx] = ...`.
    Index {
        /// Container expression.
        obj: Expr,
        /// Index expression.
        index: Expr,
    },
    /// Tuple unpacking `a, b = ...`.
    Tuple(Vec<String>),
}

/// One `except` clause of a `try` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Handler {
    /// The exception kind to match (`None` = bare `except`, matches all).
    pub kind: Option<String>,
    /// Optional `as name` binding.
    pub bind: Option<String>,
    /// Handler body.
    pub body: Vec<Stmt>,
}

/// A statement node.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// Stable node identity (ignored by `PartialEq`).
    pub id: NodeId,
    /// Source position (ignored by `PartialEq`).
    pub span: Span,
    /// The statement payload.
    pub kind: StmtKind,
}

impl PartialEq for Stmt {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
    }
}

/// Statement payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Expression statement (value discarded).
    Expr(Expr),
    /// Assignment `target = value`.
    Assign {
        /// Assignment target.
        target: Target,
        /// Assigned value.
        value: Expr,
    },
    /// Augmented assignment `target op= value`.
    AugAssign {
        /// Target (name or subscript).
        target: Target,
        /// Operator.
        op: BinOp,
        /// Right-hand side.
        value: Expr,
    },
    /// `if` / `elif` / `else` chain (elifs are desugared into nested ifs).
    If {
        /// Condition.
        cond: Expr,
        /// True branch.
        then: Vec<Stmt>,
        /// False branch (empty when absent).
        orelse: Vec<Stmt>,
    },
    /// `while` loop.
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for var[, var2] in iter` loop.
    For {
        /// Loop variables (tuple unpacking when more than one).
        vars: Vec<String>,
        /// Iterable expression.
        iter: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Function definition.
    Def {
        /// Function name.
        name: String,
        /// Parameter names.
        params: Vec<String>,
        /// Default values for the trailing parameters.
        defaults: Vec<Expr>,
        /// Function body.
        body: Vec<Stmt>,
    },
    /// `return [expr]`.
    Return(Option<Expr>),
    /// `raise [expr]` (bare raise re-raises the active exception).
    Raise(Option<Expr>),
    /// `try` / `except` / `finally`.
    Try {
        /// Guarded body.
        body: Vec<Stmt>,
        /// Except clauses, tried in order.
        handlers: Vec<Handler>,
        /// Optional finally block.
        finally: Vec<Stmt>,
    },
    /// `global name[, name]` declaration.
    Global(Vec<String>),
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// `pass`.
    Pass,
    /// `assert cond[, msg]`.
    Assert {
        /// Asserted condition.
        cond: Expr,
        /// Optional message expression.
        msg: Option<Expr>,
    },
}

/// A parsed PyLite source file: a sequence of top-level statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Module { body: Vec::new() }
    }

    /// Re-assigns node ids in pre-order, returning the number of nodes.
    ///
    /// Fault operators splice freshly-built subtrees whose ids are zeroed;
    /// renumbering restores the invariant that ids are unique and dense.
    pub fn renumber(&mut self) -> u32 {
        let mut next = 0u32;
        for stmt in &mut self.body {
            renumber_stmt(stmt, &mut next);
        }
        next
    }

    /// Iterates over all statements (depth-first, pre-order), invoking
    /// `f` for each one.
    pub fn walk_stmts<'a>(&'a self, f: &mut dyn FnMut(&'a Stmt)) {
        for stmt in &self.body {
            walk_stmt(stmt, f);
        }
    }

    /// Mutable depth-first statement walk.
    pub fn walk_stmts_mut(&mut self, f: &mut dyn FnMut(&mut Stmt)) {
        for stmt in &mut self.body {
            walk_stmt_mut(stmt, f);
        }
    }

    /// Total number of statements (all nesting levels).
    pub fn stmt_count(&self) -> usize {
        let mut n = 0;
        self.walk_stmts(&mut |_| n += 1);
        n
    }

    /// Finds the top-level function definition with the given name.
    pub fn find_def(&self, name: &str) -> Option<&Stmt> {
        self.body.iter().find(|s| match &s.kind {
            StmtKind::Def { name: n, .. } => n == name,
            _ => false,
        })
    }

    /// Mutable variant of [`Module::find_def`].
    pub fn find_def_mut(&mut self, name: &str) -> Option<&mut Stmt> {
        self.body.iter_mut().find(|s| match &s.kind {
            StmtKind::Def { name: n, .. } => n == name,
            _ => false,
        })
    }

    /// Names of all top-level function definitions, in source order.
    pub fn def_names(&self) -> Vec<String> {
        self.body
            .iter()
            .filter_map(|s| match &s.kind {
                StmtKind::Def { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect()
    }
}

/// Child statement blocks of a statement, if any.
pub fn stmt_blocks(stmt: &Stmt) -> Vec<&Vec<Stmt>> {
    match &stmt.kind {
        StmtKind::If { then, orelse, .. } => vec![then, orelse],
        StmtKind::While { body, .. } | StmtKind::For { body, .. } | StmtKind::Def { body, .. } => {
            vec![body]
        }
        StmtKind::Try {
            body,
            handlers,
            finally,
        } => {
            let mut v = vec![body];
            for h in handlers {
                v.push(&h.body);
            }
            v.push(finally);
            v
        }
        _ => Vec::new(),
    }
}

fn walk_stmt<'a>(stmt: &'a Stmt, f: &mut dyn FnMut(&'a Stmt)) {
    f(stmt);
    for block in stmt_blocks(stmt) {
        for s in block {
            walk_stmt(s, f);
        }
    }
}

fn walk_stmt_mut(stmt: &mut Stmt, f: &mut dyn FnMut(&mut Stmt)) {
    f(stmt);
    match &mut stmt.kind {
        StmtKind::If { then, orelse, .. } => {
            for s in then {
                walk_stmt_mut(s, f);
            }
            for s in orelse {
                walk_stmt_mut(s, f);
            }
        }
        StmtKind::While { body, .. } | StmtKind::For { body, .. } | StmtKind::Def { body, .. } => {
            for s in body {
                walk_stmt_mut(s, f);
            }
        }
        StmtKind::Try {
            body,
            handlers,
            finally,
        } => {
            for s in body {
                walk_stmt_mut(s, f);
            }
            for h in handlers {
                for s in &mut h.body {
                    walk_stmt_mut(s, f);
                }
            }
            for s in finally {
                walk_stmt_mut(s, f);
            }
        }
        _ => {}
    }
}

fn renumber_stmt(stmt: &mut Stmt, next: &mut u32) {
    stmt.id = NodeId(*next);
    *next += 1;
    match &mut stmt.kind {
        StmtKind::Expr(e) => renumber_expr(e, next),
        StmtKind::Assign { target, value } => {
            renumber_target(target, next);
            renumber_expr(value, next);
        }
        StmtKind::AugAssign { target, value, .. } => {
            renumber_target(target, next);
            renumber_expr(value, next);
        }
        StmtKind::If { cond, then, orelse } => {
            renumber_expr(cond, next);
            for s in then {
                renumber_stmt(s, next);
            }
            for s in orelse {
                renumber_stmt(s, next);
            }
        }
        StmtKind::While { cond, body } => {
            renumber_expr(cond, next);
            for s in body {
                renumber_stmt(s, next);
            }
        }
        StmtKind::For { iter, body, .. } => {
            renumber_expr(iter, next);
            for s in body {
                renumber_stmt(s, next);
            }
        }
        StmtKind::Def { defaults, body, .. } => {
            for d in defaults {
                renumber_expr(d, next);
            }
            for s in body {
                renumber_stmt(s, next);
            }
        }
        StmtKind::Return(e) | StmtKind::Raise(e) => {
            if let Some(e) = e {
                renumber_expr(e, next);
            }
        }
        StmtKind::Try {
            body,
            handlers,
            finally,
        } => {
            for s in body {
                renumber_stmt(s, next);
            }
            for h in handlers {
                for s in &mut h.body {
                    renumber_stmt(s, next);
                }
            }
            for s in finally {
                renumber_stmt(s, next);
            }
        }
        StmtKind::Assert { cond, msg } => {
            renumber_expr(cond, next);
            if let Some(m) = msg {
                renumber_expr(m, next);
            }
        }
        StmtKind::Global(_) | StmtKind::Break | StmtKind::Continue | StmtKind::Pass => {}
    }
}

fn renumber_target(target: &mut Target, next: &mut u32) {
    if let Target::Index { obj, index } = target {
        renumber_expr(obj, next);
        renumber_expr(index, next);
    }
}

fn renumber_expr(expr: &mut Expr, next: &mut u32) {
    expr.id = NodeId(*next);
    *next += 1;
    match &mut expr.kind {
        ExprKind::Const(_) | ExprKind::Name(_) => {}
        ExprKind::Bin { left, right, .. }
        | ExprKind::Bool { left, right, .. }
        | ExprKind::Cmp { left, right, .. } => {
            renumber_expr(left, next);
            renumber_expr(right, next);
        }
        ExprKind::Unary { operand, .. } => renumber_expr(operand, next),
        ExprKind::Call { func, args } => {
            renumber_expr(func, next);
            for a in args {
                renumber_expr(a, next);
            }
        }
        ExprKind::MethodCall { obj, args, .. } => {
            renumber_expr(obj, next);
            for a in args {
                renumber_expr(a, next);
            }
        }
        ExprKind::Index { obj, index } => {
            renumber_expr(obj, next);
            renumber_expr(index, next);
        }
        ExprKind::List(items) | ExprKind::Tuple(items) => {
            for e in items {
                renumber_expr(e, next);
            }
        }
        ExprKind::Dict(pairs) => {
            for (k, v) in pairs {
                renumber_expr(k, next);
                renumber_expr(v, next);
            }
        }
        ExprKind::Ternary { cond, then, orelse } => {
            renumber_expr(cond, next);
            renumber_expr(then, next);
            renumber_expr(orelse, next);
        }
    }
}

/// Convenience constructors for synthesizing AST fragments programmatically
/// (used by fault operators and the neural code generator). All nodes are
/// created with zeroed ids/spans; call [`Module::renumber`] after splicing.
pub mod build {
    use super::*;

    fn e(kind: ExprKind) -> Expr {
        Expr {
            id: NodeId(0),
            span: Span::default(),
            kind,
        }
    }

    fn s(kind: StmtKind) -> Stmt {
        Stmt {
            id: NodeId(0),
            span: Span::default(),
            kind,
        }
    }

    /// `None` literal.
    pub fn none() -> Expr {
        e(ExprKind::Const(Lit::None))
    }

    /// Boolean literal.
    pub fn bool_(b: bool) -> Expr {
        e(ExprKind::Const(Lit::Bool(b)))
    }

    /// Integer literal.
    pub fn int(v: i64) -> Expr {
        e(ExprKind::Const(Lit::Int(v)))
    }

    /// Float literal.
    pub fn float(v: f64) -> Expr {
        e(ExprKind::Const(Lit::Float(v)))
    }

    /// String literal.
    pub fn str_(v: &str) -> Expr {
        e(ExprKind::Const(Lit::Str(v.to_string())))
    }

    /// Name reference.
    pub fn name(n: &str) -> Expr {
        e(ExprKind::Name(n.to_string()))
    }

    /// Binary operation.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        e(ExprKind::Bin {
            op,
            left: Box::new(l),
            right: Box::new(r),
        })
    }

    /// Comparison.
    pub fn cmp(op: CmpOp, l: Expr, r: Expr) -> Expr {
        e(ExprKind::Cmp {
            op,
            left: Box::new(l),
            right: Box::new(r),
        })
    }

    /// Unary not.
    pub fn not(operand: Expr) -> Expr {
        e(ExprKind::Unary {
            op: UnaryOp::Not,
            operand: Box::new(operand),
        })
    }

    /// Function call by name.
    pub fn call(func: &str, args: Vec<Expr>) -> Expr {
        e(ExprKind::Call {
            func: Box::new(name(func)),
            args,
        })
    }

    /// Method call.
    pub fn method(obj: Expr, m: &str, args: Vec<Expr>) -> Expr {
        e(ExprKind::MethodCall {
            obj: Box::new(obj),
            name: m.to_string(),
            args,
        })
    }

    /// Subscript.
    pub fn index(obj: Expr, idx: Expr) -> Expr {
        e(ExprKind::Index {
            obj: Box::new(obj),
            index: Box::new(idx),
        })
    }

    /// Expression statement.
    pub fn expr_stmt(ex: Expr) -> Stmt {
        s(StmtKind::Expr(ex))
    }

    /// Assignment to a name.
    pub fn assign(target: &str, value: Expr) -> Stmt {
        s(StmtKind::Assign {
            target: Target::Name(target.to_string()),
            value,
        })
    }

    /// Augmented assignment to a name.
    pub fn aug_assign(target: &str, op: BinOp, value: Expr) -> Stmt {
        s(StmtKind::AugAssign {
            target: Target::Name(target.to_string()),
            op,
            value,
        })
    }

    /// `if` statement.
    pub fn if_(cond: Expr, then: Vec<Stmt>, orelse: Vec<Stmt>) -> Stmt {
        s(StmtKind::If { cond, then, orelse })
    }

    /// `while` statement.
    pub fn while_(cond: Expr, body: Vec<Stmt>) -> Stmt {
        s(StmtKind::While { cond, body })
    }

    /// `for` statement.
    pub fn for_(vars: Vec<&str>, iter: Expr, body: Vec<Stmt>) -> Stmt {
        s(StmtKind::For {
            vars: vars.into_iter().map(|v| v.to_string()).collect(),
            iter,
            body,
        })
    }

    /// Function definition.
    pub fn def(name: &str, params: Vec<&str>, body: Vec<Stmt>) -> Stmt {
        s(StmtKind::Def {
            name: name.to_string(),
            params: params.into_iter().map(|p| p.to_string()).collect(),
            defaults: Vec::new(),
            body,
        })
    }

    /// `return` statement.
    pub fn return_(value: Option<Expr>) -> Stmt {
        s(StmtKind::Return(value))
    }

    /// `raise Kind("msg")` statement.
    pub fn raise(kind: &str, msg: &str) -> Stmt {
        s(StmtKind::Raise(Some(call(kind, vec![str_(msg)]))))
    }

    /// `try`/`except` statement.
    pub fn try_(body: Vec<Stmt>, handlers: Vec<Handler>, finally: Vec<Stmt>) -> Stmt {
        s(StmtKind::Try {
            body,
            handlers,
            finally,
        })
    }

    /// An `except` clause.
    pub fn handler(kind: Option<&str>, bind: Option<&str>, body: Vec<Stmt>) -> Handler {
        Handler {
            kind: kind.map(|k| k.to_string()),
            bind: bind.map(|b| b.to_string()),
            body,
        }
    }

    /// `pass` statement.
    pub fn pass() -> Stmt {
        s(StmtKind::Pass)
    }

    /// `global` declaration.
    pub fn global(names: Vec<&str>) -> Stmt {
        s(StmtKind::Global(
            names.into_iter().map(|n| n.to_string()).collect(),
        ))
    }

    /// `print(...)` call statement.
    pub fn print(args: Vec<Expr>) -> Stmt {
        expr_stmt(call("print", args))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_equality_ignores_ids_and_spans() {
        let mut a = build::assign("x", build::int(1));
        let mut b = build::assign("x", build::int(1));
        a.id = NodeId(5);
        a.span = Span::new(10, 3);
        b.id = NodeId(99);
        assert_eq!(a, b);
    }

    #[test]
    fn structural_inequality_on_kind() {
        let a = build::assign("x", build::int(1));
        let b = build::assign("x", build::int(2));
        assert_ne!(a, b);
    }

    #[test]
    fn renumber_assigns_dense_preorder_ids() {
        let mut m = Module {
            body: vec![
                build::def("f", vec!["a"], vec![build::return_(Some(build::name("a")))]),
                build::expr_stmt(build::call("f", vec![build::int(1)])),
            ],
        };
        let n = m.renumber();
        assert!(n >= 5);
        let mut seen = std::collections::BTreeSet::new();
        m.walk_stmts(&mut |s| {
            assert!(seen.insert(s.id), "duplicate id {:?}", s.id);
        });
    }

    #[test]
    fn walk_visits_nested_statements() {
        let m = Module {
            body: vec![build::if_(
                build::bool_(true),
                vec![build::pass(), build::pass()],
                vec![build::pass()],
            )],
        };
        assert_eq!(m.stmt_count(), 4);
    }

    #[test]
    fn find_def_locates_function() {
        let m = Module {
            body: vec![build::def("g", vec![], vec![build::pass()])],
        };
        assert!(m.find_def("g").is_some());
        assert!(m.find_def("h").is_none());
        assert_eq!(m.def_names(), vec!["g".to_string()]);
    }

    #[test]
    fn cmp_op_negate_roundtrip() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::In,
            CmpOp::NotIn,
        ] {
            assert_eq!(op.negate().negate(), op);
        }
    }
}
