//! Ignored-by-default profiling harness: batched vs. per-example LM
//! training across synthetic vocabulary sizes, with a component split
//! (forward-only, gradients-only). Run with:
//! `cargo test --release -p nfi-bench --test microprof -- --ignored --nocapture`

use nfi_neural::lm::{LmConfig, NgramLm, BOS, DEFAULT_BATCH};
use std::time::Instant;

#[test]
#[ignore = "profiling harness, run manually with --nocapture"]
fn profile_vocab_scaling() {
    for vocab in [200usize, 800] {
        let n_tok = 8000usize;
        let seq: Vec<String> = (0..n_tok).map(|i| format!("tok{}", i % vocab)).collect();
        let corpus = vec![seq];
        let mut lm = NgramLm::new(&corpus, LmConfig::default());
        let ids = lm.encode_corpus(&corpus);

        let t = Instant::now();
        lm.train_epoch(&corpus, 0.05);
        let per_ex = t.elapsed().as_secs_f64();

        let t = Instant::now();
        lm.train_epoch_batched(&ids, 0.05, DEFAULT_BATCH);
        let batched = t.elapsed().as_secs_f64();

        let t = Instant::now();
        lm.nll_ids(&ids);
        let fwd = t.elapsed().as_secs_f64();

        let c = LmConfig::default().context;
        let mut ctxs: Vec<u32> = Vec::new();
        let mut targets: Vec<u32> = Vec::new();
        let mut ctx = vec![BOS as u32; c];
        for &tt in &ids[0] {
            ctxs.extend_from_slice(&ctx);
            targets.push(tt);
            ctx.remove(0);
            ctx.push(tt);
        }
        let t = Instant::now();
        for (cc, tc) in ctxs
            .chunks(DEFAULT_BATCH * c)
            .zip(targets.chunks(DEFAULT_BATCH))
        {
            std::hint::black_box(lm.batch_gradients(cc, tc));
        }
        let grads_only = t.elapsed().as_secs_f64();

        println!(
            "V={vocab}: per-ex {:.1}ms, batched {:.1}ms ({:.2}x), fwd(nll) {:.1}ms, grads-only(alloc) {:.1}ms",
            per_ex * 1e3,
            batched * 1e3,
            per_ex / batched,
            fwd * 1e3,
            grads_only * 1e3
        );
    }
}
