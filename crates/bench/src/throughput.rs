//! Throughput benchmarks for the parallel execution engine and the
//! batched neural kernels — the drivers behind `scripts/bench.sh` and
//! the `nfi bench` subcommand (`BENCH_e7.json`).
//!
//! Six measurements:
//!
//! * **campaign**: plans/sec applying + differentially testing every
//!   plan of the full corpus-wide campaign, sequential vs. the parallel
//!   engine (same [`CampaignRunReport`]s are asserted equal);
//! * **lm**: tokens/sec of LM training, per-example SGD kernels vs. the
//!   batched GEMM kernels, both at `threads = 1` (batching-only gain);
//! * **e7**: end-to-end pipeline scenarios/sec, sequential vs. parallel;
//! * **vm**: raw VM instructions/sec over precompiled corpus suites,
//!   plus cold-vs-code-warm campaign passes isolating the
//!   compiled-code cache (the memo caches are cleared on both sides);
//! * **store**: incremental-store units/sec, cold vs. warm replay;
//! * **serve**: requests/sec and end-to-end units/sec through the
//!   `nfi serve` daemon, cold vs. store-warm.

use crate::experiments::{run_e7_with, E7Row};
use nfi_core::cache::{CacheStats, CodeCache, MutantCache};
use nfi_core::exec::{self, CampaignRunReport, ExecConfig};
use nfi_inject::harness::run_suite_in;
use nfi_inject::memo::{ExperimentCache, SuiteCache};
use nfi_llm::LlmConfig;
use nfi_neural::lm::{code_tokens, LmConfig, NgramLm, DEFAULT_BATCH};
use nfi_pylite::Machine;
use nfi_sfi::Campaign;
use std::time::Instant;

/// Campaign throughput: sequential vs. parallel plans/sec, plus the
/// content-addressed-cache gain on a repeated (warm) run.
#[derive(Debug, Clone)]
pub struct CampaignBench {
    /// Worker threads used for the parallel run.
    pub threads: usize,
    /// Total plans executed (per engine run).
    pub plans: usize,
    /// Sequential wall time (seconds): caches cleared first, so this is
    /// the cold run that fills them.
    pub sequential_secs: f64,
    /// Parallel wall time (seconds), caches bypassed — a pure engine
    /// comparison against the sequential run.
    pub parallel_secs: f64,
    /// Wall time of a repeated run with the caches warm (seconds) —
    /// what a rerun of the same E-driver pays.
    pub warm_secs: f64,
    /// Mutant-cache counters over the cold + warm runs.
    pub mutant_cache: CacheStats,
    /// Experiment-memo counters over the cold + warm runs.
    pub experiment_cache: CacheStats,
    /// Whether all three runs produced identical aggregate reports.
    pub reports_identical: bool,
}

impl CampaignBench {
    /// Sequential plans/sec.
    pub fn sequential_plans_per_s(&self) -> f64 {
        self.plans as f64 / self.sequential_secs.max(1e-9)
    }

    /// Parallel plans/sec.
    pub fn parallel_plans_per_s(&self) -> f64 {
        self.plans as f64 / self.parallel_secs.max(1e-9)
    }

    /// Warm (cache-hit) plans/sec on the repeated run.
    pub fn warm_plans_per_s(&self) -> f64 {
        self.plans as f64 / self.warm_secs.max(1e-9)
    }

    /// Parallel speedup over sequential.
    pub fn speedup(&self) -> f64 {
        self.sequential_secs / self.parallel_secs.max(1e-9)
    }

    /// Warm-rerun speedup over the cold sequential run.
    pub fn warm_speedup(&self) -> f64 {
        self.sequential_secs / self.warm_secs.max(1e-9)
    }
}

/// Runs the full campaign of every corpus program under both engines,
/// then once more with warm caches. `plan_cap` bounds plans per
/// program (0 = unlimited).
///
/// Three runs, three measurements:
///
/// 1. **sequential, cold** — caches cleared, then filled by this run;
/// 2. **parallel, uncached** — the engine comparison stays honest (no
///    replaying the sequential run's results);
/// 3. **warm rerun** — same work again through the caches, which is
///    exactly what repeated E-driver runs and sibling shards see.
pub fn bench_campaign(plan_cap: usize, threads: usize) -> CampaignBench {
    let machine = crate::experiments::experiment_machine();
    let campaigns: Vec<Campaign> = nfi_corpus::all()
        .iter()
        .map(|p| Campaign::full(&p.module().expect("corpus parses")))
        .collect();
    let plan_count = |c: &Campaign| {
        if plan_cap == 0 {
            c.plans().len()
        } else {
            c.plans().len().min(plan_cap)
        }
    };

    let run_all = |config: ExecConfig| -> (Vec<CampaignRunReport>, f64) {
        let started = Instant::now();
        let reports = campaigns
            .iter()
            .map(|c| {
                let n = plan_count(c);
                exec::run_campaign_plans(c, &c.plans()[..n], &machine, config).report
            })
            .collect();
        (reports, started.elapsed().as_secs_f64())
    };

    MutantCache::global().clear();
    ExperimentCache::global().clear();
    SuiteCache::global().clear();
    let (seq_reports, sequential_secs) = run_all(ExecConfig::sequential());
    let (par_reports, parallel_secs) = run_all(ExecConfig::with_threads(threads).cached(false));
    let (warm_reports, warm_secs) = run_all(ExecConfig::with_threads(threads));

    CampaignBench {
        threads,
        plans: campaigns.iter().map(plan_count).sum(),
        sequential_secs,
        parallel_secs,
        warm_secs,
        mutant_cache: MutantCache::global().stats(),
        experiment_cache: ExperimentCache::global().stats(),
        reports_identical: seq_reports == par_reports && seq_reports == warm_reports,
    }
}

/// LM training throughput: per-example kernels vs. batched GEMM kernels.
#[derive(Debug, Clone)]
pub struct LmBench {
    /// Tokens per epoch.
    pub tokens: usize,
    /// Epochs trained per path.
    pub epochs: usize,
    /// Per-example path wall time (seconds).
    pub per_example_secs: f64,
    /// Batched path wall time (seconds).
    pub batched_secs: f64,
    /// Final epoch NLL of the per-example path.
    pub per_example_nll: f64,
    /// Final epoch NLL of the batched path.
    pub batched_nll: f64,
}

impl LmBench {
    /// Per-example tokens/sec.
    pub fn per_example_tokens_per_s(&self) -> f64 {
        (self.tokens * self.epochs) as f64 / self.per_example_secs.max(1e-9)
    }

    /// Batched tokens/sec.
    pub fn batched_tokens_per_s(&self) -> f64 {
        (self.tokens * self.epochs) as f64 / self.batched_secs.max(1e-9)
    }

    /// Batched speedup over per-example (single-threaded both sides).
    pub fn speedup(&self) -> f64 {
        self.per_example_secs / self.batched_secs.max(1e-9)
    }
}

/// Trains the token LM on an SFI-generated snippet corpus with both
/// kernel paths (identical init, identical data, `threads = 1`).
pub fn bench_lm(per_program_cap: usize, epochs: usize) -> LmBench {
    let ds = nfi_dataset::generate(
        nfi_corpus::all(),
        &nfi_dataset::DatasetConfig {
            per_program_cap,
            seed: 7,
        },
    );
    let sequences: Vec<Vec<String>> = ds
        .records
        .iter()
        .map(|r| code_tokens(&r.code_after))
        .collect();
    let tokens: usize = sequences.iter().map(Vec::len).sum();
    let config = LmConfig::default();

    let mut per_example_lm = NgramLm::new(&sequences, config.clone());
    let started = Instant::now();
    let mut per_example_nll = 0.0;
    for _ in 0..epochs {
        per_example_nll = per_example_lm.train_epoch(&sequences, LlmConfig::default().lm_lr);
    }
    let per_example_secs = started.elapsed().as_secs_f64();

    let mut batched_lm = NgramLm::new(&sequences, config);
    let started = Instant::now();
    let ids = batched_lm.encode_corpus(&sequences);
    let mut batched_nll = 0.0;
    for _ in 0..epochs {
        batched_nll =
            batched_lm.train_epoch_batched(&ids, LlmConfig::default().lm_lr, DEFAULT_BATCH);
    }
    let batched_secs = started.elapsed().as_secs_f64();

    LmBench {
        tokens,
        epochs,
        per_example_secs,
        batched_secs,
        per_example_nll,
        batched_nll,
    }
}

/// Incremental-store throughput: a cold orchestrated run (fills the
/// store) vs. a warm one (replays everything), with the store's
/// replay/execute counts — the numbers behind `nfi campaign run
/// --state-dir`.
#[derive(Debug, Clone)]
pub struct StoreBench {
    /// Programs orchestrated.
    pub programs: usize,
    /// Total campaign units across them.
    pub units: usize,
    /// Cold run wall time (seconds): empty store, everything executes.
    pub cold_secs: f64,
    /// Warm run wall time (seconds): everything replays from disk.
    pub warm_secs: f64,
    /// Units executed on the cold run.
    pub cold_executed: usize,
    /// Units replayed from the store on the warm run.
    pub warm_replayed: usize,
    /// Units executed on the warm run (0 when sources are unchanged).
    pub warm_executed: usize,
    /// Whether every warm document was byte-identical to its cold one.
    pub documents_identical: bool,
    /// Edit-round (`store_edit`) wall time: every program gets a
    /// one-line top-level edit and re-runs against the warm store —
    /// function units anchor-replay, top-level units execute.
    pub edit_secs: f64,
    /// Total units across the edited programs.
    pub edit_units: usize,
    /// Units replayed on the edit round (all via the anchor fallback).
    pub edit_replayed: usize,
    /// Of `edit_replayed`, units recovered by anchor (the whole
    /// replay set — recorded separately as a consistency check).
    pub edit_anchor_replayed: usize,
    /// Units executed on the edit round (the changed top-level group).
    pub edit_executed: usize,
    /// Whether every edit-round document was byte-identical to a cold
    /// from-scratch run of the edited sources.
    pub edit_documents_identical: bool,
}

impl StoreBench {
    /// Cold units/sec.
    pub fn cold_units_per_s(&self) -> f64 {
        self.units as f64 / self.cold_secs.max(1e-9)
    }

    /// Warm (replayed-from-disk) units/sec.
    pub fn warm_units_per_s(&self) -> f64 {
        self.units as f64 / self.warm_secs.max(1e-9)
    }

    /// Warm speedup over cold.
    pub fn warm_speedup(&self) -> f64 {
        self.cold_secs / self.warm_secs.max(1e-9)
    }

    /// Store hit fraction of the warm run in `[0, 1]`.
    pub fn warm_hit_rate(&self) -> f64 {
        if self.units == 0 {
            0.0
        } else {
            self.warm_replayed as f64 / self.units as f64
        }
    }

    /// One-line-edit warm units/sec (the `store_edit` scenario).
    pub fn edit_units_per_s(&self) -> f64 {
        self.edit_units as f64 / self.edit_secs.max(1e-9)
    }

    /// Edit-round speedup over a cold run (per unit).
    pub fn edit_speedup(&self) -> f64 {
        (self.cold_secs / self.units.max(1) as f64)
            / (self.edit_secs / self.edit_units.max(1) as f64).max(1e-9)
    }

    /// Anchor hit fraction of the edit round in `[0, 1]`.
    pub fn edit_hit_rate(&self) -> f64 {
        if self.edit_units == 0 {
            0.0
        } else {
            self.edit_replayed as f64 / self.edit_units as f64
        }
    }
}

/// Orchestrates the first `max_programs` corpus programs (0 = all)
/// into a throwaway state dir twice — cold, then warm — and reports
/// the incremental-store counters. The in-memory caches are cleared
/// between runs so the warm numbers measure the *disk* store alone.
pub fn bench_store(max_programs: usize) -> StoreBench {
    let dir = std::env::temp_dir().join(format!("nfi-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let orch = nfi_core::Orchestrator::new(&dir).expect("store bench state dir");
    let programs: Vec<_> = nfi_corpus::all()
        .iter()
        .take(if max_programs == 0 {
            usize::MAX
        } else {
            max_programs
        })
        .collect();

    let run_all = || -> (usize, usize, usize, Vec<String>, f64) {
        MutantCache::global().clear();
        ExperimentCache::global().clear();
        SuiteCache::global().clear();
        let started = Instant::now();
        let (mut units, mut replayed, mut executed) = (0, 0, 0);
        let mut docs = Vec::new();
        for p in &programs {
            let r = orch.run_program(p.name, p.source).expect("store bench run");
            units += r.units;
            replayed += r.replayed;
            executed += r.executed;
            docs.push(r.run.encode());
        }
        (
            units,
            replayed,
            executed,
            docs,
            started.elapsed().as_secs_f64(),
        )
    };

    let (units, _, cold_executed, cold_docs, cold_secs) = run_all();
    let (_, warm_replayed, warm_executed, warm_docs, warm_secs) = run_all();

    // The store_edit scenario: one appended top-level line per program
    // (the canonical "warm edit"). Function units anchor-replay from
    // the previous segments; the changed top-level group executes.
    let edited: Vec<(String, String)> = programs
        .iter()
        .map(|p| {
            (
                p.name.to_string(),
                format!("{}bench_edit_marker = 1\n", p.source),
            )
        })
        .collect();
    let run_edited =
        |o: &nfi_core::Orchestrator| -> (usize, usize, usize, usize, Vec<String>, f64) {
            MutantCache::global().clear();
            ExperimentCache::global().clear();
            SuiteCache::global().clear();
            let started = Instant::now();
            let (mut units, mut replayed, mut anchored, mut executed) = (0, 0, 0, 0);
            let mut docs = Vec::new();
            for (name, source) in &edited {
                let r = o.run_program(name, source).expect("store bench edit run");
                units += r.units;
                replayed += r.replayed;
                anchored += r.anchor_replayed;
                executed += r.executed;
                docs.push(r.run.encode());
            }
            (
                units,
                replayed,
                anchored,
                executed,
                docs,
                started.elapsed().as_secs_f64(),
            )
        };
    let (edit_units, edit_replayed, edit_anchor_replayed, edit_executed, edit_docs, edit_secs) =
        run_edited(&orch);
    // Byte-identity check: a from-scratch run of the edited sources in
    // a pristine state dir must produce the same documents the
    // anchor-spliced run did.
    let scratch_dir = dir.with_file_name(format!("nfi-store-bench-scratch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch_dir);
    let scratch = nfi_core::Orchestrator::new(&scratch_dir).expect("store bench scratch dir");
    let (_, _, _, _, scratch_docs, _) = run_edited(&scratch);
    let _ = std::fs::remove_dir_all(&scratch_dir);
    let _ = std::fs::remove_dir_all(&dir);

    StoreBench {
        programs: programs.len(),
        units,
        cold_secs,
        warm_secs,
        cold_executed,
        warm_replayed,
        warm_executed,
        documents_identical: cold_docs == warm_docs,
        edit_secs,
        edit_units,
        edit_replayed,
        edit_anchor_replayed,
        edit_executed,
        edit_documents_identical: edit_docs == scratch_docs,
    }
}

/// Daemon throughput: request-handling rate of the HTTP front end and
/// end-to-end campaign units/sec *through* `nfi serve` — a cold run
/// (store empty, workers execute) vs. a store-warm one (everything
/// replays) — the numbers behind the `"serve"` section of
/// `BENCH_e7.json`.
#[derive(Debug, Clone)]
pub struct ServeBench {
    /// Metrics requests answered in the rate burst.
    pub requests: usize,
    /// Wall time of the rate burst (seconds), one keep-alive connection.
    pub requests_secs: f64,
    /// Client-side latency of every request in the rate burst.
    pub request_latency: nfi_telemetry::Histogram,
    /// Metrics requests answered with telemetry globally disabled —
    /// the baseline that prices the histogram/trace bookkeeping.
    pub off_requests: usize,
    /// Wall time of the telemetry-off burst (seconds).
    pub off_requests_secs: f64,
    /// Metrics requests answered by the hardened daemon (bearer auth +
    /// rate limiter on the path).
    pub auth_requests: usize,
    /// Wall time of the hardened burst (seconds).
    pub auth_requests_secs: f64,
    /// Forged-token requests the hardened daemon refused (its edge
    /// `unauthorized` counter after the bench).
    pub unauthorized: u64,
    /// Submissions the hardened daemon shed (`queue_shed` counter —
    /// expected 0: the bench never overruns its own queue).
    pub queue_shed: u64,
    /// Worker retries across both daemons' rounds (expected 0: nothing
    /// kills the bench children).
    pub retries: u64,
    /// Programs submitted per round.
    pub programs: usize,
    /// Scheduler lanes the benched daemon ran.
    pub lanes: usize,
    /// Campaign units per round.
    pub units: usize,
    /// Submit-to-done wall time of the cold round (seconds).
    pub cold_secs: f64,
    /// Submit-to-done wall time of the store-warm round (seconds).
    pub warm_secs: f64,
    /// Units the warm round replayed from the store.
    pub warm_replayed: usize,
    /// Units the warm round executed (0 when sources are unchanged).
    pub warm_executed: usize,
    /// Whether every warm document was byte-identical to its cold one.
    pub documents_identical: bool,
}

impl ServeBench {
    /// Metrics requests/sec over one keep-alive connection.
    pub fn requests_per_s(&self) -> f64 {
        self.requests as f64 / self.requests_secs.max(1e-9)
    }

    /// Metrics requests/sec with telemetry disabled; `requests_per_s`
    /// divided by this is the telemetry tax (budgeted under 5%).
    pub fn off_requests_per_s(&self) -> f64 {
        self.off_requests as f64 / self.off_requests_secs.max(1e-9)
    }

    /// Metrics requests/sec with auth + rate limiting on the path —
    /// the hardening tax on the hot path is `requests_per_s` minus
    /// this.
    pub fn auth_requests_per_s(&self) -> f64 {
        self.auth_requests as f64 / self.auth_requests_secs.max(1e-9)
    }

    /// Cold end-to-end units/sec through the daemon.
    pub fn cold_units_per_s(&self) -> f64 {
        self.units as f64 / self.cold_secs.max(1e-9)
    }

    /// Store-warm end-to-end units/sec through the daemon.
    pub fn warm_units_per_s(&self) -> f64 {
        self.units as f64 / self.warm_secs.max(1e-9)
    }

    /// Warm speedup over cold.
    pub fn warm_speedup(&self) -> f64 {
        self.cold_secs / self.warm_secs.max(1e-9)
    }
}

/// Benches a daemon on an ephemeral port over a throwaway state dir:
/// a burst of `/v1/metrics` requests for the front-end rate, then the
/// first `max_programs` corpus programs (0 = all) submitted in one
/// burst across `lanes` scheduler lanes and polled to completion
/// twice — cold, then store-warm — with every document byte-compared
/// across rounds. `mode` selects the worker transport; `nfi bench`
/// passes spawn mode (the benched binary *is* `nfi`), library tests
/// pass in-process.
pub fn bench_serve(
    max_programs: usize,
    workers: usize,
    lanes: usize,
    mode: nfi_serve::worker::WorkerMode,
) -> ServeBench {
    use nfi_serve::client::Client;
    use nfi_sfi::jsontext::{get_usize, parse_flat_object};
    let dir = std::env::temp_dir().join(format!("nfi-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = nfi_serve::ServeConfig {
        workers,
        lanes,
        mode: mode.clone(),
        ..nfi_serve::ServeConfig::new(&dir)
    };
    let server = nfi_serve::Server::bind("127.0.0.1:0", config).expect("serve bench bind");
    let handle = server.spawn().expect("serve bench spawn");
    let addr = handle.addr;

    // Front-end request rate: metrics answers never touch the queue.
    // Per-request client-side latency lands in a histogram for the
    // p50/p99 columns of BENCH_e7.json.
    let requests = 500;
    let mut request_latency = nfi_telemetry::Histogram::new();
    let mut client = Client::connect(addr).expect("serve bench client");
    let started = Instant::now();
    for _ in 0..requests {
        let sent = Instant::now();
        let reply = client.send("GET", "/v1/metrics", None).expect("metrics");
        assert_eq!(reply.status, 200);
        request_latency.record_micros(sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
    }
    let requests_secs = started.elapsed().as_secs_f64();

    // The same burst with telemetry off prices the histogram/trace
    // bookkeeping; the telemetry-on burst just warmed this connection,
    // which if anything flatters the baseline.
    let was_enabled = nfi_telemetry::enabled();
    nfi_telemetry::set_enabled(false);
    let off_requests = requests;
    let started = Instant::now();
    for _ in 0..off_requests {
        let reply = client
            .send("GET", "/v1/metrics", None)
            .expect("off metrics");
        assert_eq!(reply.status, 200);
    }
    let off_requests_secs = started.elapsed().as_secs_f64();
    nfi_telemetry::set_enabled(was_enabled);

    let programs: Vec<&str> = nfi_corpus::all()
        .iter()
        .take(if max_programs == 0 {
            usize::MAX
        } else {
            max_programs
        })
        .map(|p| p.name)
        .collect();

    // All submit/poll/fetch traffic of a round shares one keep-alive
    // connection, and every status body is decoded with the workspace
    // JSON codec — no per-poll connections, no string-splitting.
    let run_round = || -> (usize, usize, usize, Vec<String>, f64) {
        MutantCache::global().clear();
        ExperimentCache::global().clear();
        SuiteCache::global().clear();
        let mut client = Client::connect(addr).expect("serve bench round client");
        let started = Instant::now();
        let ids: Vec<u64> = programs
            .iter()
            .map(|name| {
                let body = format!("{{\"program\":\"{name}\"}}");
                let reply = client
                    .send("POST", "/v1/campaigns", Some(body.as_bytes()))
                    .expect("submit");
                assert_eq!(reply.status, 202, "{}", reply.text());
                let fields = parse_flat_object(&reply.text()).expect("submit reply json");
                get_usize(&fields, "id").expect("job id") as u64
            })
            .collect();
        let (mut units, mut replayed, mut executed) = (0usize, 0usize, 0usize);
        let mut docs = Vec::new();
        for id in ids {
            let status = loop {
                let reply = client
                    .send("GET", &format!("/v1/campaigns/{id}"), None)
                    .expect("status");
                let fields = parse_flat_object(&reply.text()).expect("status json");
                let state = fields
                    .get("status")
                    .and_then(nfi_sfi::jsontext::JsonValue::as_str)
                    .unwrap_or("")
                    .to_string();
                if state == "done" {
                    break fields;
                }
                assert_ne!(state, "failed", "bench job failed: {}", reply.text());
                std::thread::sleep(std::time::Duration::from_millis(5));
            };
            units += get_usize(&status, "units").expect("units");
            replayed += get_usize(&status, "replayed").expect("replayed");
            executed += get_usize(&status, "executed").expect("executed");
            let doc = client
                .send("GET", &format!("/v1/campaigns/{id}/document"), None)
                .expect("document");
            assert_eq!(doc.status, 200);
            docs.push(doc.text());
        }
        (
            units,
            replayed,
            executed,
            docs,
            started.elapsed().as_secs_f64(),
        )
    };

    let (units, _, _, cold_docs, cold_secs) = run_round();
    let (_, warm_replayed, warm_executed, warm_docs, warm_secs) = run_round();
    handle.stop();

    // Hardened rate: same daemon with bearer auth and the per-client
    // rate limiter on the request path (the limit is far above the
    // burst, so its bookkeeping — not shedding — is what is priced).
    // Forged tokens must be refused and show up in the edge counters.
    // Its own state dir: the first daemon's serve.lock outlives stop()
    // briefly, and the metrics path never touches the store anyway.
    let auth_dir =
        std::env::temp_dir().join(format!("nfi-serve-bench-auth-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&auth_dir);
    let auth_config = nfi_serve::ServeConfig {
        workers,
        lanes,
        mode,
        auth: Some(nfi_serve::auth::AuthTokens::parse("bench:bench-token").expect("bench tokens")),
        rate_limit: 1_000_000,
        ..nfi_serve::ServeConfig::new(&auth_dir)
    };
    let server = nfi_serve::Server::bind("127.0.0.1:0", auth_config).expect("auth bench bind");
    let handle = server.spawn().expect("auth bench spawn");
    let mut good = Client::connect(handle.addr)
        .expect("auth bench client")
        .with_token("bench-token");
    let auth_requests = requests;
    let started = Instant::now();
    for _ in 0..auth_requests {
        let reply = good.send("GET", "/v1/metrics", None).expect("auth metrics");
        assert_eq!(reply.status, 200);
    }
    let auth_requests_secs = started.elapsed().as_secs_f64();
    let mut bad = Client::connect(handle.addr)
        .expect("forged bench client")
        .with_token("forged-token");
    for _ in 0..50 {
        let reply = bad
            .send("GET", "/v1/metrics", None)
            .expect("forged metrics");
        assert_eq!(reply.status, 401, "forged token must be refused");
    }
    let counters = good
        .send("GET", "/v1/metrics", None)
        .expect("final metrics");
    let counters = counters.text();
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&auth_dir);

    ServeBench {
        requests,
        requests_secs,
        request_latency,
        off_requests,
        off_requests_secs,
        auth_requests,
        auth_requests_secs,
        unauthorized: json_counter(&counters, "unauthorized"),
        queue_shed: json_counter(&counters, "queue_shed"),
        retries: json_counter(&counters, "retries"),
        programs: programs.len(),
        lanes,
        units,
        cold_secs,
        warm_secs,
        warm_replayed,
        warm_executed,
        documents_identical: cold_docs == warm_docs,
    }
}

/// Pulls one named unsigned counter out of a (possibly nested) metrics
/// JSON body — the workspace flat-object codec stops at nesting, and a
/// bench dependency on a full parser is not worth it for five digits.
fn json_counter(json: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\":");
    json.find(&needle)
        .and_then(|at| {
            let digits: String = json[at + needle.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            digits.parse().ok()
        })
        .unwrap_or(0)
}

/// VM execution throughput: raw instruction dispatch rate over
/// precompiled corpus suites, plus cold-vs-code-warm campaign passes
/// that isolate the compiled-code cache (the mutant and experiment
/// memo caches are cleared before *both* passes, so the only state
/// that survives into the warm pass is compiled code).
#[derive(Debug, Clone)]
pub struct VmBench {
    /// Corpus programs measured.
    pub programs: usize,
    /// Suite repetitions of the instruction-throughput loop.
    pub reps: usize,
    /// VM instructions executed across the loop (sum of test
    /// `RunOutcome::steps`).
    pub instrs: u64,
    /// Wall time of the instruction-throughput loop (seconds).
    pub instr_secs: f64,
    /// Campaign units per pass.
    pub units: usize,
    /// Code-cold campaign pass wall time (seconds): compiled-code cache
    /// cleared, every unit compiles its modules.
    pub cold_secs: f64,
    /// Code-warm campaign pass wall time (seconds): same work with the
    /// compiled-code cache retained (memo caches cleared again).
    pub warm_secs: f64,
    /// Compiled-code cache counters across both passes.
    pub code_cache: CacheStats,
    /// Whether both passes produced identical aggregate reports.
    pub reports_identical: bool,
}

impl VmBench {
    /// VM instructions/sec of the precompiled hot loop.
    pub fn instrs_per_s(&self) -> f64 {
        self.instrs as f64 / self.instr_secs.max(1e-9)
    }

    /// Code-cold campaign units/sec.
    pub fn cold_units_per_s(&self) -> f64 {
        self.units as f64 / self.cold_secs.max(1e-9)
    }

    /// Code-warm campaign units/sec.
    pub fn warm_units_per_s(&self) -> f64 {
        self.units as f64 / self.warm_secs.max(1e-9)
    }

    /// Code-warm speedup over code-cold — the compile share of a cold
    /// campaign unit.
    pub fn code_warm_speedup(&self) -> f64 {
        self.cold_secs / self.warm_secs.max(1e-9)
    }
}

/// Measures the VM cold path over the first `max_programs` corpus
/// programs (0 = all), sequentially on the calling thread so the
/// thread-local compiled-code cache is exercised the way `threads = 1`
/// campaigns exercise it.
pub fn bench_vm(max_programs: usize) -> VmBench {
    let machine_config = crate::experiments::experiment_machine();
    let programs: Vec<_> = nfi_corpus::all()
        .iter()
        .take(if max_programs == 0 {
            usize::MAX
        } else {
            max_programs
        })
        .collect();
    let modules: Vec<(nfi_pylite::Module, u64)> = programs
        .iter()
        .map(|p| {
            let m = p.module().expect("corpus parses");
            let fp = nfi_pylite::fingerprint(&m);
            (m, fp)
        })
        .collect();

    // Instruction throughput: every suite precompiled (first rep warms
    // the code cache), one machine reset between tests, instruction
    // counts taken from the outcomes themselves.
    let mut machine = Machine::new(machine_config.clone());
    let reps = 5;
    let mut instrs = 0u64;
    let started = Instant::now();
    for _ in 0..reps {
        for (module, fp) in &modules {
            let report = run_suite_in(&mut machine, module, *fp, &machine_config);
            instrs += report.tests.iter().map(|t| t.outcome.steps).sum::<u64>();
        }
    }
    let instr_secs = started.elapsed().as_secs_f64();

    // Cold vs code-warm campaign passes. The memo caches are cleared
    // before both passes so neither replays the other's *results*; the
    // code cache is cleared only before the cold pass, so the warm
    // delta is exactly the compilation work.
    let campaigns: Vec<Campaign> = modules.iter().map(|(m, _)| Campaign::full(m)).collect();
    let run_all = || -> (Vec<CampaignRunReport>, f64) {
        MutantCache::global().clear();
        ExperimentCache::global().clear();
        SuiteCache::global().clear();
        let started = Instant::now();
        let reports = campaigns
            .iter()
            .map(|c| exec::run_campaign(c, &machine_config, ExecConfig::sequential()).report)
            .collect();
        (reports, started.elapsed().as_secs_f64())
    };
    CodeCache::global().clear();
    let (cold_reports, cold_secs) = run_all();
    let (warm_reports, warm_secs) = run_all();

    VmBench {
        programs: programs.len(),
        reps,
        instrs,
        instr_secs,
        units: campaigns.iter().map(|c| c.plans().len()).sum(),
        cold_secs,
        warm_secs,
        code_cache: CodeCache::global().stats(),
        reports_identical: cold_reports == warm_reports,
    }
}

/// E7 pipeline throughput, sequential vs. parallel.
#[derive(Debug, Clone)]
pub struct E7Bench {
    /// Worker threads used for the parallel run.
    pub threads: usize,
    /// Sequential E7 row.
    pub sequential: E7Row,
    /// Parallel E7 row.
    pub parallel: E7Row,
}

impl E7Bench {
    /// Parallel speedup in scenarios/sec.
    pub fn speedup(&self) -> f64 {
        self.parallel.throughput_per_s / self.sequential.throughput_per_s.max(1e-9)
    }
}

/// Runs E7 under both engines.
pub fn bench_e7(scenario_cap: usize, threads: usize) -> E7Bench {
    E7Bench {
        threads,
        sequential: run_e7_with(ExecConfig::sequential(), scenario_cap),
        parallel: run_e7_with(ExecConfig::with_threads(threads), scenario_cap),
    }
}

/// Renders the six benchmarks as the `BENCH_e7.json` document.
pub fn to_json(
    campaign: &CampaignBench,
    lm: &LmBench,
    e7: &E7Bench,
    vm: &VmBench,
    store: &StoreBench,
    serve: &ServeBench,
) -> String {
    format!(
        "{{\n  \"threads\": {},\n  \"campaign\": {{\n    \"plans\": {},\n    \"sequential_plans_per_s\": {:.1},\n    \"parallel_plans_per_s\": {:.1},\n    \"speedup\": {:.2},\n    \"warm_plans_per_s\": {:.1},\n    \"warm_speedup\": {:.2},\n    \"mutant_cache_hit_rate\": {:.3},\n    \"mutant_cache_hits\": {},\n    \"mutant_cache_misses\": {},\n    \"experiment_cache_hit_rate\": {:.3},\n    \"reports_identical\": {}\n  }},\n  \"lm\": {{\n    \"tokens_per_epoch\": {},\n    \"per_example_tokens_per_s\": {:.1},\n    \"batched_tokens_per_s\": {:.1},\n    \"speedup\": {:.2}\n  }},\n  \"e7\": {{\n    \"scenarios\": {},\n    \"sequential_per_s\": {:.2},\n    \"parallel_per_s\": {:.2},\n    \"speedup\": {:.2}\n  }},\n  \"vm\": {{\n    \"programs\": {},\n    \"reps\": {},\n    \"instrs\": {},\n    \"instrs_per_s\": {:.1},\n    \"units\": {},\n    \"cold_units_per_s\": {:.1},\n    \"code_warm_units_per_s\": {:.1},\n    \"code_warm_speedup\": {:.2},\n    \"code_cache_hit_rate\": {:.3},\n    \"code_cache_hits\": {},\n    \"code_cache_misses\": {},\n    \"reports_identical\": {}\n  }},\n  \"store\": {{\n    \"programs\": {},\n    \"units\": {},\n    \"cold_units_per_s\": {:.1},\n    \"warm_units_per_s\": {:.1},\n    \"warm_speedup\": {:.2},\n    \"cold_executed\": {},\n    \"warm_replayed\": {},\n    \"warm_executed\": {},\n    \"store_hit_rate\": {:.3},\n    \"documents_identical\": {}\n  }},\n  \"store_edit\": {{\n    \"programs\": {},\n    \"units\": {},\n    \"edit_units_per_s\": {:.1},\n    \"edit_speedup\": {:.2},\n    \"edit_replayed\": {},\n    \"edit_anchor_replayed\": {},\n    \"edit_executed\": {},\n    \"edit_hit_rate\": {:.3},\n    \"documents_identical\": {}\n  }},\n  \"serve\": {{\n    \"requests_per_s\": {:.1},\n    \"requests_per_s_telemetry_off\": {:.1},\n    \"latency\": {{\n      \"request_p50_us\": {},\n      \"request_p90_us\": {},\n      \"request_p99_us\": {}\n    }},\n    \"auth_requests_per_s\": {:.1},\n    \"unauthorized\": {},\n    \"queue_shed\": {},\n    \"retries\": {},\n    \"programs\": {},\n    \"lanes\": {},\n    \"units\": {},\n    \"cold_units_per_s\": {:.1},\n    \"warm_units_per_s\": {:.1},\n    \"warm_speedup\": {:.2},\n    \"warm_replayed\": {},\n    \"warm_executed\": {},\n    \"documents_identical\": {}\n  }}\n}}\n",
        campaign.threads,
        campaign.plans,
        campaign.sequential_plans_per_s(),
        campaign.parallel_plans_per_s(),
        campaign.speedup(),
        campaign.warm_plans_per_s(),
        campaign.warm_speedup(),
        campaign.mutant_cache.hit_rate(),
        campaign.mutant_cache.hits,
        campaign.mutant_cache.misses,
        campaign.experiment_cache.hit_rate(),
        campaign.reports_identical,
        lm.tokens,
        lm.per_example_tokens_per_s(),
        lm.batched_tokens_per_s(),
        lm.speedup(),
        e7.sequential.scenarios,
        e7.sequential.throughput_per_s,
        e7.parallel.throughput_per_s,
        e7.speedup(),
        vm.programs,
        vm.reps,
        vm.instrs,
        vm.instrs_per_s(),
        vm.units,
        vm.cold_units_per_s(),
        vm.warm_units_per_s(),
        vm.code_warm_speedup(),
        vm.code_cache.hit_rate(),
        vm.code_cache.hits,
        vm.code_cache.misses,
        vm.reports_identical,
        store.programs,
        store.units,
        store.cold_units_per_s(),
        store.warm_units_per_s(),
        store.warm_speedup(),
        store.cold_executed,
        store.warm_replayed,
        store.warm_executed,
        store.warm_hit_rate(),
        store.documents_identical,
        store.programs,
        store.edit_units,
        store.edit_units_per_s(),
        store.edit_speedup(),
        store.edit_replayed,
        store.edit_anchor_replayed,
        store.edit_executed,
        store.edit_hit_rate(),
        store.edit_documents_identical,
        serve.requests_per_s(),
        serve.off_requests_per_s(),
        serve.request_latency.p50_micros(),
        serve.request_latency.p90_micros(),
        serve.request_latency.p99_micros(),
        serve.auth_requests_per_s(),
        serve.unauthorized,
        serve.queue_shed,
        serve.retries,
        serve.programs,
        serve.lanes,
        serve.units,
        serve.cold_units_per_s(),
        serve.warm_units_per_s(),
        serve.warm_speedup(),
        serve.warm_replayed,
        serve.warm_executed,
        serve.documents_identical,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both cache-clearing benches mutate the process-wide caches;
    /// tests driving them must serialize on this lock or one test's
    /// `clear()` lands mid-measurement of the other.
    fn global_cache_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn campaign_bench_reports_match_across_engines() {
        let _guard = global_cache_guard();
        let b = bench_campaign(4, 4);
        assert!(b.plans > 0);
        assert!(b.reports_identical, "parallel engine changed results");
        // The warm rerun must have replayed every plan from the caches.
        assert!(
            b.mutant_cache.hits >= b.plans as u64,
            "warm rerun missed the mutant cache: {:?}",
            b.mutant_cache
        );
        assert!(b.mutant_cache.hit_rate() > 0.0);
    }

    #[test]
    fn lm_bench_paths_both_learn() {
        let b = bench_lm(3, 2);
        assert!(b.tokens > 0);
        assert!(b.per_example_nll.is_finite());
        assert!(b.batched_nll.is_finite());
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let campaign = CampaignBench {
            threads: 4,
            plans: 100,
            sequential_secs: 2.0,
            parallel_secs: 0.5,
            warm_secs: 0.1,
            mutant_cache: CacheStats {
                hits: 100,
                misses: 100,
                entries: 100,
                ..CacheStats::default()
            },
            experiment_cache: CacheStats {
                hits: 90,
                misses: 100,
                entries: 100,
                ..CacheStats::default()
            },
            reports_identical: true,
        };
        let lm = LmBench {
            tokens: 1000,
            epochs: 3,
            per_example_secs: 1.0,
            batched_secs: 0.4,
            per_example_nll: 2.0,
            batched_nll: 2.1,
        };
        let e7 = E7Bench {
            threads: 4,
            sequential: E7Row {
                scenarios: 10,
                throughput_per_s: 5.0,
                ..E7Row::default()
            },
            parallel: E7Row {
                scenarios: 10,
                throughput_per_s: 20.0,
                ..E7Row::default()
            },
        };
        let vm = VmBench {
            programs: 2,
            reps: 5,
            instrs: 1_000_000,
            instr_secs: 0.5,
            units: 60,
            cold_secs: 0.6,
            warm_secs: 0.2,
            code_cache: CacheStats {
                hits: 90,
                misses: 30,
                entries: 30,
                evictions: 0,
                capacity: Some(4096),
            },
            reports_identical: true,
        };
        let store = StoreBench {
            programs: 2,
            units: 60,
            cold_secs: 1.2,
            warm_secs: 0.012,
            cold_executed: 60,
            warm_replayed: 60,
            warm_executed: 0,
            documents_identical: true,
            edit_secs: 0.12,
            edit_units: 62,
            edit_replayed: 50,
            edit_anchor_replayed: 50,
            edit_executed: 12,
            edit_documents_identical: true,
        };
        let request_latency = {
            let mut h = nfi_telemetry::Histogram::new();
            for _ in 0..98 {
                h.record_micros(400);
            }
            h.record_micros(3000);
            h.record_micros(3000);
            h
        };
        let serve = ServeBench {
            requests: 100,
            requests_secs: 0.05,
            request_latency,
            off_requests: 100,
            off_requests_secs: 0.04,
            auth_requests: 100,
            auth_requests_secs: 0.1,
            unauthorized: 50,
            queue_shed: 0,
            retries: 0,
            programs: 2,
            lanes: 2,
            units: 60,
            cold_secs: 1.5,
            warm_secs: 0.05,
            warm_replayed: 60,
            warm_executed: 0,
            documents_identical: true,
        };
        let json = to_json(&campaign, &lm, &e7, &vm, &store, &serve);
        assert!(json.contains("\"vm\""));
        assert!(json.contains("\"instrs_per_s\": 2000000.0"));
        assert!(json.contains("\"cold_units_per_s\": 100.0"));
        assert!(json.contains("\"code_warm_speedup\": 3.00"));
        assert!(json.contains("\"code_cache_hit_rate\": 0.750"));
        assert!(json.contains("\"speedup\": 4.00"));
        assert!(json.contains("\"warm_speedup\": 20.00"));
        assert!(json.contains("\"mutant_cache_hit_rate\": 0.500"));
        assert!(json.contains("\"reports_identical\": true"));
        assert!(json.contains("\"store_hit_rate\": 1.000"));
        assert!(json.contains("\"warm_executed\": 0"));
        assert!(json.contains("\"documents_identical\": true"));
        assert!(json.contains("\"store_edit\""));
        assert!(json.contains("\"edit_anchor_replayed\": 50"));
        assert!(json.contains("\"edit_hit_rate\": 0.806"));
        assert!(json.contains("\"serve\""));
        assert!(json.contains("\"lanes\": 2"));
        assert!(json.contains("\"requests_per_s\": 2000.0"));
        assert!(json.contains("\"requests_per_s_telemetry_off\": 2500.0"));
        assert!(json.contains("\"latency\""));
        assert!(json.contains("\"request_p50_us\": 512"));
        assert!(json.contains("\"request_p90_us\": 512"));
        assert!(json.contains("\"request_p99_us\": 3000"));
        assert!(json.contains("\"auth_requests_per_s\": 1000.0"));
        assert!(json.contains("\"unauthorized\": 50"));
        assert!(json.contains("\"queue_shed\": 0"));
        assert!(json.contains("\"retries\": 0"));
        assert!(json.contains("\"warm_speedup\": 30.00"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn serve_bench_round_trips_identically_and_replays_warm() {
        let _guard = global_cache_guard();
        // In-process workers: this test binary is not the `nfi` binary.
        // Two lanes: the round submits in a burst, so the lanes race.
        let b = bench_serve(2, 2, 2, nfi_serve::worker::WorkerMode::InProcess);
        assert_eq!(b.programs, 2);
        assert_eq!(b.lanes, 2);
        assert!(b.units > 0);
        assert!(b.requests > 0);
        // The latency histogram saw every request of the burst, and its
        // percentiles are monotone.
        assert_eq!(b.request_latency.count, b.requests as u64);
        assert!(b.request_latency.p50_micros() > 0);
        assert!(b.request_latency.p99_micros() >= b.request_latency.p50_micros());
        assert!(b.off_requests > 0);
        assert!(b.off_requests_per_s() > 0.0);
        assert!(nfi_telemetry::enabled(), "bench must restore telemetry");
        assert!(b.documents_identical, "warm daemon changed a document");
        assert_eq!(b.warm_executed, 0, "warm round must replay everything");
        assert_eq!(b.warm_replayed, b.units);
        // The hardened round must have run, refused every forged token,
        // and shed nothing — the bench never overruns its own queue.
        assert!(b.auth_requests > 0);
        assert!(b.auth_requests_per_s() > 0.0);
        assert_eq!(b.unauthorized, 50, "every forged token counts once");
        assert_eq!(b.queue_shed, 0);
        assert_eq!(b.retries, 0);
    }

    #[test]
    fn vm_bench_reports_identical_passes_and_warm_hits() {
        let _guard = global_cache_guard();
        let b = bench_vm(2);
        assert_eq!(b.programs, 2);
        assert!(b.instrs > 0, "corpus suites execute instructions");
        assert!(b.instrs_per_s() > 0.0);
        assert!(b.units > 0);
        assert!(b.cold_units_per_s() > 0.0);
        assert!(b.reports_identical, "code-warm pass changed results");
        assert!(
            b.code_cache.hits > 0,
            "warm pass missed the code cache: {:?}",
            b.code_cache
        );
        assert!(b.code_cache.hit_rate() > 0.0);
    }

    #[test]
    fn store_bench_warm_run_replays_everything() {
        let _guard = global_cache_guard();
        let b = bench_store(2);
        assert_eq!(b.programs, 2);
        assert!(b.units > 0);
        assert_eq!(b.cold_executed, b.units);
        assert_eq!(b.warm_executed, 0, "warm run must execute no units");
        assert_eq!(b.warm_replayed, b.units);
        assert!(b.documents_identical, "warm documents diverged from cold");
        assert_eq!(b.warm_hit_rate(), 1.0);
        // The edit round: function units anchor-replay, only the
        // changed top-level group executes, and the spliced documents
        // match a from-scratch run of the edited sources.
        assert!(b.edit_units >= b.units);
        assert!(b.edit_replayed > 0, "edit round must anchor-replay");
        assert_eq!(b.edit_anchor_replayed, b.edit_replayed);
        assert_eq!(b.edit_executed, b.edit_units - b.edit_replayed);
        assert!(
            b.edit_documents_identical,
            "edit documents diverged from a from-scratch run"
        );
    }
}
