//! The NL scenario suite: per-class fault descriptions grounded in the
//! corpus programs' real functions.

use nfi_corpus::SeedProgram;
use nfi_pylite::analysis::ModuleIndex;
use nfi_sfi::FaultClass;

/// One evaluation scenario: a natural-language fault request against a
/// seed program, with the class the description *intends*.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Seed program.
    pub program: &'static SeedProgram,
    /// The tester's natural-language description.
    pub description: String,
    /// Ground-truth intended fault class.
    pub intended: FaultClass,
}

/// Builds the scenario suite: for every corpus program, one scenario per
/// fault class (descriptions reference the program's actual functions).
/// `cap` bounds the total (0 = unlimited).
pub fn build_scenarios(cap: usize) -> Vec<Scenario> {
    let mut out = Vec::new();
    for program in nfi_corpus::all() {
        let module = program.module().expect("corpus parses");
        let index = ModuleIndex::build(&module);
        let Some(target) = index
            .functions
            .iter()
            .find(|f| !f.name.starts_with("test_"))
        else {
            continue;
        };
        let fn_name = &target.name;
        let callee = target
            .calls
            .iter()
            .find(|c| !nfi_pylite::BUILTIN_FUNCTIONS.contains(&c.as_str()))
            .cloned()
            .unwrap_or_else(|| "the helper".to_string());
        let cases: Vec<(FaultClass, String)> = vec![
            (
                FaultClass::Timing,
                format!(
                    "Simulate a scenario where {fn_name} fails due to a database timeout, causing an unhandled exception."
                ),
            ),
            (
                FaultClass::Concurrency,
                format!(
                    "Introduce a race condition in {fn_name}: two concurrent workers update shared state without holding the lock."
                ),
            ),
            (
                FaultClass::ResourceLeak,
                format!("Leak a connection handle in {fn_name} by never closing it."),
            ),
            (
                FaultClass::BufferOverflow,
                format!("Write past the buffer capacity bounds inside {fn_name}, overflowing it."),
            ),
            (
                FaultClass::ExceptionHandling,
                format!("Swallow the exception raised inside {fn_name} without any recovery."),
            ),
            (
                FaultClass::Omission,
                format!("Omit the call to {callee} inside {fn_name} so a step is missing."),
            ),
            (
                FaultClass::WrongValue,
                format!("Assign a wrong, corrupted value inside {fn_name}."),
            ),
            (
                FaultClass::Interface,
                format!("Pass a duplicate argument to the api call in {fn_name}, invoking it twice."),
            ),
        ];
        for (intended, description) in cases {
            out.push(Scenario {
                program,
                description,
                intended,
            });
        }
    }
    if cap > 0 {
        out.truncate(cap);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_all_programs_and_classes() {
        let scenarios = build_scenarios(0);
        assert_eq!(scenarios.len(), 12 * 8);
        for class in FaultClass::ALL {
            assert!(scenarios.iter().any(|s| s.intended == class));
        }
    }

    #[test]
    fn descriptions_classify_to_the_intended_class() {
        let scenarios = build_scenarios(0);
        let mut correct = 0usize;
        for s in &scenarios {
            let module = s.program.module().unwrap();
            let spec = nfi_nlp::analyze(&s.description, Some(&module));
            if spec.class == Some(s.intended) {
                correct += 1;
            }
        }
        // The NLP engine should get the overwhelming majority right.
        assert!(
            correct * 10 >= scenarios.len() * 9,
            "only {correct}/{} scenarios classified as intended",
            scenarios.len()
        );
    }

    #[test]
    fn cap_truncates() {
        assert_eq!(build_scenarios(5).len(), 5);
    }
}
