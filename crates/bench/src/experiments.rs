//! Drivers for experiments E1–E8 (see DESIGN.md §3 for the mapping from
//! the paper's claims to these measurements).
//!
//! Every driver with independent work units (per seed, per scenario,
//! per dataset size, per ablation variant) fans them across the
//! [`nfi_core::exec`] engine. Work units derive all their state from
//! their index — per-scenario injectors and testers are seeded by
//! position, never threaded through a shared RNG — so every `run_*`
//! function returns *identical* rows for any thread count, including
//! the sequential `threads = 1` engine. The `run_*` entry points use
//! [`ExecConfig::default`] (available parallelism); `run_*_with` takes
//! an explicit engine configuration.

use crate::scenarios::{build_scenarios, Scenario};
use nfi_core::exec::{self, ExecConfig};
use nfi_core::metrics::{self, EffortModel};
use nfi_core::pipeline::{NeuralFaultInjector, PipelineConfig};
use nfi_core::session::run_session;
use nfi_llm::{FaultLlm, LlmConfig};
use nfi_neural::lm::code_tokens;
use nfi_nlp::FaultSpec;
use nfi_pylite::{MachineConfig, Module};
use nfi_rlhf::{RlhfConfig, RlhfTrainer, SimulatedTester, TargetProfile};
use nfi_sfi::{Campaign, FaultClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Machine configuration for experiment harness runs: a tight step
/// budget keeps hang-classified faults cheap.
pub fn experiment_machine() -> MachineConfig {
    MachineConfig {
        step_budget: 200_000,
        ..MachineConfig::default()
    }
}

/// One parsed module + batched NLP engine per distinct program of a
/// scenario suite. Every driver that analyzes scenario descriptions
/// goes through this so the symbol index is built once per *program*
/// (the batched-NLP path) instead of once per *scenario*.
fn scenario_analyzers(
    scenarios: &[Scenario],
) -> BTreeMap<&'static str, (Module, nfi_nlp::Analyzer)> {
    let mut analyzers = BTreeMap::new();
    for s in scenarios {
        analyzers.entry(s.program.name).or_insert_with(|| {
            let module = s.program.module().expect("corpus parses");
            let analyzer = nfi_nlp::Analyzer::new(Some(&module));
            (module, analyzer)
        });
    }
    analyzers
}

fn spec_scenarios(scenarios: &[Scenario]) -> Vec<(FaultSpec, Module)> {
    let analyzers = scenario_analyzers(scenarios);
    scenarios
        .iter()
        .map(|s| {
            let (module, analyzer) = &analyzers[s.program.name];
            (analyzer.analyze(&s.description), module.clone())
        })
        .collect()
}

// ---- E1: RLHF alignment curve ---------------------------------------------

/// One iteration row of the E1 alignment curve.
#[derive(Debug, Clone)]
pub struct E1Row {
    /// Seed of the run.
    pub seed: u64,
    /// Iteration index.
    pub iteration: usize,
    /// Mean tester rating (1–5).
    pub mean_rating: f64,
    /// Acceptance fraction.
    pub acceptance: f64,
    /// Mean reward-model score.
    pub mean_reward: f64,
}

/// Runs E1: alignment vs. feedback iterations, for several seeds.
pub fn run_e1(scenario_cap: usize, iterations: usize, seeds: &[u64]) -> Vec<E1Row> {
    run_e1_with(ExecConfig::default(), scenario_cap, iterations, seeds)
}

/// [`run_e1`] on an explicit execution engine: seeds fan across the
/// worker pool (each seed's RLHF run is self-contained), rows are
/// flattened in seed order.
pub fn run_e1_with(
    exec: ExecConfig,
    scenario_cap: usize,
    iterations: usize,
    seeds: &[u64],
) -> Vec<E1Row> {
    let scenarios = build_scenarios(scenario_cap);
    let pairs = spec_scenarios(&scenarios);
    let per_seed = exec::par_map(exec, seeds, |&seed| {
        let mut llm = FaultLlm::untrained(LlmConfig {
            seed,
            ..LlmConfig::default()
        });
        let tester = SimulatedTester::new(TargetProfile::wants_retry(), seed);
        let mut trainer = RlhfTrainer::new(RlhfConfig {
            iterations,
            seed,
            ..RlhfConfig::default()
        });
        trainer
            .run(&mut llm, &pairs, &tester)
            .into_iter()
            .map(|s| E1Row {
                seed,
                iteration: s.iteration,
                mean_rating: s.mean_rating,
                acceptance: s.acceptance,
                mean_reward: s.mean_reward,
            })
            .collect::<Vec<_>>()
    });
    per_seed.into_iter().flatten().collect()
}

/// Formats E1 rows for table rendering.
pub fn e1_table(rows: &[E1Row]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec!["seed", "iter", "mean_rating", "acceptance", "mean_reward"];
    let data = rows
        .iter()
        .map(|r| {
            vec![
                r.seed.to_string(),
                r.iteration.to_string(),
                format!("{:.3}", r.mean_rating),
                format!("{:.3}", r.acceptance),
                format!("{:.3}", r.mean_reward),
            ]
        })
        .collect();
    (headers, data)
}

// ---- E2: fault-class coverage ----------------------------------------------

/// Coverage of one fault class (one row of the E2 table).
#[derive(Debug, Clone)]
pub struct E2Row {
    /// Fault class.
    pub class: FaultClass,
    /// Scenarios requesting this class.
    pub scenarios: usize,
    /// Scenarios the neural tool can express (candidate of that class).
    pub neural_expressible: usize,
    /// Scenarios where the neural fault activated under test.
    pub neural_activated: usize,
    /// Scenarios the conventional predefined model can express.
    pub conventional_expressible: usize,
}

/// Runs E2: per-class coverage, neural vs. conventional SFI.
pub fn run_e2(scenario_cap: usize) -> Vec<E2Row> {
    run_e2_with(ExecConfig::default(), scenario_cap)
}

/// [`run_e2`] on an explicit execution engine: scenarios fan across the
/// pool against one shared (immutable) generator, per-scenario flags
/// fold into the per-class rows in scenario order. Specs come from the
/// batched NLP engine and experiments route through the experiment
/// memo, so a rerun of the driver (or its sequential/parallel twin)
/// replays instead of recomputing.
pub fn run_e2_with(exec: ExecConfig, scenario_cap: usize) -> Vec<E2Row> {
    let scenarios = build_scenarios(scenario_cap);
    let pairs = spec_scenarios(&scenarios);
    let llm = FaultLlm::untrained(LlmConfig::default());
    let machine = experiment_machine();
    let flags = exec::par_map_indexed(exec, scenarios.len(), |i| {
        let s = &scenarios[i];
        let (spec, module) = &pairs[i];

        let cands = llm.candidates(spec, module);
        let matching: Vec<_> = cands.iter().filter(|c| c.class == s.intended).collect();
        let neural_expressible = !matching.is_empty();
        let neural_activated = if let Some(best) = matching.iter().max_by(|a, b| {
            llm.policy()
                .score(&a.features)
                .partial_cmp(&llm.policy().score(&b.features))
                .unwrap_or(std::cmp::Ordering::Equal)
        }) {
            nfi_inject::run_experiment_memo(module, &best.module, &machine).activated
        } else {
            false
        };

        let conventional = Campaign::conventional(module);
        let conventional_expressible = conventional.plans().iter().any(|p| p.class == s.intended);
        (
            s.intended,
            neural_expressible,
            neural_activated,
            conventional_expressible,
        )
    });

    let mut per_class: BTreeMap<FaultClass, E2Row> = BTreeMap::new();
    for (intended, neural_expressible, neural_activated, conventional_expressible) in flags {
        let row = per_class.entry(intended).or_insert(E2Row {
            class: intended,
            scenarios: 0,
            neural_expressible: 0,
            neural_activated: 0,
            conventional_expressible: 0,
        });
        row.scenarios += 1;
        row.neural_expressible += neural_expressible as usize;
        row.neural_activated += neural_activated as usize;
        row.conventional_expressible += conventional_expressible as usize;
    }
    per_class.into_values().collect()
}

/// Formats E2 rows.
pub fn e2_table(rows: &[E2Row]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec![
        "class",
        "scenarios",
        "neural_expressible",
        "neural_activated",
        "conventional",
    ];
    let data = rows
        .iter()
        .map(|r| {
            vec![
                r.class.key().to_string(),
                r.scenarios.to_string(),
                r.neural_expressible.to_string(),
                r.neural_activated.to_string(),
                r.conventional_expressible.to_string(),
            ]
        })
        .collect();
    (headers, data)
}

// ---- E3: tester effort -------------------------------------------------------

/// Effort summary for one approach (one row of the E3 table).
#[derive(Debug, Clone)]
pub struct E3Row {
    /// `"neural"` or `"conventional"`.
    pub approach: &'static str,
    /// Scenarios attempted.
    pub scenarios: usize,
    /// Scenarios realized as concrete faults.
    pub realized: usize,
    /// Total tester interactions spent.
    pub interactions: usize,
    /// Mean interactions per realized fault.
    pub per_realized: f64,
}

/// Runs E3: tester-effort comparison over the scenario suite.
pub fn run_e3(scenario_cap: usize, max_rounds: usize) -> Vec<E3Row> {
    run_e3_with(ExecConfig::default(), scenario_cap, max_rounds)
}

/// [`run_e3`] on an explicit execution engine. Each scenario runs its
/// own review session with a position-seeded tester (the reviewer pool
/// model: one reviewer per scenario), so sessions are independent and
/// fan across the pool with thread-count-invariant results.
pub fn run_e3_with(exec: ExecConfig, scenario_cap: usize, max_rounds: usize) -> Vec<E3Row> {
    let scenarios = build_scenarios(scenario_cap);
    let effort = EffortModel::default();

    let per_scenario = exec::par_map_indexed(exec, scenarios.len(), |i| {
        let s = &scenarios[i];
        let module = s.program.module().expect("corpus parses");
        // A satisfiable reviewer: wants logged handlers and spec fidelity
        // — preferences a spec-faithful generation can meet within a
        // round or two (the effort comparison is about workflow, not
        // tester pickiness).
        let mut tester = SimulatedTester::new(
            TargetProfile {
                wants_logging: true,
                ..TargetProfile::default()
            },
            11 + i as u64,
        );
        tester.noise = 0.0;

        // Neural: one description + review rounds until acceptance.
        let mut injector = NeuralFaultInjector::new(PipelineConfig {
            machine: experiment_machine(),
            llm: LlmConfig::default(),
        });
        let (n_inter, n_real) =
            match run_session(&mut injector, &s.description, &module, &tester, max_rounds) {
                Ok(result) => (effort.neural(result.rounds.len()), result.accepted as usize),
                Err(_) => (effort.neural(max_rounds), 0),
            };

        // Conventional: operator + site triage + config, when expressible.
        let campaign = Campaign::conventional(&module);
        let matching = campaign
            .plans()
            .iter()
            .filter(|p| p.class == s.intended)
            .count();
        let (c_inter, c_real) = if matching > 0 {
            (effort.conventional(matching), 1)
        } else {
            (
                effort.conventional_unrealizable(nfi_sfi::registry().len()),
                0,
            )
        };
        (n_inter, n_real, c_inter, c_real)
    });

    let mut neural_interactions = 0usize;
    let mut neural_realized = 0usize;
    let mut conventional_interactions = 0usize;
    let mut conventional_realized = 0usize;
    for (n_inter, n_real, c_inter, c_real) in per_scenario {
        neural_interactions += n_inter;
        neural_realized += n_real;
        conventional_interactions += c_inter;
        conventional_realized += c_real;
    }

    let mk = |approach, realized: usize, interactions: usize| E3Row {
        approach,
        scenarios: scenarios.len(),
        realized,
        interactions,
        per_realized: if realized == 0 {
            f64::INFINITY
        } else {
            interactions as f64 / realized as f64
        },
    };
    vec![
        mk("neural", neural_realized, neural_interactions),
        mk(
            "conventional",
            conventional_realized,
            conventional_interactions,
        ),
    ]
}

/// Formats E3 rows.
pub fn e3_table(rows: &[E3Row]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec![
        "approach",
        "scenarios",
        "realized",
        "interactions",
        "per_realized",
    ];
    let data = rows
        .iter()
        .map(|r| {
            vec![
                r.approach.to_string(),
                r.scenarios.to_string(),
                r.realized.to_string(),
                r.interactions.to_string(),
                format!("{:.2}", r.per_realized),
            ]
        })
        .collect();
    (headers, data)
}

// ---- E4: representativeness ---------------------------------------------------

/// Representativeness of one approach (one row of the E4 table).
#[derive(Debug, Clone)]
pub struct E4Row {
    /// `"neural"` or `"conventional"`.
    pub approach: &'static str,
    /// Faults injected.
    pub faults: usize,
    /// Jensen–Shannon distance to the field profile.
    pub js_distance: f64,
    /// Distinct classes realized.
    pub classes: usize,
}

/// Runs E4: class-distribution distance to the field profile for
/// `n_faults` injections per approach.
pub fn run_e4(n_faults: usize, seed: u64) -> Vec<E4Row> {
    let field = metrics::field_profile();
    let mut rng = StdRng::seed_from_u64(seed);
    let scenarios = build_scenarios(0);
    let llm = FaultLlm::untrained(LlmConfig::default());

    // Neural: the tester *steers* scenario selection toward the field
    // profile (NL makes every class reachable on demand).
    let mut neural_counts: BTreeMap<FaultClass, usize> = BTreeMap::new();
    let classes: Vec<FaultClass> = field.keys().copied().collect();
    let weights: Vec<f64> = classes.iter().map(|c| field[c]).collect();
    for _ in 0..n_faults {
        let draw: f64 = rng.gen();
        let mut acc = 0.0;
        let mut chosen = classes[0];
        for (c, w) in classes.iter().zip(weights.iter()) {
            acc += w;
            if draw < acc {
                chosen = *c;
                break;
            }
        }
        let of_class: Vec<&Scenario> = scenarios.iter().filter(|s| s.intended == chosen).collect();
        let s = of_class[rng.gen_range(0..of_class.len())];
        let module = s.program.module().expect("corpus parses");
        let spec = nfi_nlp::analyze(&s.description, Some(&module));
        let cands = llm.candidates(&spec, &module);
        if let Some(c) = cands.iter().find(|c| c.class == chosen) {
            *neural_counts.entry(c.class).or_insert(0) += 1;
        } else if let Some(c) = cands.first() {
            *neural_counts.entry(c.class).or_insert(0) += 1;
        }
    }

    // Conventional: uniform sampling from the predefined model's plans.
    let mut conventional_counts: BTreeMap<FaultClass, usize> = BTreeMap::new();
    let mut all_plans = Vec::new();
    for program in nfi_corpus::all() {
        let module = program.module().expect("corpus parses");
        let campaign = Campaign::conventional(&module);
        all_plans.extend(campaign.plans().iter().map(|p| p.class).collect::<Vec<_>>());
    }
    for _ in 0..n_faults {
        let class = all_plans[rng.gen_range(0..all_plans.len())];
        *conventional_counts.entry(class).or_insert(0) += 1;
    }

    let neural_dist = metrics::distribution(&neural_counts);
    let conventional_dist = metrics::distribution(&conventional_counts);
    vec![
        E4Row {
            approach: "neural",
            faults: n_faults,
            js_distance: metrics::js_distance(&neural_dist, &field),
            classes: metrics::classes_covered(&neural_counts),
        },
        E4Row {
            approach: "conventional",
            faults: n_faults,
            js_distance: metrics::js_distance(&conventional_dist, &field),
            classes: metrics::classes_covered(&conventional_counts),
        },
    ]
}

/// Formats E4 rows.
pub fn e4_table(rows: &[E4Row]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec!["approach", "faults", "js_distance", "classes_covered"];
    let data = rows
        .iter()
        .map(|r| {
            vec![
                r.approach.to_string(),
                r.faults.to_string(),
                format!("{:.4}", r.js_distance),
                r.classes.to_string(),
            ]
        })
        .collect();
    (headers, data)
}

// ---- E5: injection funnel -------------------------------------------------------

/// The E5 funnel plus failure-mode breakdown.
#[derive(Debug, Clone, Default)]
pub struct E5Funnel {
    /// Scenarios attempted.
    pub attempted: usize,
    /// Generations produced.
    pub generated: usize,
    /// Snippets that reparse.
    pub parsed: usize,
    /// Snippets integrated into the codebase.
    pub integrated: usize,
    /// Faults with observable effect under test.
    pub activated: usize,
    /// Faults detected by the embedded suite.
    pub detected: usize,
    /// Failure-mode breakdown (by mode key).
    pub modes: BTreeMap<String, usize>,
}

/// Runs E5: the generation → integration → activation funnel.
pub fn run_e5(scenario_cap: usize) -> E5Funnel {
    run_e5_with(ExecConfig::default(), scenario_cap)
}

/// Per-scenario funnel stage flags (internal to E5).
#[derive(Default)]
struct E5Stage {
    generated: bool,
    parsed: bool,
    integrated: bool,
    activated: bool,
    detected: bool,
    mode: Option<String>,
}

/// [`run_e5`] on an explicit execution engine: scenarios fan across the
/// pool (each already owned an index-seeded generator), stage flags fold
/// into the funnel in scenario order. NLP runs through the per-program
/// batched engine; the experiment stage goes through the memo.
pub fn run_e5_with(exec: ExecConfig, scenario_cap: usize) -> E5Funnel {
    let scenarios = build_scenarios(scenario_cap);
    let pairs = spec_scenarios(&scenarios);
    let machine = experiment_machine();
    let stages = exec::par_map_indexed(exec, scenarios.len(), |i| {
        let mut stage = E5Stage::default();
        let (spec, module) = &pairs[i];
        let mut llm = FaultLlm::untrained(LlmConfig {
            seed: i as u64,
            ..LlmConfig::default()
        });
        let Some(fault) = llm.generate(spec, module) else {
            return stage;
        };
        stage.generated = true;
        if nfi_pylite::parse(&fault.snippet).is_err() {
            return stage;
        }
        stage.parsed = true;
        let Ok(faulty) = nfi_inject::integrate_snippet(module, &fault.snippet) else {
            return stage;
        };
        stage.integrated = true;
        let report = nfi_inject::run_experiment_memo(module, &faulty, &machine);
        stage.activated = report.activated;
        stage.detected = report.detected;
        stage.mode = Some(report.overall.key().to_string());
        stage
    });

    let mut funnel = E5Funnel {
        attempted: scenarios.len(),
        ..E5Funnel::default()
    };
    for stage in stages {
        funnel.generated += stage.generated as usize;
        funnel.parsed += stage.parsed as usize;
        funnel.integrated += stage.integrated as usize;
        funnel.activated += stage.activated as usize;
        funnel.detected += stage.detected as usize;
        if let Some(mode) = stage.mode {
            *funnel.modes.entry(mode).or_insert(0) += 1;
        }
    }
    funnel
}

/// Formats the E5 funnel.
pub fn e5_table(f: &E5Funnel) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec!["stage", "count", "fraction"];
    let frac = |n: usize| {
        if f.attempted == 0 {
            "0.000".to_string()
        } else {
            format!("{:.3}", n as f64 / f.attempted as f64)
        }
    };
    let mut data = vec![
        vec!["attempted".into(), f.attempted.to_string(), "1.000".into()],
        vec![
            "generated".into(),
            f.generated.to_string(),
            frac(f.generated),
        ],
        vec!["parsed".into(), f.parsed.to_string(), frac(f.parsed)],
        vec![
            "integrated".into(),
            f.integrated.to_string(),
            frac(f.integrated),
        ],
        vec![
            "activated".into(),
            f.activated.to_string(),
            frac(f.activated),
        ],
        vec!["detected".into(), f.detected.to_string(), frac(f.detected)],
    ];
    for (mode, count) in &f.modes {
        data.push(vec![
            format!("mode:{mode}"),
            count.to_string(),
            frac(*count),
        ]);
    }
    (headers, data)
}

// ---- E6: fine-tuning learning curve ----------------------------------------------

/// One point of the E6 learning curve.
#[derive(Debug, Clone)]
pub struct E6Row {
    /// Fine-tuning records used.
    pub size: usize,
    /// Eval-set perplexity of the token LM.
    pub eval_perplexity: f64,
    /// Top-1 retrieval class accuracy on the eval set.
    pub retrieval_accuracy: f64,
}

/// Runs E6: LM perplexity and retrieval accuracy vs. dataset size.
pub fn run_e6(sizes: &[usize], eval_n: usize, seed: u64) -> Vec<E6Row> {
    run_e6_with(ExecConfig::default(), sizes, eval_n, seed)
}

/// [`run_e6`] on an explicit execution engine: dataset sizes fan across
/// the pool, each size fine-tuning its own generator from the shared
/// training pool.
pub fn run_e6_with(exec: ExecConfig, sizes: &[usize], eval_n: usize, seed: u64) -> Vec<E6Row> {
    let max = sizes.iter().copied().max().unwrap_or(64);
    let per_program = (max + eval_n) / nfi_corpus::all().len() + 2;
    let ds = nfi_dataset::generate(
        nfi_corpus::all(),
        &nfi_dataset::DatasetConfig {
            per_program_cap: per_program,
            seed,
        },
    );
    let (mut train_pool, _) = ds.split(1.0, seed);
    // Hold out the tail as the eval set.
    let eval: Vec<_> = train_pool
        .split_off(train_pool.len().saturating_sub(eval_n))
        .into_iter()
        .collect();
    let eval_sequences: Vec<Vec<String>> =
        eval.iter().map(|r| code_tokens(&r.code_after)).collect();

    exec::par_map(exec, sizes, |&size| {
        let take = size.min(train_pool.len());
        let records: Vec<_> = train_pool[..take].iter().map(|r| r.to_training()).collect();
        let mut llm = FaultLlm::untrained(LlmConfig {
            seed,
            ..LlmConfig::default()
        });
        llm.fine_tune(records);
        let ppl = llm
            .lm()
            .map(|lm| lm.perplexity(&eval_sequences))
            .unwrap_or(f64::INFINITY);
        let mut correct = 0usize;
        for r in &eval {
            if let Some((hit, _)) = llm.corpus().retrieve(&r.description, 1).first() {
                if hit.class == r.class {
                    correct += 1;
                }
            }
        }
        E6Row {
            size: take,
            eval_perplexity: ppl,
            retrieval_accuracy: if eval.is_empty() {
                0.0
            } else {
                correct as f64 / eval.len() as f64
            },
        }
    })
}

/// Formats E6 rows.
pub fn e6_table(rows: &[E6Row]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec!["dataset_size", "eval_perplexity", "retrieval_acc"];
    let data = rows
        .iter()
        .map(|r| {
            vec![
                r.size.to_string(),
                format!("{:.2}", r.eval_perplexity),
                format!("{:.3}", r.retrieval_accuracy),
            ]
        })
        .collect();
    (headers, data)
}

// ---- E7: pipeline throughput -------------------------------------------------------

/// Mean per-stage latency of the pipeline (microseconds).
#[derive(Debug, Clone, Default)]
pub struct E7Row {
    /// Scenarios measured.
    pub scenarios: usize,
    /// Mean NLP-stage latency.
    pub nlp_us: f64,
    /// Mean generation latency.
    pub generate_us: f64,
    /// Mean integration latency.
    pub integrate_us: f64,
    /// Mean test-stage latency.
    pub test_us: f64,
    /// End-to-end scenarios per second.
    pub throughput_per_s: f64,
}

/// Runs E7: per-stage latency and end-to-end throughput.
pub fn run_e7(scenario_cap: usize) -> E7Row {
    run_e7_with(ExecConfig::default(), scenario_cap)
}

/// [`run_e7`] on an explicit execution engine: each scenario runs a
/// fresh index-seeded injector, fanned across the pool. The NLP stage
/// goes through one shared batched [`nfi_nlp::Analyzer`] per program —
/// the symbol index is built per program, outside the measured loop —
/// so `nlp_us` reflects the amortized per-description cost. Scenario
/// outcomes (success count, generated faults) are thread-count
/// invariant; wall-clock throughput scales with the worker count.
pub fn run_e7_with(exec: ExecConfig, scenario_cap: usize) -> E7Row {
    let scenarios = build_scenarios(scenario_cap);
    let analyzers = scenario_analyzers(&scenarios);
    let started = std::time::Instant::now();
    let timings = exec::par_map_indexed(exec, scenarios.len(), |i| {
        let s = &scenarios[i];
        let (module, analyzer) = &analyzers[s.program.name];
        let mut injector = NeuralFaultInjector::new(PipelineConfig {
            machine: experiment_machine(),
            llm: LlmConfig {
                seed: i as u64,
                ..LlmConfig::default()
            },
        });
        let t = std::time::Instant::now();
        let spec = analyzer.analyze(&s.description);
        let nlp_us = t.elapsed().as_micros();
        injector
            .inject_prepared(spec, nlp_us, module)
            .ok()
            .map(|report| report.timings)
    });
    let elapsed = started.elapsed().as_secs_f64();

    let mut row = E7Row {
        scenarios: 0,
        ..E7Row::default()
    };
    for t in timings.into_iter().flatten() {
        row.scenarios += 1;
        row.nlp_us += t.nlp_us as f64;
        row.generate_us += t.generate_us as f64;
        row.integrate_us += t.integrate_us as f64;
        row.test_us += t.test_us as f64;
    }
    if row.scenarios > 0 {
        let n = row.scenarios as f64;
        row.nlp_us /= n;
        row.generate_us /= n;
        row.integrate_us /= n;
        row.test_us /= n;
        row.throughput_per_s = n / elapsed.max(1e-9);
    }
    row
}

/// Formats the E7 row.
pub fn e7_table(r: &E7Row) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec!["stage", "mean_us"];
    let data = vec![
        vec!["nlp".into(), format!("{:.1}", r.nlp_us)],
        vec!["generate".into(), format!("{:.1}", r.generate_us)],
        vec!["integrate".into(), format!("{:.1}", r.integrate_us)],
        vec!["test".into(), format!("{:.1}", r.test_us)],
        vec!["throughput/s".into(), format!("{:.1}", r.throughput_per_s)],
    ];
    (headers, data)
}

// ---- E8: ablations ------------------------------------------------------------------

/// One ablation variant result.
#[derive(Debug, Clone)]
pub struct E8Row {
    /// Variant name.
    pub variant: &'static str,
    /// Mean rating over the final two iterations.
    pub final_rating: f64,
    /// Acceptance over the final two iterations.
    pub final_acceptance: f64,
}

/// Runs E8: ablations of the full system.
///
/// * `full` — the complete RLHF loop.
/// * `no_rlhf` — policy never updated (`policy_lr = 0`).
/// * `direct_rating` — policy updated with raw ratings, no reward model.
/// * `no_nlp_spec` — structured spec stripped to raw text before
///   generation (no class, no target).
pub fn run_e8(scenario_cap: usize, iterations: usize) -> Vec<E8Row> {
    run_e8_with(ExecConfig::default(), scenario_cap, iterations)
}

/// [`run_e8`] on an explicit execution engine: the four self-contained
/// ablation variants fan across the pool.
pub fn run_e8_with(exec: ExecConfig, scenario_cap: usize, iterations: usize) -> Vec<E8Row> {
    let scenarios = build_scenarios(scenario_cap);
    let pairs = spec_scenarios(&scenarios);
    let stripped: Vec<(FaultSpec, Module)> = pairs
        .iter()
        .map(|(spec, m)| {
            let mut s = spec.clone();
            s.class = None;
            s.secondary_class = None;
            s.target_function = None;
            (s, m.clone())
        })
        .collect();

    let final2 = |stats: &[nfi_rlhf::IterationStats]| -> (f64, f64) {
        let tail = &stats[stats.len().saturating_sub(2)..];
        let r = tail.iter().map(|s| s.mean_rating).sum::<f64>() / tail.len().max(1) as f64;
        let a = tail.iter().map(|s| s.acceptance).sum::<f64>() / tail.len().max(1) as f64;
        (r, a)
    };

    let variants: [&'static str; 4] = ["full", "no_rlhf", "direct_rating", "no_nlp_spec"];
    exec::par_map(exec, &variants, |&variant| {
        let mut llm = FaultLlm::untrained(LlmConfig::default());
        let tester = SimulatedTester::new(TargetProfile::wants_retry(), 5);
        let stats = match variant {
            // The complete RLHF loop.
            "full" => {
                let mut trainer = RlhfTrainer::new(RlhfConfig {
                    iterations,
                    ..RlhfConfig::default()
                });
                trainer.run(&mut llm, &pairs, &tester)
            }
            // Policy never updated.
            "no_rlhf" => {
                let mut trainer = RlhfTrainer::new(RlhfConfig {
                    iterations,
                    policy_lr: 0.0,
                    ..RlhfConfig::default()
                });
                trainer.run(&mut llm, &pairs, &tester)
            }
            // REINFORCE on raw ratings, no reward model.
            "direct_rating" => {
                let mut rng = StdRng::seed_from_u64(0x5EED);
                let mut stats = Vec::new();
                for iteration in 0..iterations {
                    let mut ratings = Vec::new();
                    let mut accepted = 0usize;
                    for (spec, module) in &pairs {
                        let cands = llm.candidates(spec, module);
                        if cands.is_empty() {
                            continue;
                        }
                        let u: f32 = rng.gen();
                        let (idx, _) = llm.policy().choose(&cands, u);
                        let rating = tester.rate_candidate(&cands[idx], cands[idx].features[0]);
                        ratings.push(rating as f64);
                        if rating >= 4.0 {
                            accepted += 1;
                        }
                        llm.policy_mut()
                            .reinforce(&cands, idx, (rating - 3.0) / 2.0, 0.15);
                    }
                    stats.push(nfi_rlhf::IterationStats {
                        iteration,
                        mean_rating: ratings.iter().sum::<f64>() / ratings.len().max(1) as f64,
                        acceptance: accepted as f64 / ratings.len().max(1) as f64,
                        mean_reward: 0.0,
                        reward_accuracy: 0.0,
                    });
                }
                stats
            }
            // Structured spec stripped to raw text before generation.
            _ => {
                let mut trainer = RlhfTrainer::new(RlhfConfig {
                    iterations,
                    ..RlhfConfig::default()
                });
                trainer.run(&mut llm, &stripped, &tester)
            }
        };
        let (r, a) = final2(&stats);
        E8Row {
            variant,
            final_rating: r,
            final_acceptance: a,
        }
    })
}

/// Formats E8 rows.
pub fn e8_table(rows: &[E8Row]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec!["variant", "final_rating", "final_acceptance"];
    let data = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.to_string(),
                format!("{:.3}", r.final_rating),
                format!("{:.3}", r.final_acceptance),
            ]
        })
        .collect();
    (headers, data)
}
