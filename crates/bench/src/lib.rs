//! # nfi-bench — experiment drivers for the evaluation suite
//!
//! The paper is a vision paper with no quantitative tables; DESIGN.md §3
//! derives the experiment suite (E1–E8) its §IV/§V commit to. This crate
//! hosts the *drivers* that regenerate each experiment's table/series:
//! criterion bench targets print the tables and measure the core
//! operations; the workspace integration tests assert the qualitative
//! shapes on smaller configurations.

pub mod experiments;
pub mod scenarios;
pub mod throughput;

pub use scenarios::{build_scenarios, Scenario};

/// Renders an ASCII table (used by bench binaries to print each
/// experiment's rows the way the paper would report them).
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:<w$}", w = widths[i]))
        .collect();
    out.push_str(&header_line.join("  "));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<w$}", w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_with_alignment() {
        let t = render_table(
            "T",
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(t.contains("== T =="));
        assert!(t.contains("long-header"));
        assert!(t.lines().count() >= 5);
    }
}
