//! E7 — pipeline throughput and per-stage latency (paper §IV-2).

use criterion::{criterion_group, criterion_main, Criterion};
use nfi_bench::experiments::{e7_table, run_e7};
use nfi_bench::render_table;

fn bench(c: &mut Criterion) {
    let row = run_e7(0);
    let (headers, data) = e7_table(&row);
    println!(
        "{}",
        render_table("E7: pipeline stage latency / throughput", &headers, &data)
    );
    let mut g = c.benchmark_group("e7");
    g.sample_size(10);
    g.bench_function("end_to_end_injection", |b| {
        b.iter(|| run_e7(4));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
