//! E8 — ablations: full system vs no-RLHF vs direct-rating vs stripped
//! NLP spec (design choices called out in DESIGN.md §3).

use criterion::{criterion_group, criterion_main, Criterion};
use nfi_bench::experiments::{e8_table, run_e8};
use nfi_bench::render_table;

fn bench(c: &mut Criterion) {
    let rows = run_e8(24, 10);
    let (headers, data) = e8_table(&rows);
    println!("{}", render_table("E8: ablations", &headers, &data));
    let mut g = c.benchmark_group("e8");
    g.sample_size(10);
    g.bench_function("ablation_round_4_scenarios", |b| {
        b.iter(|| run_e8(4, 2));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
