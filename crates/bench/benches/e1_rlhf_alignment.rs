//! E1 — RLHF alignment curve: tester rating / acceptance / reward vs.
//! feedback iteration (paper §III-B3, §IV-3).

use criterion::{criterion_group, criterion_main, Criterion};
use nfi_bench::experiments::{e1_table, run_e1};
use nfi_bench::render_table;

fn bench(c: &mut Criterion) {
    let rows = run_e1(24, 12, &[1, 2, 3]);
    let (headers, data) = e1_table(&rows);
    println!(
        "{}",
        render_table(
            "E1: RLHF alignment (rating/acceptance vs iteration)",
            &headers,
            &data
        )
    );
    let mut g = c.benchmark_group("e1");
    g.sample_size(10);
    g.bench_function("rlhf_iteration_4_scenarios", |b| {
        b.iter(|| run_e1(4, 1, &[1]));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
