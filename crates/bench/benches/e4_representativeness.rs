//! E4 — representativeness: Jensen–Shannon distance between injected
//! fault-class distributions and the field profile (paper §II-1).

use criterion::{criterion_group, criterion_main, Criterion};
use nfi_bench::experiments::{e4_table, run_e4};
use nfi_bench::render_table;

fn bench(c: &mut Criterion) {
    let rows = run_e4(500, 9);
    let (headers, data) = e4_table(&rows);
    println!(
        "{}",
        render_table(
            "E4: representativeness (JS distance to field profile)",
            &headers,
            &data
        )
    );
    let mut g = c.benchmark_group("e4");
    g.sample_size(10);
    g.bench_function("representativeness_100_faults", |b| {
        b.iter(|| run_e4(100, 9));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
