//! E5 — injection funnel: generated → parsed → integrated → activated →
//! detected, with failure-mode breakdown (paper §III-B4).

use criterion::{criterion_group, criterion_main, Criterion};
use nfi_bench::experiments::{e5_table, run_e5};
use nfi_bench::render_table;

fn bench(c: &mut Criterion) {
    let funnel = run_e5(0);
    let (headers, data) = e5_table(&funnel);
    println!(
        "{}",
        render_table(
            "E5: injection success funnel + failure modes",
            &headers,
            &data
        )
    );
    let mut g = c.benchmark_group("e5");
    g.sample_size(10);
    g.bench_function("funnel_8_scenarios", |b| {
        b.iter(|| {
            // The driver memoizes experiments process-wide; clear so
            // every sample measures driver work, not cache replay.
            nfi_inject::ExperimentCache::global().clear();
            run_e5(8)
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
