//! E3 — tester effort: interactions per realized fault, neural vs.
//! conventional workflow (paper §II-3).

use criterion::{criterion_group, criterion_main, Criterion};
use nfi_bench::experiments::{e3_table, run_e3};
use nfi_bench::render_table;

fn bench(c: &mut Criterion) {
    let rows = run_e3(48, 6);
    let (headers, data) = e3_table(&rows);
    println!(
        "{}",
        render_table(
            "E3: tester effort (interactions per realized fault)",
            &headers,
            &data
        )
    );
    let mut g = c.benchmark_group("e3");
    g.sample_size(10);
    g.bench_function("effort_4_scenarios", |b| {
        b.iter(|| run_e3(4, 3));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
