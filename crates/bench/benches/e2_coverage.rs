//! E2 — fault-class coverage: scenarios expressible by the neural tool
//! vs. the conventional predefined fault model (paper §II-1, §IV-3).

use criterion::{criterion_group, criterion_main, Criterion};
use nfi_bench::experiments::{e2_table, run_e2};
use nfi_bench::render_table;

fn bench(c: &mut Criterion) {
    let rows = run_e2(0);
    let (headers, data) = e2_table(&rows);
    println!(
        "{}",
        render_table(
            "E2: fault-class coverage (neural vs conventional)",
            &headers,
            &data
        )
    );
    let mut g = c.benchmark_group("e2");
    g.sample_size(10);
    g.bench_function("coverage_8_scenarios", |b| {
        b.iter(|| {
            // The driver memoizes experiments process-wide; clear so
            // every sample measures driver work, not cache replay.
            nfi_inject::ExperimentCache::global().clear();
            run_e2(8)
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
