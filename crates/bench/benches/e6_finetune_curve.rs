//! E6 — fine-tuning learning curve: token-LM perplexity and retrieval
//! accuracy vs. dataset size (paper §IV-1).

use criterion::{criterion_group, criterion_main, Criterion};
use nfi_bench::experiments::{e6_table, run_e6};
use nfi_bench::render_table;

fn bench(c: &mut Criterion) {
    let rows = run_e6(&[64, 128, 256, 512, 1024], 100, 3);
    let (headers, data) = e6_table(&rows);
    println!(
        "{}",
        render_table("E6: fine-tuning learning curve", &headers, &data)
    );
    let mut g = c.benchmark_group("e6");
    g.sample_size(10);
    g.bench_function("fine_tune_64_records", |b| {
        b.iter(|| run_e6(&[64], 20, 3));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
