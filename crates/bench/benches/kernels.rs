//! Criterion micro-benchmarks for the hot kernels: batched vs.
//! per-example LM training, GEMM vs. matvec, campaign plan application.
//!
//! Run with `cargo bench -p nfi-bench`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nfi_neural::lm::{code_tokens, LmConfig, NgramLm, DEFAULT_BATCH};
use nfi_neural::tensor::Matrix;
use nfi_sfi::Campaign;

fn snippet_corpus() -> Vec<Vec<String>> {
    nfi_corpus::all()
        .iter()
        .map(|p| code_tokens(p.source))
        .collect()
}

fn bench_matmul(c: &mut Criterion) {
    let x = Matrix::xavier(64, 48, 1);
    let w = Matrix::xavier(128, 48, 2);
    c.bench_function("tensor/matmul_nt 64x48 * 128x48", |b| {
        b.iter(|| black_box(x.matmul_nt(&w)))
    });
    c.bench_function("tensor/matvec x64 loop", |b| {
        b.iter(|| {
            for e in 0..64 {
                black_box(w.matvec(x.row(e)));
            }
        })
    });
}

fn bench_lm_training(c: &mut Criterion) {
    let corpus = snippet_corpus();
    c.bench_function("lm/train_epoch per-example", |b| {
        let mut lm = NgramLm::new(&corpus, LmConfig::default());
        b.iter(|| black_box(lm.train_epoch(&corpus, 0.05)))
    });
    c.bench_function("lm/train_epoch_batched", |b| {
        let mut lm = NgramLm::new(&corpus, LmConfig::default());
        let ids = lm.encode_corpus(&corpus);
        b.iter(|| black_box(lm.train_epoch_batched(&ids, 0.05, DEFAULT_BATCH)))
    });
}

fn bench_campaign_apply(c: &mut Criterion) {
    let module = nfi_corpus::by_name("ecommerce").unwrap().module().unwrap();
    let campaign = Campaign::full(&module);
    c.bench_function("campaign/apply all plans", |b| {
        b.iter(|| {
            for plan in campaign.plans() {
                black_box(campaign.apply(plan));
            }
        })
    });
}

criterion_group!(
    kernels,
    bench_matmul,
    bench_lm_training,
    bench_campaign_apply
);
criterion_main!(kernels);
