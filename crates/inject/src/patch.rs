//! Patching: splice generated snippets into a target codebase.

use nfi_pylite::ast::{Module, Stmt, StmtKind};
use nfi_pylite::{parse, PyliteError};
use std::fmt;

/// Why a patch could not be applied.
#[derive(Debug, Clone, PartialEq)]
pub enum PatchError {
    /// The snippet failed to parse.
    Snippet(PyliteError),
    /// The snippet did not contain anything integrable.
    EmptySnippet,
    /// A function replacement target does not exist in the codebase.
    NoSuchFunction(String),
}

impl fmt::Display for PatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatchError::Snippet(e) => write!(f, "snippet does not parse: {e}"),
            PatchError::EmptySnippet => write!(f, "snippet contains no statements"),
            PatchError::NoSuchFunction(n) => {
                write!(f, "codebase has no function `{n}` to replace")
            }
        }
    }
}

impl std::error::Error for PatchError {}

/// Replaces the body of the named function with a replacement `def`.
///
/// # Errors
///
/// Returns [`PatchError::NoSuchFunction`] when the codebase has no
/// function with that name.
pub fn replace_function(
    codebase: &Module,
    name: &str,
    replacement: &Stmt,
) -> Result<Module, PatchError> {
    let mut m = codebase.clone();
    let slot = m
        .body
        .iter_mut()
        .find(|s| matches!(&s.kind, StmtKind::Def { name: n, .. } if n == name))
        .ok_or_else(|| PatchError::NoSuchFunction(name.to_string()))?;
    *slot = replacement.clone();
    m.renumber();
    Ok(m)
}

/// Integrates a reviewed snippet into the codebase:
///
/// * every `def` in the snippet replaces the same-named function in the
///   codebase (or is appended when new),
/// * any other top-level statements are prepended as new initialization.
///
/// This mirrors the paper's "seamless" integration step: the tester
/// reviews a code snippet and the tool places it in its designated
/// context.
///
/// # Errors
///
/// Returns [`PatchError::Snippet`] for unparseable snippets and
/// [`PatchError::EmptySnippet`] for empty ones.
pub fn integrate_snippet(codebase: &Module, snippet: &str) -> Result<Module, PatchError> {
    let parsed = parse(snippet).map_err(PatchError::Snippet)?;
    if parsed.body.is_empty() {
        return Err(PatchError::EmptySnippet);
    }
    let mut m = codebase.clone();
    let mut init_cursor = 0usize;
    for stmt in parsed.body {
        match &stmt.kind {
            StmtKind::Def { name, .. } => {
                let existing = m
                    .body
                    .iter_mut()
                    .find(|s| matches!(&s.kind, StmtKind::Def { name: n, .. } if n == name));
                match existing {
                    Some(slot) => *slot = stmt,
                    None => m.body.push(stmt),
                }
            }
            _ => {
                m.body.insert(init_cursor, stmt);
                init_cursor += 1;
            }
        }
    }
    m.renumber();
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfi_pylite::{print_module, Machine, MachineConfig};

    const BASE: &str = "\
count = 0
def bump():
    global count
    count = count + 1
    return count
def test_bump():
    assert bump() == 1
";

    #[test]
    fn replace_function_swaps_definition() {
        let base = parse(BASE).unwrap();
        let snippet = parse("def bump():\n    return 99\n").unwrap();
        let m = replace_function(&base, "bump", &snippet.body[0]).unwrap();
        let mut machine = Machine::new(MachineConfig::default());
        machine.run_module(&m).unwrap();
        let out = machine.call("bump", vec![]).unwrap();
        assert!(out.return_value.unwrap().py_eq(&nfi_pylite::Value::Int(99)));
    }

    #[test]
    fn replace_missing_function_errors() {
        let base = parse(BASE).unwrap();
        let snippet = parse("def nope():\n    pass\n").unwrap();
        let err = replace_function(&base, "nope", &snippet.body[0]).unwrap_err();
        assert_eq!(err, PatchError::NoSuchFunction("nope".to_string()));
    }

    #[test]
    fn integrate_snippet_replaces_and_appends() {
        let base = parse(BASE).unwrap();
        let m = integrate_snippet(
            &base,
            "def bump():\n    global count\n    count = count + 2\n    return count\ndef helper():\n    return 7\n",
        )
        .unwrap();
        let printed = print_module(&m);
        assert!(printed.contains("count = count + 2"));
        assert!(printed.contains("def helper():"));
        // Replacement happened in place; no duplicate bump definitions.
        assert_eq!(printed.matches("def bump():").count(), 1);
    }

    #[test]
    fn integrate_snippet_prepends_initialization() {
        let base = parse(BASE).unwrap();
        let m = integrate_snippet(&base, "injected_flag = True\n").unwrap();
        assert!(print_module(&m).starts_with("injected_flag = True"));
    }

    #[test]
    fn integrated_module_still_runs_tests() {
        let base = parse(BASE).unwrap();
        let m = integrate_snippet(&base, "def bump():\n    return 1\n").unwrap();
        let mut machine = Machine::new(MachineConfig::default());
        machine.run_module(&m).unwrap();
        let out = machine.call("test_bump", vec![]).unwrap();
        assert!(matches!(out.status, nfi_pylite::RunStatus::Completed));
    }

    #[test]
    fn bad_snippet_is_an_error() {
        let base = parse(BASE).unwrap();
        assert!(matches!(
            integrate_snippet(&base, "def oops(:\n"),
            Err(PatchError::Snippet(_))
        ));
        assert!(matches!(
            integrate_snippet(&base, ""),
            Err(PatchError::EmptySnippet)
        ));
    }
}
