//! Schedule exploration: run experiments across many scheduler seeds.
//!
//! Concurrency faults are schedule-dependent — a race window may only be
//! hit under some interleavings. The PyLite machine's scheduler is
//! seed-deterministic, so sweeping seeds explores distinct interleavings
//! reproducibly (a lightweight systematic-concurrency-testing loop).

use crate::classify::{most_severe, FailureMode};
use crate::experiment::ExperimentReport;
use crate::memo::ExperimentCache;
use nfi_pylite::{fingerprint, Machine, MachineConfig, Module};
use std::collections::BTreeMap;

/// Aggregated result of a multi-seed exploration.
#[derive(Debug, Clone)]
pub struct ExplorationReport {
    /// Seeds explored.
    pub seeds: Vec<u64>,
    /// Most severe mode observed per seed.
    pub per_seed: Vec<(u64, FailureMode)>,
    /// Most severe mode over all seeds.
    pub overall: FailureMode,
    /// Seeds under which the fault activated.
    pub activating_seeds: Vec<u64>,
    /// Mode frequency across seeds.
    pub mode_counts: BTreeMap<String, usize>,
}

impl ExplorationReport {
    /// Fraction of schedules under which the fault activated.
    pub fn activation_ratio(&self) -> f64 {
        if self.seeds.is_empty() {
            0.0
        } else {
            self.activating_seeds.len() as f64 / self.seeds.len() as f64
        }
    }

    /// Whether the observed failure mode depends on the schedule.
    pub fn schedule_sensitive(&self) -> bool {
        self.mode_counts.len() > 1
    }
}

/// Runs the differential experiment under each scheduler seed and
/// aggregates the outcomes.
///
/// Experiments route through the process-wide [`ExperimentCache`]: the
/// modules are fingerprinted once per exploration, and a seed already
/// explored for this (pristine, faulty) pair — by an earlier sweep or
/// an overlapping driver — is replayed from the memo instead of
/// re-executed. Both modules compile once for the whole sweep (the
/// compiled-code cache), and every seed that does execute runs on one
/// machine whose per-run state is reset between runs — the sweep's
/// only per-seed cost is execution itself.
pub fn explore_schedules(
    pristine: &Module,
    faulty: &Module,
    base: &MachineConfig,
    seeds: &[u64],
) -> ExplorationReport {
    let cache = ExperimentCache::global();
    let pristine_fp = fingerprint(pristine);
    let faulty_fp = fingerprint(faulty);
    let mut machine = Machine::new(base.clone());
    let mut per_seed = Vec::new();
    let mut activating = Vec::new();
    let mut mode_counts: BTreeMap<String, usize> = BTreeMap::new();
    for &seed in seeds {
        let config = MachineConfig {
            seed,
            ..base.clone()
        };
        let report: ExperimentReport = cache.run_keyed_in(
            &mut machine,
            pristine,
            faulty,
            pristine_fp,
            faulty_fp,
            &config,
        );
        if report.activated {
            activating.push(seed);
        }
        *mode_counts
            .entry(report.overall.key().to_string())
            .or_insert(0) += 1;
        per_seed.push((seed, report.overall));
    }
    let modes: Vec<FailureMode> = per_seed.iter().map(|(_, m)| m.clone()).collect();
    ExplorationReport {
        seeds: seeds.to_vec(),
        overall: most_severe(&modes),
        per_seed,
        activating_seeds: activating,
        mode_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfi_pylite::parse;

    fn config() -> MachineConfig {
        MachineConfig {
            step_budget: 150_000,
            quantum: 5,
            ..MachineConfig::default()
        }
    }

    /// A schedule-dependent fault: the assertion only fails when the two
    /// unsynchronized workers interleave badly.
    const RACY: &str = "\
counter = 0
def work():
    global counter
    for i in range(30):
        counter = counter + 1
def test_total():
    t1 = spawn(work)
    t2 = spawn(work)
    join(t1)
    join(t2)
    assert counter == 60
";

    /// The pristine version protects the counter with a lock.
    const SAFE: &str = "\
counter = 0
m = lock()
def work():
    global counter
    for i in range(30):
        m.acquire()
        counter = counter + 1
        m.release()
def test_total():
    t1 = spawn(work)
    t2 = spawn(work)
    join(t1)
    join(t2)
    assert counter == 60
";

    #[test]
    fn exploration_finds_the_race_across_seeds() {
        let pristine = parse(SAFE).unwrap();
        let faulty = parse(RACY).unwrap();
        let seeds: Vec<u64> = (0..8).collect();
        let report = explore_schedules(&pristine, &faulty, &config(), &seeds);
        assert!(
            !report.activating_seeds.is_empty(),
            "some schedule must expose the race: {:?}",
            report.mode_counts
        );
        // The race detector flags the unsynchronized counter on every
        // schedule, so the overall verdict is at least a data race.
        assert!(report.overall.severity() >= FailureMode::DataRace.severity());
    }

    #[test]
    fn deterministic_fault_is_schedule_insensitive() {
        let pristine =
            parse("def f():\n    return 1\ndef test_f():\n    assert f() == 1\n").unwrap();
        let faulty = parse("def f():\n    return 2\ndef test_f():\n    assert f() == 1\n").unwrap();
        let report = explore_schedules(&pristine, &faulty, &config(), &[1, 2, 3, 4]);
        assert!(!report.schedule_sensitive(), "{:?}", report.mode_counts);
        assert_eq!(report.activation_ratio(), 1.0);
        assert_eq!(report.overall, FailureMode::WrongOutput);
    }

    #[test]
    fn empty_seed_list_is_safe() {
        let m = parse("x = 1\n").unwrap();
        let report = explore_schedules(&m, &m, &config(), &[]);
        assert_eq!(report.overall, FailureMode::NoEffect);
        assert_eq!(report.activation_ratio(), 0.0);
    }
}
