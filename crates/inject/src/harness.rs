//! The test harness: run a module's embedded `test_*` suite.
//!
//! Each test executes on a fresh machine (fresh globals, clock, and
//! detector state) so tests are isolated, exactly like the corpus
//! verification suite.

use nfi_pylite::analysis::ModuleIndex;
use nfi_pylite::{Machine, MachineConfig, Module, RunOutcome, RunStatus};

/// The outcome of one test function.
#[derive(Debug, Clone)]
pub struct TestResult {
    /// Test function name.
    pub name: String,
    /// Full run outcome (status, detectors, output).
    pub outcome: RunOutcome,
    /// Whether the module body itself failed before the test ran.
    pub module_failed: bool,
}

impl TestResult {
    /// Whether the test passed (module loaded and test completed with no
    /// failures anywhere).
    pub fn passed(&self) -> bool {
        !self.module_failed && self.outcome.clean()
    }
}

/// The outcome of a whole suite.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// Per-test results, in discovery order.
    pub tests: Vec<TestResult>,
}

impl SuiteReport {
    /// Number of passing tests.
    pub fn passed(&self) -> usize {
        self.tests.iter().filter(|t| t.passed()).count()
    }

    /// Number of failing tests.
    pub fn failed(&self) -> usize {
        self.tests.len() - self.passed()
    }

    /// Whether every test passed.
    pub fn all_passed(&self) -> bool {
        self.failed() == 0
    }
}

/// Runs the module's `test_*` suite, one fresh machine per test.
///
/// When the module body itself fails (e.g. a module-level injected
/// fault), each test is reported as failed with `module_failed` set —
/// the suite cannot even load.
pub fn run_suite(module: &Module, config: &MachineConfig) -> SuiteReport {
    let index = ModuleIndex::build(module);
    let mut tests = Vec::new();
    for name in index.test_functions() {
        let mut machine = Machine::new(config.clone());
        let module_out = match machine.run_module(module) {
            Ok(out) => out,
            Err(_) => {
                // Compile error: report as module failure with an empty
                // outcome placeholder.
                tests.push(TestResult {
                    name: name.to_string(),
                    outcome: RunOutcome {
                        status: RunStatus::Completed,
                        output: String::new(),
                        races: Vec::new(),
                        overflows: Vec::new(),
                        leaks: Vec::new(),
                        task_failures: Vec::new(),
                        steps: 0,
                        vtime: 0.0,
                        return_value: None,
                    },
                    module_failed: true,
                });
                continue;
            }
        };
        if !matches!(module_out.status, RunStatus::Completed) {
            tests.push(TestResult {
                name: name.to_string(),
                outcome: module_out,
                module_failed: true,
            });
            continue;
        }
        match machine.call(name, vec![]) {
            Ok(outcome) => tests.push(TestResult {
                name: name.to_string(),
                outcome,
                module_failed: false,
            }),
            Err(_) => tests.push(TestResult {
                name: name.to_string(),
                outcome: module_out,
                module_failed: true,
            }),
        }
    }
    SuiteReport { tests }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfi_pylite::parse;

    #[test]
    fn passing_suite_reports_all_green() {
        let m = parse(
            "def add(a, b):\n    return a + b\ndef test_one():\n    assert add(1, 1) == 2\ndef test_two():\n    assert add(2, 3) == 5\n",
        )
        .unwrap();
        let report = run_suite(&m, &MachineConfig::default());
        assert_eq!(report.tests.len(), 2);
        assert!(report.all_passed());
    }

    #[test]
    fn assertion_failures_are_reported() {
        let m = parse(
            "def add(a, b):\n    return a + b + 1\ndef test_one():\n    assert add(1, 1) == 2\n",
        )
        .unwrap();
        let report = run_suite(&m, &MachineConfig::default());
        assert_eq!(report.failed(), 1);
        match &report.tests[0].outcome.status {
            RunStatus::Uncaught(info) => assert_eq!(info.kind, "AssertionError"),
            other => panic!("expected assertion failure, got {other:?}"),
        }
    }

    #[test]
    fn module_level_crash_fails_every_test() {
        let m = parse("raise RuntimeError(\"boot failure\")\ndef test_one():\n    assert True\n")
            .unwrap();
        let report = run_suite(&m, &MachineConfig::default());
        assert_eq!(report.tests.len(), 1);
        assert!(report.tests[0].module_failed);
        assert!(!report.tests[0].passed());
    }

    #[test]
    fn suite_without_tests_is_empty() {
        let m = parse("x = 1\n").unwrap();
        let report = run_suite(&m, &MachineConfig::default());
        assert!(report.tests.is_empty());
        assert!(report.all_passed());
    }

    #[test]
    fn hanging_test_is_bounded_by_step_budget() {
        let m = parse("def spin():\n    while True:\n        pass\ndef test_spin():\n    spin()\n")
            .unwrap();
        let config = MachineConfig {
            step_budget: 20_000,
            ..MachineConfig::default()
        };
        let report = run_suite(&m, &config);
        assert_eq!(report.failed(), 1);
        assert!(matches!(report.tests[0].outcome.status, RunStatus::Hung(_)));
    }
}
