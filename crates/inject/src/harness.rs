//! The test harness: run a module's embedded `test_*` suite.
//!
//! Each test executes on fresh machine state (fresh globals, clock, and
//! detector state) so tests are isolated, exactly like the corpus
//! verification suite. The module is compiled **once per suite** through
//! the process-wide [`CodeCache`] and the compiled code re-run per test
//! on one reused machine — recompiling the same module for every test
//! used to dominate the cold path. [`run_suite_uncached`] keeps the
//! original compile-per-test path as a differential reference; both
//! paths produce byte-identical reports.

use crate::codecache::CodeCache;
use nfi_pylite::analysis::ModuleIndex;
use nfi_pylite::{fingerprint, Machine, MachineConfig, Module, RunOutcome, RunStatus};
use std::rc::Rc;

/// The outcome of one test function.
#[derive(Debug, Clone)]
pub struct TestResult {
    /// Test function name.
    pub name: String,
    /// Full run outcome (status, detectors, output).
    pub outcome: RunOutcome,
    /// Whether the module body itself failed before the test ran.
    pub module_failed: bool,
}

impl TestResult {
    /// Whether the test passed (module loaded and test completed with no
    /// failures anywhere).
    pub fn passed(&self) -> bool {
        !self.module_failed && self.outcome.clean()
    }
}

/// The outcome of a whole suite.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// Per-test results, in discovery order.
    pub tests: Vec<TestResult>,
}

impl SuiteReport {
    /// Number of passing tests.
    pub fn passed(&self) -> usize {
        self.tests.iter().filter(|t| t.passed()).count()
    }

    /// Number of failing tests.
    pub fn failed(&self) -> usize {
        self.tests.len() - self.passed()
    }

    /// Whether every test passed.
    pub fn all_passed(&self) -> bool {
        self.failed() == 0
    }
}

/// The result reported for every test when the module does not even
/// compile: a module failure with an empty outcome placeholder.
fn compile_failure(name: &str) -> TestResult {
    TestResult {
        name: name.to_string(),
        outcome: RunOutcome {
            status: RunStatus::Completed,
            output: String::new(),
            races: Vec::new(),
            overflows: Vec::new(),
            leaks: Vec::new(),
            task_failures: Vec::new(),
            steps: 0,
            vtime: 0.0,
            return_value: None,
        },
        module_failed: true,
    }
}

/// Runs the module's `test_*` suite: the module is compiled once
/// (through the process-wide [`CodeCache`]) and each test runs on fresh
/// machine state.
///
/// When the module body itself fails (e.g. a module-level injected
/// fault), each test is reported as failed with `module_failed` set —
/// the suite cannot even load.
pub fn run_suite(module: &Module, config: &MachineConfig) -> SuiteReport {
    run_suite_keyed(module, fingerprint(module), config)
}

/// [`run_suite`] for a pre-computed module fingerprint — the hot-loop
/// entry point for drivers that already fingerprint the module once.
pub fn run_suite_keyed(module: &Module, module_fp: u64, config: &MachineConfig) -> SuiteReport {
    let mut machine = Machine::new(config.clone());
    run_suite_in(&mut machine, module, module_fp, config)
}

/// Runs the suite on a caller-provided machine, resetting its per-run
/// state before every test. Reusing one machine across many suites (a
/// seed sweep, a campaign shard) keeps its allocations — and the
/// installed global table — warm while staying observably identical to
/// a fresh machine per test.
pub fn run_suite_in(
    machine: &mut Machine,
    module: &Module,
    module_fp: u64,
    config: &MachineConfig,
) -> SuiteReport {
    let index = ModuleIndex::build(module);
    let names = index.test_functions();
    if names.is_empty() {
        return SuiteReport { tests: Vec::new() };
    }
    let code = match CodeCache::global().compile(module, module_fp) {
        Ok(code) => code,
        Err(_) => {
            return SuiteReport {
                tests: names.iter().map(|name| compile_failure(name)).collect(),
            }
        }
    };
    let mut tests = Vec::new();
    for name in names {
        machine.reset(config.clone());
        let module_out = machine.run_code(Rc::clone(&code));
        if !matches!(module_out.status, RunStatus::Completed) {
            tests.push(TestResult {
                name: name.to_string(),
                outcome: module_out,
                module_failed: true,
            });
            continue;
        }
        match machine.call(name, vec![]) {
            Ok(outcome) => tests.push(TestResult {
                name: name.to_string(),
                outcome,
                module_failed: false,
            }),
            Err(_) => tests.push(TestResult {
                name: name.to_string(),
                outcome: module_out,
                module_failed: true,
            }),
        }
    }
    SuiteReport { tests }
}

/// The original compile-per-test path: one fresh machine *and one fresh
/// compile* per test, bypassing the [`CodeCache`]. This is the
/// differential reference the cached paths are tested against (and the
/// execution path behind campaign runs with caching disabled).
pub fn run_suite_uncached(module: &Module, config: &MachineConfig) -> SuiteReport {
    let index = ModuleIndex::build(module);
    let mut tests = Vec::new();
    for name in index.test_functions() {
        let mut machine = Machine::new(config.clone());
        let module_out = match machine.run_module(module) {
            Ok(out) => out,
            Err(_) => {
                tests.push(compile_failure(name));
                continue;
            }
        };
        if !matches!(module_out.status, RunStatus::Completed) {
            tests.push(TestResult {
                name: name.to_string(),
                outcome: module_out,
                module_failed: true,
            });
            continue;
        }
        match machine.call(name, vec![]) {
            Ok(outcome) => tests.push(TestResult {
                name: name.to_string(),
                outcome,
                module_failed: false,
            }),
            Err(_) => tests.push(TestResult {
                name: name.to_string(),
                outcome: module_out,
                module_failed: true,
            }),
        }
    }
    SuiteReport { tests }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfi_pylite::parse;

    #[test]
    fn passing_suite_reports_all_green() {
        let m = parse(
            "def add(a, b):\n    return a + b\ndef test_one():\n    assert add(1, 1) == 2\ndef test_two():\n    assert add(2, 3) == 5\n",
        )
        .unwrap();
        let report = run_suite(&m, &MachineConfig::default());
        assert_eq!(report.tests.len(), 2);
        assert!(report.all_passed());
    }

    #[test]
    fn assertion_failures_are_reported() {
        let m = parse(
            "def add(a, b):\n    return a + b + 1\ndef test_one():\n    assert add(1, 1) == 2\n",
        )
        .unwrap();
        let report = run_suite(&m, &MachineConfig::default());
        assert_eq!(report.failed(), 1);
        match &report.tests[0].outcome.status {
            RunStatus::Uncaught(info) => assert_eq!(info.kind, "AssertionError"),
            other => panic!("expected assertion failure, got {other:?}"),
        }
    }

    #[test]
    fn module_level_crash_fails_every_test() {
        let m = parse("raise RuntimeError(\"boot failure\")\ndef test_one():\n    assert True\n")
            .unwrap();
        let report = run_suite(&m, &MachineConfig::default());
        assert_eq!(report.tests.len(), 1);
        assert!(report.tests[0].module_failed);
        assert!(!report.tests[0].passed());
    }

    #[test]
    fn suite_without_tests_is_empty() {
        let m = parse("x = 1\n").unwrap();
        let report = run_suite(&m, &MachineConfig::default());
        assert!(report.tests.is_empty());
        assert!(report.all_passed());
    }

    #[test]
    fn hanging_test_is_bounded_by_step_budget() {
        let m = parse("def spin():\n    while True:\n        pass\ndef test_spin():\n    spin()\n")
            .unwrap();
        let config = MachineConfig {
            step_budget: 20_000,
            ..MachineConfig::default()
        };
        let report = run_suite(&m, &config);
        assert_eq!(report.failed(), 1);
        assert!(matches!(report.tests[0].outcome.status, RunStatus::Hung(_)));
    }

    /// Every field of every test result must agree between the cached
    /// (compile-once, reused machine) and uncached (fresh machine and
    /// compile per test) paths — including detector reports, step counts,
    /// and virtual time.
    fn assert_reports_identical(a: &SuiteReport, b: &SuiteReport) {
        assert_eq!(a.tests.len(), b.tests.len());
        for (x, y) in a.tests.iter().zip(b.tests.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.module_failed, y.module_failed);
            assert_eq!(format!("{:?}", x.outcome), format!("{:?}", y.outcome));
        }
    }

    #[test]
    fn cached_suite_matches_uncached_suite() {
        let m = parse(
            "count = 0\ndef bump():\n    global count\n    count = count + 1\n    return count\ndef test_bump():\n    assert bump() == 1\ndef test_again():\n    assert bump() == 1\n",
        )
        .unwrap();
        let config = MachineConfig::default();
        assert_reports_identical(&run_suite(&m, &config), &run_suite_uncached(&m, &config));
    }

    #[test]
    fn cached_suite_matches_uncached_on_concurrency() {
        let m = parse(
            "total = 0\ndef work():\n    global total\n    for i in range(10):\n        total = total + 1\ndef test_total():\n    t1 = spawn(work)\n    t2 = spawn(work)\n    join(t1)\n    join(t2)\n    assert total == 20\n",
        )
        .unwrap();
        let config = MachineConfig {
            quantum: 3,
            ..MachineConfig::default()
        };
        assert_reports_identical(&run_suite(&m, &config), &run_suite_uncached(&m, &config));
    }

    #[test]
    fn compile_failure_placeholder_is_identical_on_both_paths() {
        let m = parse("break\ndef test_x():\n    assert True\n").unwrap();
        let config = MachineConfig::default();
        let cached = run_suite(&m, &config);
        let uncached = run_suite_uncached(&m, &config);
        assert_eq!(cached.tests.len(), 1);
        assert!(cached.tests[0].module_failed);
        assert_reports_identical(&cached, &uncached);
    }
}
