//! Line-based diff between pristine and faulty code, for review output.
//!
//! A small LCS diff (the programs are tiny) producing unified-style
//! hunks; the CLI and examples use it to show exactly what the injection
//! changed.

/// One line of a diff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffLine {
    /// Unchanged line (present in both).
    Context(String),
    /// Line only in the new text.
    Added(String),
    /// Line only in the old text.
    Removed(String),
}

/// Computes a line diff from `old` to `new` (LCS-based, O(n·m) — the
/// inputs are function-sized).
pub fn diff_lines(old: &str, new: &str) -> Vec<DiffLine> {
    let a: Vec<&str> = old.lines().collect();
    let b: Vec<&str> = new.lines().collect();
    let n = a.len();
    let m = b.len();
    // LCS table.
    let mut lcs = vec![vec![0usize; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] = if a[i] == b[j] {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < n && j < m {
        if a[i] == b[j] {
            out.push(DiffLine::Context(a[i].to_string()));
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            out.push(DiffLine::Removed(a[i].to_string()));
            i += 1;
        } else {
            out.push(DiffLine::Added(b[j].to_string()));
            j += 1;
        }
    }
    while i < n {
        out.push(DiffLine::Removed(a[i].to_string()));
        i += 1;
    }
    while j < m {
        out.push(DiffLine::Added(b[j].to_string()));
        j += 1;
    }
    out
}

/// Renders a diff in unified style (`+`/`-`/two-space context), keeping
/// `context` unchanged lines around each change run.
pub fn render_diff(old: &str, new: &str, context: usize) -> String {
    let lines = diff_lines(old, new);
    // Mark which indexes to keep: changes plus +-context around them.
    let changed: Vec<bool> = lines
        .iter()
        .map(|l| !matches!(l, DiffLine::Context(_)))
        .collect();
    let mut keep = vec![false; lines.len()];
    for (i, &c) in changed.iter().enumerate() {
        if c {
            let from = i.saturating_sub(context);
            let to = (i + context + 1).min(lines.len());
            for k in keep.iter_mut().take(to).skip(from) {
                *k = true;
            }
        }
    }
    let mut out = String::new();
    let mut last_kept = true;
    for (i, line) in lines.iter().enumerate() {
        if !keep[i] {
            if last_kept {
                out.push_str("  ...\n");
            }
            last_kept = false;
            continue;
        }
        last_kept = true;
        match line {
            DiffLine::Context(s) => {
                out.push_str("  ");
                out.push_str(s);
            }
            DiffLine::Added(s) => {
                out.push_str("+ ");
                out.push_str(s);
            }
            DiffLine::Removed(s) => {
                out.push_str("- ");
                out.push_str(s);
            }
        }
        out.push('\n');
    }
    out
}

/// Counts (added, removed) lines.
pub fn change_counts(old: &str, new: &str) -> (usize, usize) {
    let mut added = 0;
    let mut removed = 0;
    for line in diff_lines(old, new) {
        match line {
            DiffLine::Added(_) => added += 1,
            DiffLine::Removed(_) => removed += 1,
            DiffLine::Context(_) => {}
        }
    }
    (added, removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_have_no_changes() {
        let text = "a\nb\nc\n";
        assert_eq!(change_counts(text, text), (0, 0));
        assert!(diff_lines(text, text)
            .iter()
            .all(|l| matches!(l, DiffLine::Context(_))));
    }

    #[test]
    fn insertion_and_removal_are_attributed() {
        let old = "def f():\n    a()\n    b()\n";
        let new = "def f():\n    a()\n    raise X(\"boom\")\n    b()\n";
        let (added, removed) = change_counts(old, new);
        assert_eq!((added, removed), (1, 0));
        let back = change_counts(new, old);
        assert_eq!(back, (0, 1));
    }

    #[test]
    fn replacement_counts_both_sides() {
        let old = "x = 1\ny = 2\n";
        let new = "x = 1\ny = 3\n";
        assert_eq!(change_counts(old, new), (1, 1));
    }

    #[test]
    fn render_marks_lines_and_elides_far_context() {
        let old = "l1\nl2\nl3\nl4\nl5\nl6\nl7\n";
        let new = "l1\nl2\nl3\nl4x\nl5\nl6\nl7\n";
        let rendered = render_diff(old, new, 1);
        assert!(rendered.contains("- l4"));
        assert!(rendered.contains("+ l4x"));
        assert!(rendered.contains("  l3"));
        assert!(rendered.contains("  l5"));
        assert!(rendered.contains("..."), "far context elided: {rendered}");
        assert!(!rendered.contains("  l1\n"));
    }

    #[test]
    fn diff_reconstructs_both_sides() {
        let old = "a\nb\nc\nd\n";
        let new = "a\nx\nc\ny\n";
        let lines = diff_lines(old, new);
        let rebuilt_old: Vec<&str> = lines
            .iter()
            .filter_map(|l| match l {
                DiffLine::Context(s) | DiffLine::Removed(s) => Some(s.as_str()),
                DiffLine::Added(_) => None,
            })
            .collect();
        let rebuilt_new: Vec<&str> = lines
            .iter()
            .filter_map(|l| match l {
                DiffLine::Context(s) | DiffLine::Added(s) => Some(s.as_str()),
                DiffLine::Removed(_) => None,
            })
            .collect();
        assert_eq!(rebuilt_old.join("\n") + "\n", old);
        assert_eq!(rebuilt_new.join("\n") + "\n", new);
    }
}
