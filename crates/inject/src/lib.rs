//! # nfi-inject — the automated integration and testing tool
//!
//! The last stage of the paper's Fig. 1 workflow (§III-B4): it
//! "automates the process of integrating the LLM-generated faulty code
//! into the target software's codebase" and then "facilitates a
//! comprehensive suite of tests designed to activate the faults and
//! observe the software's response".
//!
//! * [`patch`] — splices reviewed snippets back into the codebase
//!   (function replacement by name, new definitions appended).
//! * [`harness`] — runs a program's embedded `test_*` suite on the
//!   PyLite machine, compiling once per suite through the
//!   content-addressed [`codecache`] and resetting one machine between
//!   tests.
//! * [`classify`] — differential failure-mode classification against
//!   the pristine program: crash / hang / silent data corruption /
//!   data race / resource leak / buffer overflow / no effect.
//! * [`experiment`] — the inject → activate → classify pipeline used by
//!   campaigns and benchmarks.
//!
//! ```
//! use nfi_inject::experiment::run_experiment;
//! use nfi_pylite::MachineConfig;
//!
//! let pristine = nfi_pylite::parse(
//!     "def double(x):\n    return x * 2\ndef test_double():\n    assert double(2) == 4\n",
//! )?;
//! // A wrong-value fault: double becomes x * 3.
//! let faulty = nfi_pylite::parse(
//!     "def double(x):\n    return x * 3\ndef test_double():\n    assert double(2) == 4\n",
//! )?;
//! let report = run_experiment(&pristine, &faulty, &MachineConfig::default());
//! assert!(report.activated);
//! assert!(report.detected);
//! # Ok::<(), nfi_pylite::PyliteError>(())
//! ```

pub mod classify;
pub mod codecache;
pub mod diff;
pub mod experiment;
pub mod explore;
pub mod harness;
pub mod memo;
pub mod patch;

pub use classify::FailureMode;
pub use codecache::{CodeCache, CODE_CACHE_CAPACITY};
pub use diff::{change_counts, diff_lines, render_diff, DiffLine};
pub use experiment::{
    run_experiment, run_experiment_cached, run_experiment_in, run_experiment_keyed,
    ExperimentReport, TestComparison,
};
pub use explore::{explore_schedules, ExplorationReport};
pub use harness::{
    run_suite, run_suite_in, run_suite_keyed, run_suite_uncached, SuiteReport, TestResult,
};
pub use memo::{run_experiment_memo, CacheStats, ExperimentCache, Memo, SuiteCache};
pub use patch::{integrate_snippet, replace_function, PatchError};
