//! Experiment memoization: content-addressed caching of differential
//! experiment runs.
//!
//! [`run_experiment`] is deterministic — the machine's scheduler, race
//! detector, and virtual clock are all seed-driven — so its result is a
//! pure function of (pristine module, faulty module, machine config).
//! Repeated drivers (schedule exploration sweeps, E-driver reruns, the
//! sequential-then-parallel benchmark pairs) therefore keep re-running
//! byte-identical experiments. This module memoizes them behind a
//! process-wide content-addressed cache keyed by
//! `(fingerprint(pristine), fingerprint(faulty), machine.fingerprint())`.
//!
//! Because the key is content-addressed, memoization can never change a
//! result — a hit returns exactly what the miss computed — so cached and
//! uncached runs are bit-identical by construction.

use crate::experiment::{run_experiment, ExperimentReport};
use nfi_pylite::{fingerprint, MachineConfig, Module};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Hit/miss counters of a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A generic hit-counting memo table: the shared scaffolding behind
/// [`ExperimentCache`] and `nfi_core`'s mutant cache. Values are
/// computed outside the lock — concurrent misses on the same key
/// duplicate work once but never block the whole pool on one compute.
pub struct Memo<K, V> {
    map: Mutex<HashMap<K, V>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + std::hash::Hash, V: Clone> Memo<K, V> {
    /// An empty memo table.
    pub fn new() -> Memo<K, V> {
        Memo {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the memoized value for `key`, computing and recording it
    /// on a miss.
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        if let Some(value) = self.map.lock().expect("memo lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return value.clone();
        }
        let value = compute();
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.map
            .lock()
            .expect("memo lock")
            .insert(key, value.clone());
        value
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.lock().expect("memo lock").len(),
        }
    }

    /// Drops every entry and zeroes the counters (cold-start benches).
    pub fn clear(&self) {
        self.map.lock().expect("memo lock").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

impl<K: Eq + std::hash::Hash, V: Clone> Default for Memo<K, V> {
    fn default() -> Self {
        Memo::new()
    }
}

/// A memo table for differential experiments.
pub struct ExperimentCache {
    memo: Memo<(u64, u64, u64), ExperimentReport>,
}

impl ExperimentCache {
    /// An empty cache (tests; the shared one is [`ExperimentCache::global`]).
    pub fn new() -> ExperimentCache {
        ExperimentCache { memo: Memo::new() }
    }

    /// The process-wide cache.
    pub fn global() -> &'static ExperimentCache {
        static GLOBAL: OnceLock<ExperimentCache> = OnceLock::new();
        GLOBAL.get_or_init(ExperimentCache::new)
    }

    /// Runs (or replays) the experiment for pre-computed module
    /// fingerprints — the hot-loop entry point for campaign executors
    /// that already fingerprint the pristine module once per campaign.
    pub fn run_keyed(
        &self,
        pristine: &Module,
        faulty: &Module,
        pristine_fp: u64,
        faulty_fp: u64,
        config: &MachineConfig,
    ) -> ExperimentReport {
        self.memo
            .get_or_insert_with((pristine_fp, faulty_fp, config.fingerprint()), || {
                run_experiment(pristine, faulty, config)
            })
    }

    /// Runs (or replays) the experiment, fingerprinting both modules.
    pub fn run(
        &self,
        pristine: &Module,
        faulty: &Module,
        config: &MachineConfig,
    ) -> ExperimentReport {
        self.run_keyed(
            pristine,
            faulty,
            fingerprint(pristine),
            fingerprint(faulty),
            config,
        )
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.memo.stats()
    }

    /// Drops every entry and zeroes the counters (cold-start benches).
    pub fn clear(&self) {
        self.memo.clear();
    }
}

impl Default for ExperimentCache {
    fn default() -> Self {
        ExperimentCache::new()
    }
}

/// [`run_experiment`] through the process-wide memo table.
pub fn run_experiment_memo(
    pristine: &Module,
    faulty: &Module,
    config: &MachineConfig,
) -> ExperimentReport {
    ExperimentCache::global().run(pristine, faulty, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfi_pylite::parse;

    const BASE: &str = "\
def price(qty):
    return qty * 10
def test_price():
    assert price(2) == 20
";

    #[test]
    fn memoized_report_matches_direct_run() {
        let pristine = parse(BASE).unwrap();
        let faulty = parse(&BASE.replace("* 10", "* 11")).unwrap();
        let config = MachineConfig::default();
        let cache = ExperimentCache::new();
        let memo = cache.run(&pristine, &faulty, &config);
        let direct = run_experiment(&pristine, &faulty, &config);
        assert_eq!(memo.activated, direct.activated);
        assert_eq!(memo.detected, direct.detected);
        assert_eq!(memo.overall, direct.overall);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn second_lookup_hits_and_replays_identically() {
        let pristine = parse(BASE).unwrap();
        let faulty = parse(&BASE.replace("* 10", "* 12")).unwrap();
        let config = MachineConfig::default();
        let cache = ExperimentCache::new();
        let first = cache.run(&pristine, &faulty, &config);
        let second = cache.run(&pristine, &faulty, &config);
        assert_eq!(first.overall, second.overall);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn different_machine_seeds_are_distinct_entries() {
        let pristine = parse(BASE).unwrap();
        let faulty = parse(&BASE.replace("* 10", "* 13")).unwrap();
        let cache = ExperimentCache::new();
        cache.run(&pristine, &faulty, &MachineConfig::default());
        cache.run(
            &pristine,
            &faulty,
            &MachineConfig {
                seed: 99,
                ..MachineConfig::default()
            },
        );
        assert_eq!(cache.stats().misses, 2);
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
