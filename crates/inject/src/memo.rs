//! Experiment memoization: content-addressed caching of differential
//! experiment runs.
//!
//! [`run_experiment`] is deterministic — the machine's scheduler, race
//! detector, and virtual clock are all seed-driven — so its result is a
//! pure function of (pristine module, faulty module, machine config).
//! Repeated drivers (schedule exploration sweeps, E-driver reruns, the
//! sequential-then-parallel benchmark pairs) therefore keep re-running
//! byte-identical experiments. This module memoizes them behind a
//! process-wide content-addressed cache keyed by
//! `(fingerprint(pristine), fingerprint(faulty), machine.fingerprint())`.
//!
//! Because the key is content-addressed, memoization can never change a
//! result — a hit returns exactly what the miss computed — so cached and
//! uncached runs are bit-identical by construction.

use crate::experiment::{run_experiment_in, run_experiment_keyed, ExperimentReport};
use crate::harness::{run_suite_in, SuiteReport};
use nfi_pylite::{fingerprint, Machine, MachineConfig, Module};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Hit/miss counters of a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Entry capacity (`None` = unbounded).
    pub capacity: Option<usize>,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The default entry cap for the process-wide caches: far above what
/// the corpus-wide benches populate (a few thousand entries), so their
/// hit rates are unchanged, while still bounding a long-lived service
/// that streams campaigns through one process.
pub const DEFAULT_CACHE_CAPACITY: usize = 65_536;

/// One memoized value plus the logical clock of its last use — the
/// recency key of the LRU eviction policy.
struct MemoEntry<V> {
    value: V,
    last_used: u64,
}

/// Interior table state: entries plus the monotonic use-clock. Behind
/// one mutex so a hit can bump `last_used` in place.
struct MemoMap<K, V> {
    map: HashMap<K, MemoEntry<V>>,
    clock: u64,
}

/// A generic hit-counting memo table: the shared scaffolding behind
/// [`ExperimentCache`] and `nfi_core`'s mutant cache. Values are
/// computed outside the lock — concurrent misses on the same key
/// duplicate work once but never block the whole pool on one compute.
///
/// A table built with [`Memo::bounded`] caps its entry count: once
/// full, inserting a new key evicts the least-recently-used entry
/// (exact LRU by a logical use-clock; eviction scans for the minimum,
/// which is fine at the access rates of these caches — evictions only
/// start once campaigns outgrow the default capacity).
pub struct Memo<K, V> {
    inner: Mutex<MemoMap<K, V>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    capacity: Option<usize>,
}

impl<K: Eq + std::hash::Hash + Clone, V: Clone> Memo<K, V> {
    /// An empty, unbounded memo table.
    pub fn new() -> Memo<K, V> {
        Memo::with_capacity(None)
    }

    /// An empty memo table holding at most `capacity` entries
    /// (clamped to at least 1), evicting least-recently-used beyond it.
    pub fn bounded(capacity: usize) -> Memo<K, V> {
        Memo::with_capacity(Some(capacity.max(1)))
    }

    fn with_capacity(capacity: Option<usize>) -> Memo<K, V> {
        Memo {
            inner: Mutex::new(MemoMap {
                map: HashMap::new(),
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            capacity,
        }
    }

    /// Returns the memoized value for `key`, computing and recording it
    /// on a miss. On a bounded table a miss that would exceed the cap
    /// evicts the least-recently-used entry first.
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        {
            let mut inner = self.inner.lock().expect("memo lock");
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(entry) = inner.map.get_mut(&key) {
                entry.last_used = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return entry.value.clone();
            }
        }
        let value = compute();
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().expect("memo lock");
        if let Some(cap) = self.capacity {
            // `>=` because the new key is about to land; a concurrent
            // duplicate compute of the same key overwrites in place and
            // must not evict anything.
            while inner.map.len() >= cap && !inner.map.contains_key(&key) {
                let Some(oldest) = inner
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone())
                else {
                    break;
                };
                inner.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.clock += 1;
        let clock = inner.clock;
        inner.map.insert(
            key,
            MemoEntry {
                value: value.clone(),
                last_used: clock,
            },
        );
        value
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.inner.lock().expect("memo lock").map.len(),
            evictions: self.evictions.load(Ordering::Relaxed),
            capacity: self.capacity,
        }
    }

    /// Drops every entry and zeroes the counters (cold-start benches).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("memo lock");
        inner.map.clear();
        inner.clock = 0;
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

impl<K: Eq + std::hash::Hash + Clone, V: Clone> Default for Memo<K, V> {
    fn default() -> Self {
        Memo::new()
    }
}

/// A memo table for differential experiments.
pub struct ExperimentCache {
    memo: Memo<(u64, u64, u64), ExperimentReport>,
}

impl ExperimentCache {
    /// An empty unbounded cache (tests; the shared one is
    /// [`ExperimentCache::global`]).
    pub fn new() -> ExperimentCache {
        ExperimentCache { memo: Memo::new() }
    }

    /// An empty cache holding at most `capacity` reports, evicting
    /// least-recently-used beyond it.
    pub fn bounded(capacity: usize) -> ExperimentCache {
        ExperimentCache {
            memo: Memo::bounded(capacity),
        }
    }

    /// The process-wide cache, bounded at [`DEFAULT_CACHE_CAPACITY`]
    /// entries so unboundedly long campaign streams cannot exhaust
    /// memory (the cap is far above what the corpus benches populate,
    /// so their hit rates are unaffected).
    pub fn global() -> &'static ExperimentCache {
        static GLOBAL: OnceLock<ExperimentCache> = OnceLock::new();
        GLOBAL.get_or_init(|| ExperimentCache::bounded(DEFAULT_CACHE_CAPACITY))
    }

    /// Runs (or replays) the experiment for pre-computed module
    /// fingerprints — the hot-loop entry point for campaign executors
    /// that already fingerprint the pristine module once per campaign.
    pub fn run_keyed(
        &self,
        pristine: &Module,
        faulty: &Module,
        pristine_fp: u64,
        faulty_fp: u64,
        config: &MachineConfig,
    ) -> ExperimentReport {
        self.memo
            .get_or_insert_with((pristine_fp, faulty_fp, config.fingerprint()), || {
                run_experiment_keyed(pristine, faulty, pristine_fp, faulty_fp, config)
            })
    }

    /// [`ExperimentCache::run_keyed`] computing misses on a
    /// caller-provided machine, so a driver sweeping many experiments on
    /// one thread (schedule exploration) keeps a single machine's
    /// allocations warm across every miss.
    pub fn run_keyed_in(
        &self,
        machine: &mut Machine,
        pristine: &Module,
        faulty: &Module,
        pristine_fp: u64,
        faulty_fp: u64,
        config: &MachineConfig,
    ) -> ExperimentReport {
        self.memo
            .get_or_insert_with((pristine_fp, faulty_fp, config.fingerprint()), || {
                run_experiment_in(machine, pristine, faulty, pristine_fp, faulty_fp, config)
            })
    }

    /// Runs (or replays) the experiment, fingerprinting both modules.
    pub fn run(
        &self,
        pristine: &Module,
        faulty: &Module,
        config: &MachineConfig,
    ) -> ExperimentReport {
        self.run_keyed(
            pristine,
            faulty,
            fingerprint(pristine),
            fingerprint(faulty),
            config,
        )
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.memo.stats()
    }

    /// Drops every entry and zeroes the counters (cold-start benches).
    pub fn clear(&self) {
        self.memo.clear();
    }
}

impl Default for ExperimentCache {
    fn default() -> Self {
        ExperimentCache::new()
    }
}

/// Per-thread entry cap of the pristine-suite memo. One entry per
/// (module, machine config) pair in flight — a whole corpus campaign
/// populates a dozen — so the bound only guards a long-lived service
/// streaming arbitrary programs through one worker thread.
pub const SUITE_CACHE_CAPACITY: usize = 1024;

static SUITE_HITS: AtomicU64 = AtomicU64::new(0);
static SUITE_MISSES: AtomicU64 = AtomicU64::new(0);
static SUITE_EVICTIONS: AtomicU64 = AtomicU64::new(0);
/// Entries resident across all live threads (each thread's map
/// subtracts its length when the thread exits).
static SUITE_ENTRIES: AtomicU64 = AtomicU64::new(0);

struct SuiteEntry {
    report: std::rc::Rc<SuiteReport>,
    last_used: u64,
}

#[derive(Default)]
struct SuiteTable {
    map: HashMap<(u64, u64), SuiteEntry>,
    clock: u64,
}

impl Drop for SuiteTable {
    fn drop(&mut self) {
        SUITE_ENTRIES.fetch_sub(self.map.len() as u64, Ordering::Relaxed);
    }
}

thread_local! {
    static SUITE_TABLE: std::cell::RefCell<SuiteTable> =
        std::cell::RefCell::new(SuiteTable::default());
}

/// A memo of pristine suite reports, keyed by
/// `(fingerprint(module), machine.fingerprint())`.
///
/// Every differential experiment runs the *same* pristine suite as its
/// baseline: within one campaign, all units share one pristine module
/// and one machine config, so the baseline half of every unit after the
/// first is a byte-identical replay. [`run_suite_in`] is deterministic
/// in `(module, config)`, so memoizing it can never change a report —
/// a hit returns exactly what the miss computed. Only the pristine side
/// of an experiment consults this table; faulty suites are unique per
/// mutant and would just churn the LRU.
///
/// Suite reports hold `Rc`-based run outcomes and are not `Send`, so
/// like [`crate::codecache::CodeCache`] (and unlike [`Memo`]) the table
/// is **thread-local** — each executor thread warms its own — while the
/// counters are process-wide atomics so [`SuiteCache::stats`] aggregates
/// all threads. Eviction is the same exact LRU by logical use-clock,
/// applied per thread.
pub struct SuiteCache {
    _priv: (),
}

static SUITE_GLOBAL: SuiteCache = SuiteCache { _priv: () };

impl SuiteCache {
    /// The process-wide cache (a zero-sized facade over thread-local
    /// tables plus global counters).
    pub fn global() -> &'static SuiteCache {
        &SUITE_GLOBAL
    }

    /// Runs (or replays) the suite for a pre-computed module
    /// fingerprint, computing misses on the caller's machine. Hits
    /// return the thread-resident report without executing anything.
    pub fn run_keyed_in(
        &self,
        machine: &mut Machine,
        module: &Module,
        module_fp: u64,
        config: &MachineConfig,
    ) -> std::rc::Rc<SuiteReport> {
        let key = (module_fp, config.fingerprint());
        let hit = SUITE_TABLE.with(|t| {
            let mut t = t.borrow_mut();
            t.clock += 1;
            let clock = t.clock;
            t.map.get_mut(&key).map(|e| {
                e.last_used = clock;
                std::rc::Rc::clone(&e.report)
            })
        });
        if let Some(report) = hit {
            SUITE_HITS.fetch_add(1, Ordering::Relaxed);
            return report;
        }
        let report = std::rc::Rc::new(run_suite_in(machine, module, module_fp, config));
        SUITE_MISSES.fetch_add(1, Ordering::Relaxed);
        SUITE_TABLE.with(|t| {
            let mut t = t.borrow_mut();
            while t.map.len() >= SUITE_CACHE_CAPACITY && !t.map.contains_key(&key) {
                let Some(oldest) = t
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k)
                else {
                    break;
                };
                t.map.remove(&oldest);
                SUITE_ENTRIES.fetch_sub(1, Ordering::Relaxed);
                SUITE_EVICTIONS.fetch_add(1, Ordering::Relaxed);
            }
            t.clock += 1;
            let clock = t.clock;
            if t.map
                .insert(
                    key,
                    SuiteEntry {
                        report: std::rc::Rc::clone(&report),
                        last_used: clock,
                    },
                )
                .is_none()
            {
                SUITE_ENTRIES.fetch_add(1, Ordering::Relaxed);
            }
        });
        report
    }

    /// Aggregated counters across all threads. `entries` counts every
    /// live thread's resident entries; `capacity` is the per-thread cap.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: SUITE_HITS.load(Ordering::Relaxed),
            misses: SUITE_MISSES.load(Ordering::Relaxed),
            entries: SUITE_ENTRIES.load(Ordering::Relaxed) as usize,
            evictions: SUITE_EVICTIONS.load(Ordering::Relaxed),
            capacity: Some(SUITE_CACHE_CAPACITY),
        }
    }

    /// Drops the calling thread's entries and zeroes the global counters
    /// (cold-start benches).
    pub fn clear(&self) {
        SUITE_TABLE.with(|t| {
            let mut t = t.borrow_mut();
            SUITE_ENTRIES.fetch_sub(t.map.len() as u64, Ordering::Relaxed);
            t.map.clear();
            t.clock = 0;
        });
        SUITE_HITS.store(0, Ordering::Relaxed);
        SUITE_MISSES.store(0, Ordering::Relaxed);
        SUITE_EVICTIONS.store(0, Ordering::Relaxed);
    }
}

/// [`run_experiment`] through the process-wide memo table.
pub fn run_experiment_memo(
    pristine: &Module,
    faulty: &Module,
    config: &MachineConfig,
) -> ExperimentReport {
    ExperimentCache::global().run(pristine, faulty, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::run_experiment;
    use nfi_pylite::parse;

    const BASE: &str = "\
def price(qty):
    return qty * 10
def test_price():
    assert price(2) == 20
";

    #[test]
    fn memoized_report_matches_direct_run() {
        let pristine = parse(BASE).unwrap();
        let faulty = parse(&BASE.replace("* 10", "* 11")).unwrap();
        let config = MachineConfig::default();
        let cache = ExperimentCache::new();
        let memo = cache.run(&pristine, &faulty, &config);
        let direct = run_experiment(&pristine, &faulty, &config);
        assert_eq!(memo.activated, direct.activated);
        assert_eq!(memo.detected, direct.detected);
        assert_eq!(memo.overall, direct.overall);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn second_lookup_hits_and_replays_identically() {
        let pristine = parse(BASE).unwrap();
        let faulty = parse(&BASE.replace("* 10", "* 12")).unwrap();
        let config = MachineConfig::default();
        let cache = ExperimentCache::new();
        let first = cache.run(&pristine, &faulty, &config);
        let second = cache.run(&pristine, &faulty, &config);
        assert_eq!(first.overall, second.overall);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn different_machine_seeds_are_distinct_entries() {
        let pristine = parse(BASE).unwrap();
        let faulty = parse(&BASE.replace("* 10", "* 13")).unwrap();
        let cache = ExperimentCache::new();
        cache.run(&pristine, &faulty, &MachineConfig::default());
        cache.run(
            &pristine,
            &faulty,
            &MachineConfig {
                seed: 99,
                ..MachineConfig::default()
            },
        );
        assert_eq!(cache.stats().misses, 2);
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
    }

    // Suite-cache counters are process-global and other test threads
    // touch them, so the assertions rely on `Rc` pointer identity and a
    // unique module rather than absolute counter values.
    #[test]
    fn suite_memo_replays_identically_to_direct_run() {
        let src = "\
def sm_probe(n):
    return n + 7
def test_sm_probe():
    assert sm_probe(1) == 8
";
        let module = parse(src).unwrap();
        let config = MachineConfig::default();
        let fp = fingerprint(&module);
        let cache = SuiteCache::global();
        let mut machine = Machine::new(config.clone());
        let first = cache.run_keyed_in(&mut machine, &module, fp, &config);
        let second = cache.run_keyed_in(&mut machine, &module, fp, &config);
        assert!(
            std::rc::Rc::ptr_eq(&first, &second),
            "hit must share the memoized report"
        );
        let direct = crate::harness::run_suite(&module, &config);
        assert_eq!(format!("{:?}", *first), format!("{direct:?}"));
    }

    #[test]
    fn bounded_memo_evicts_least_recently_used() {
        let memo: Memo<u64, u64> = Memo::bounded(3);
        for k in 0..3 {
            memo.get_or_insert_with(k, || k * 10);
        }
        // Touch 0 and 2 so key 1 is the least recently used.
        memo.get_or_insert_with(0, || unreachable!());
        memo.get_or_insert_with(2, || unreachable!());
        memo.get_or_insert_with(3, || 30);
        let stats = memo.stats();
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.capacity, Some(3));
        // Key 1 was evicted (recomputes); 0, 2, 3 are still resident.
        let mut recomputed = false;
        memo.get_or_insert_with(1, || {
            recomputed = true;
            10
        });
        assert!(recomputed, "LRU key should have been evicted");
        // Re-inserting 1 evicted the then-LRU key 0; the most recently
        // used keys {2, 3, 1} are resident.
        for k in [2u64, 3, 1] {
            memo.get_or_insert_with(k, || panic!("key {k} should be resident"));
        }
        assert_eq!(memo.stats().evictions, 2);
    }

    #[test]
    fn unbounded_memo_never_evicts() {
        let memo: Memo<u64, u64> = Memo::new();
        for k in 0..1000 {
            memo.get_or_insert_with(k, || k);
        }
        let stats = memo.stats();
        assert_eq!((stats.entries, stats.evictions), (1000, 0));
        assert_eq!(stats.capacity, None);
    }

    #[test]
    fn bounded_experiment_cache_stays_within_capacity() {
        let pristine = parse(BASE).unwrap();
        let cache = ExperimentCache::bounded(2);
        for factor in [11, 12, 13, 14] {
            let faulty = parse(&BASE.replace("* 10", &format!("* {factor}"))).unwrap();
            cache.run(&pristine, &faulty, &MachineConfig::default());
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.evictions, 2);
        // A replay of a resident entry is still a hit.
        let faulty = parse(&BASE.replace("* 10", "* 14")).unwrap();
        cache.run(&pristine, &faulty, &MachineConfig::default());
        assert_eq!(cache.stats().hits, 1);
    }
}
