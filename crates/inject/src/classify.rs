//! Differential failure-mode classification.
//!
//! Classifies how an injected fault manifested by comparing the faulty
//! run of each test against the pristine run — the "observing their
//! behavior" half of software fault injection (§II).

use nfi_pylite::{HangKind, RunOutcome, RunStatus};
use std::fmt;

/// How a fault manifested under a test; [`FailureMode::severity`] gives
/// the ordering (higher = more severe).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FailureMode {
    /// No observable difference from the pristine run.
    NoEffect,
    /// The run completed but took far longer in virtual time
    /// (performance failure from an injected delay).
    Slowdown,
    /// Output differs from the pristine run but no error surfaced
    /// (silent data corruption) — includes oracle-detected wrong results
    /// (assertion failures).
    WrongOutput,
    /// A resource was leaked.
    ResourceLeak,
    /// A data race was detected.
    DataRace,
    /// A buffer overflow occurred.
    BufferOverflow,
    /// An exception escaped (kind recorded).
    CrashUnhandled(String),
    /// The run hung (step budget or deadlock).
    Hang,
}

impl FailureMode {
    /// Severity rank (higher = more severe).
    pub fn severity(&self) -> u8 {
        match self {
            FailureMode::NoEffect => 0,
            FailureMode::Slowdown => 1,
            FailureMode::WrongOutput => 2,
            FailureMode::ResourceLeak => 3,
            FailureMode::DataRace => 4,
            FailureMode::BufferOverflow => 5,
            FailureMode::CrashUnhandled(_) => 6,
            FailureMode::Hang => 7,
        }
    }

    /// Stable identifier for reporting.
    pub fn key(&self) -> &'static str {
        match self {
            FailureMode::NoEffect => "no_effect",
            FailureMode::Slowdown => "slowdown",
            FailureMode::WrongOutput => "wrong_output",
            FailureMode::ResourceLeak => "resource_leak",
            FailureMode::DataRace => "data_race",
            FailureMode::BufferOverflow => "buffer_overflow",
            FailureMode::CrashUnhandled(_) => "crash",
            FailureMode::Hang => "hang",
        }
    }
}

impl fmt::Display for FailureMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureMode::CrashUnhandled(kind) => write!(f, "crash({kind})"),
            other => f.write_str(other.key()),
        }
    }
}

/// Classifies a faulty test run against its pristine counterpart.
///
/// All applicable manifestations are gathered and the most severe one is
/// reported, so a detected race outranks the assertion failure it caused
/// (mechanism over symptom), while a crash outranks an incidental race.
pub fn classify(faulty: &RunOutcome, pristine: &RunOutcome) -> FailureMode {
    // Hangs dominate: nothing else is observable.
    if let RunStatus::Hung(kind) = &faulty.status {
        let _ = matches!(kind, HangKind::Deadlock);
        return FailureMode::Hang;
    }
    let mut modes = Vec::new();
    // An escaping AssertionError is the test oracle catching wrong
    // behaviour, not a crash of the system under test.
    if let RunStatus::Uncaught(info) = &faulty.status {
        if info.kind == "AssertionError" {
            modes.push(FailureMode::WrongOutput);
        } else {
            modes.push(FailureMode::CrashUnhandled(info.kind.clone()));
        }
    }
    if let Some(failure) = faulty.task_failures.first() {
        if failure.kind == "AssertionError" {
            modes.push(FailureMode::WrongOutput);
        } else {
            modes.push(FailureMode::CrashUnhandled(failure.kind.clone()));
        }
    }
    if !faulty.overflows.is_empty() {
        modes.push(FailureMode::BufferOverflow);
    }
    if !faulty.races.is_empty() {
        modes.push(FailureMode::DataRace);
    }
    if !faulty.leaks.is_empty() {
        modes.push(FailureMode::ResourceLeak);
    }
    if faulty.output != pristine.output {
        modes.push(FailureMode::WrongOutput);
    }
    // Virtual-time dilation: the run completed but took dramatically
    // longer on the virtual clock (injected stalls).
    if faulty.vtime > pristine.vtime + 10.0 {
        modes.push(FailureMode::Slowdown);
    }
    most_severe(&modes)
}

/// The most severe mode in a collection (or `NoEffect` when empty).
pub fn most_severe(modes: &[FailureMode]) -> FailureMode {
    modes
        .iter()
        .max_by_key(|m| m.severity())
        .cloned()
        .unwrap_or(FailureMode::NoEffect)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfi_pylite::{Machine, MachineConfig};

    fn run(src: &str) -> RunOutcome {
        Machine::new(MachineConfig {
            step_budget: 50_000,
            ..MachineConfig::default()
        })
        .run_source(src)
        .unwrap()
    }

    #[test]
    fn classifies_crash() {
        let pristine = run("print(1)\n");
        let faulty = run("raise TimeoutError(\"t\")\n");
        assert_eq!(
            classify(&faulty, &pristine),
            FailureMode::CrashUnhandled("TimeoutError".into())
        );
    }

    #[test]
    fn classifies_assertion_as_wrong_output() {
        let pristine = run("print(1)\n");
        let faulty = run("assert 1 == 2\n");
        assert_eq!(classify(&faulty, &pristine), FailureMode::WrongOutput);
    }

    #[test]
    fn classifies_hang() {
        let pristine = run("print(1)\n");
        let faulty = run("while True:\n    pass\n");
        assert_eq!(classify(&faulty, &pristine), FailureMode::Hang);
    }

    #[test]
    fn classifies_leak() {
        let pristine = run("print(1)\n");
        let faulty = run("h = open_handle(\"c\")\nprint(1)\n");
        assert_eq!(classify(&faulty, &pristine), FailureMode::ResourceLeak);
    }

    #[test]
    fn classifies_silent_output_difference() {
        let pristine = run("print(10)\n");
        let faulty = run("print(11)\n");
        assert_eq!(classify(&faulty, &pristine), FailureMode::WrongOutput);
    }

    #[test]
    fn classifies_overflow_even_when_caught() {
        let pristine = run("print(1)\n");
        let faulty = run(
            "b = make_buffer(1)\ntry:\n    b.write(5, 1)\nexcept BufferOverflowError:\n    pass\nprint(1)\n",
        );
        assert_eq!(classify(&faulty, &pristine), FailureMode::BufferOverflow);
    }

    #[test]
    fn classifies_slowdown_from_virtual_time() {
        let pristine = run("print(1)\n");
        let faulty = run("sleep(60)\nprint(1)\n");
        assert_eq!(classify(&faulty, &pristine), FailureMode::Slowdown);
    }

    #[test]
    fn identical_runs_are_no_effect() {
        let a = run("print(1)\n");
        let b = run("print(1)\n");
        assert_eq!(classify(&a, &b), FailureMode::NoEffect);
    }

    #[test]
    fn severity_ordering() {
        assert!(FailureMode::Hang.severity() > FailureMode::CrashUnhandled("X".into()).severity());
        assert!(
            FailureMode::CrashUnhandled("X".into()).severity()
                > FailureMode::WrongOutput.severity()
        );
        assert_eq!(
            most_severe(&[
                FailureMode::WrongOutput,
                FailureMode::Hang,
                FailureMode::NoEffect
            ]),
            FailureMode::Hang
        );
        assert_eq!(most_severe(&[]), FailureMode::NoEffect);
    }
}
