//! The inject → activate → classify experiment pipeline.
//!
//! The default entry points route both suites through the process-wide
//! compiled-code cache and reuse one machine across every test of both
//! suites ([`run_experiment_keyed`] / [`run_experiment_in`]).
//! [`run_experiment`] keeps the original compile-per-test execution as
//! the differential reference: both paths produce identical reports.

use crate::classify::{classify, most_severe, FailureMode};
use crate::harness::{run_suite_in, run_suite_uncached, SuiteReport};
use nfi_pylite::{fingerprint, Machine, MachineConfig, Module};

/// Per-test comparison between pristine and faulty runs.
#[derive(Debug, Clone)]
pub struct TestComparison {
    /// Test name.
    pub name: String,
    /// Whether the pristine run passed (sanity; expected true).
    pub pristine_passed: bool,
    /// Failure mode of the faulty run relative to pristine.
    pub mode: FailureMode,
}

/// Result of one injection experiment.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Per-test comparisons.
    pub tests: Vec<TestComparison>,
    /// Most severe mode across tests.
    pub overall: FailureMode,
    /// Whether the fault produced any observable effect.
    pub activated: bool,
    /// Whether the embedded test suite *detected* the fault (some test
    /// no longer passes).
    pub detected: bool,
}

/// Classifies each (pristine, faulty) test pair differentially and
/// folds the aggregate — shared by every experiment entry point.
fn compare_suites(base: &SuiteReport, injected: &SuiteReport) -> ExperimentReport {
    let mut tests = Vec::new();
    let mut detected = false;
    for (p, f) in base.tests.iter().zip(injected.tests.iter()) {
        let mode = if f.module_failed {
            match &f.outcome.status {
                nfi_pylite::RunStatus::Uncaught(info) => {
                    FailureMode::CrashUnhandled(info.kind.clone())
                }
                nfi_pylite::RunStatus::Hung(_) => FailureMode::Hang,
                nfi_pylite::RunStatus::Completed => FailureMode::WrongOutput,
            }
        } else {
            classify(&f.outcome, &p.outcome)
        };
        if p.passed() && !f.passed() {
            detected = true;
        }
        tests.push(TestComparison {
            name: p.name.clone(),
            pristine_passed: p.passed(),
            mode,
        });
    }
    let modes: Vec<FailureMode> = tests.iter().map(|t| t.mode.clone()).collect();
    let overall = most_severe(&modes);
    let activated = tests.iter().any(|t| t.mode != FailureMode::NoEffect);
    ExperimentReport {
        tests,
        overall,
        activated,
        detected,
    }
}

/// Runs the pristine and faulty suites and classifies each test
/// differentially.
///
/// This is the compile-per-test reference path: every test compiles the
/// module on a fresh machine, bypassing the compiled-code cache. Hot
/// drivers should prefer [`run_experiment_cached`] (or the keyed
/// variants), which produce identical reports without the
/// recompilation.
pub fn run_experiment(
    pristine: &Module,
    faulty: &Module,
    config: &MachineConfig,
) -> ExperimentReport {
    let base = run_suite_uncached(pristine, config);
    let injected = run_suite_uncached(faulty, config);
    compare_suites(&base, &injected)
}

/// [`run_experiment`] through the compiled-code cache, fingerprinting
/// both modules here.
pub fn run_experiment_cached(
    pristine: &Module,
    faulty: &Module,
    config: &MachineConfig,
) -> ExperimentReport {
    run_experiment_keyed(
        pristine,
        faulty,
        fingerprint(pristine),
        fingerprint(faulty),
        config,
    )
}

/// [`run_experiment`] for pre-computed module fingerprints: both suites
/// run precompiled code on one machine, reset between tests.
pub fn run_experiment_keyed(
    pristine: &Module,
    faulty: &Module,
    pristine_fp: u64,
    faulty_fp: u64,
    config: &MachineConfig,
) -> ExperimentReport {
    let mut machine = Machine::new(config.clone());
    run_experiment_in(
        &mut machine,
        pristine,
        faulty,
        pristine_fp,
        faulty_fp,
        config,
    )
}

/// [`run_experiment_keyed`] on a caller-provided machine — the hot-loop
/// entry point for drivers that sweep many experiments (schedule
/// exploration, campaign shards) and want to keep one machine's
/// allocations warm across all of them.
///
/// The pristine suite is replayed from the process-wide
/// [`SuiteCache`](crate::memo::SuiteCache): every unit of a campaign
/// shares one pristine module and config, so the baseline half of each
/// experiment after the first is a memo hit rather than a re-execution.
/// The memo key is content-addressed, so a hit is byte-identical to the
/// run it replaces.
pub fn run_experiment_in(
    machine: &mut Machine,
    pristine: &Module,
    faulty: &Module,
    pristine_fp: u64,
    faulty_fp: u64,
    config: &MachineConfig,
) -> ExperimentReport {
    let base =
        crate::memo::SuiteCache::global().run_keyed_in(machine, pristine, pristine_fp, config);
    let injected = run_suite_in(machine, faulty, faulty_fp, config);
    compare_suites(&base, &injected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfi_pylite::parse;

    const BASE: &str = "\
def price(qty):
    return qty * 10
def test_price():
    assert price(2) == 20
def test_zero():
    assert price(0) == 0
";

    #[test]
    fn wrong_value_fault_is_detected() {
        let pristine = parse(BASE).unwrap();
        let faulty = parse(&BASE.replace("qty * 10", "qty * 11")).unwrap();
        let report = run_experiment(&pristine, &faulty, &MachineConfig::default());
        assert!(report.activated);
        assert!(report.detected);
        assert_eq!(report.overall, FailureMode::WrongOutput);
        // qty = 0 masks the fault: that test still passes.
        let zero = report.tests.iter().find(|t| t.name == "test_zero").unwrap();
        assert_eq!(zero.mode, FailureMode::NoEffect);
    }

    #[test]
    fn equivalent_mutation_is_not_activated() {
        let pristine = parse(BASE).unwrap();
        let faulty = parse(&BASE.replace("qty * 10", "10 * qty")).unwrap();
        let report = run_experiment(&pristine, &faulty, &MachineConfig::default());
        assert!(!report.activated);
        assert!(!report.detected);
        assert_eq!(report.overall, FailureMode::NoEffect);
    }

    #[test]
    fn crash_fault_reports_kind() {
        let pristine = parse(BASE).unwrap();
        let faulty = parse(&BASE.replace(
            "    return qty * 10",
            "    raise TimeoutError(\"injected\")\n    return qty * 10",
        ))
        .unwrap();
        let report = run_experiment(&pristine, &faulty, &MachineConfig::default());
        assert_eq!(
            report.overall,
            FailureMode::CrashUnhandled("TimeoutError".into())
        );
        assert!(report.detected);
    }

    #[test]
    fn module_level_fault_fails_loading() {
        let pristine = parse(BASE).unwrap();
        let faulty = parse(&format!("raise RuntimeError(\"boot\")\n{BASE}")).unwrap();
        let report = run_experiment(&pristine, &faulty, &MachineConfig::default());
        assert!(report.detected);
        assert_eq!(
            report.overall,
            FailureMode::CrashUnhandled("RuntimeError".into())
        );
    }

    fn assert_reports_identical(a: &ExperimentReport, b: &ExperimentReport) {
        assert_eq!(a.overall, b.overall);
        assert_eq!(a.activated, b.activated);
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.tests.len(), b.tests.len());
        for (x, y) in a.tests.iter().zip(b.tests.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.pristine_passed, y.pristine_passed);
            assert_eq!(x.mode, y.mode);
        }
    }

    #[test]
    fn cached_experiment_matches_compile_per_run_reference() {
        let pristine = parse(BASE).unwrap();
        for replacement in ["qty * 11", "10 * qty", "qty + 10"] {
            let faulty = parse(&BASE.replace("qty * 10", replacement)).unwrap();
            let config = MachineConfig::default();
            assert_reports_identical(
                &run_experiment_cached(&pristine, &faulty, &config),
                &run_experiment(&pristine, &faulty, &config),
            );
        }
    }

    #[test]
    fn reused_machine_matches_fresh_machines_across_experiments() {
        let pristine = parse(BASE).unwrap();
        let mut machine = Machine::new(MachineConfig::default());
        for replacement in ["qty * 11", "qty * 12", "qty * 10"] {
            let faulty = parse(&BASE.replace("qty * 10", replacement)).unwrap();
            let config = MachineConfig::default();
            let (pfp, ffp) = (fingerprint(&pristine), fingerprint(&faulty));
            let reused = run_experiment_in(&mut machine, &pristine, &faulty, pfp, ffp, &config);
            let fresh = run_experiment_keyed(&pristine, &faulty, pfp, ffp, &config);
            assert_reports_identical(&reused, &fresh);
        }
    }
}
