//! The inject → activate → classify experiment pipeline.

use crate::classify::{classify, most_severe, FailureMode};
use crate::harness::run_suite;
use nfi_pylite::{MachineConfig, Module};

/// Per-test comparison between pristine and faulty runs.
#[derive(Debug, Clone)]
pub struct TestComparison {
    /// Test name.
    pub name: String,
    /// Whether the pristine run passed (sanity; expected true).
    pub pristine_passed: bool,
    /// Failure mode of the faulty run relative to pristine.
    pub mode: FailureMode,
}

/// Result of one injection experiment.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Per-test comparisons.
    pub tests: Vec<TestComparison>,
    /// Most severe mode across tests.
    pub overall: FailureMode,
    /// Whether the fault produced any observable effect.
    pub activated: bool,
    /// Whether the embedded test suite *detected* the fault (some test
    /// no longer passes).
    pub detected: bool,
}

/// Runs the pristine and faulty suites and classifies each test
/// differentially.
pub fn run_experiment(
    pristine: &Module,
    faulty: &Module,
    config: &MachineConfig,
) -> ExperimentReport {
    let base = run_suite(pristine, config);
    let injected = run_suite(faulty, config);
    let mut tests = Vec::new();
    let mut detected = false;
    for (p, f) in base.tests.iter().zip(injected.tests.iter()) {
        let mode = if f.module_failed {
            match &f.outcome.status {
                nfi_pylite::RunStatus::Uncaught(info) => {
                    FailureMode::CrashUnhandled(info.kind.clone())
                }
                nfi_pylite::RunStatus::Hung(_) => FailureMode::Hang,
                nfi_pylite::RunStatus::Completed => FailureMode::WrongOutput,
            }
        } else {
            classify(&f.outcome, &p.outcome)
        };
        if p.passed() && !f.passed() {
            detected = true;
        }
        tests.push(TestComparison {
            name: p.name.clone(),
            pristine_passed: p.passed(),
            mode,
        });
    }
    let modes: Vec<FailureMode> = tests.iter().map(|t| t.mode.clone()).collect();
    let overall = most_severe(&modes);
    let activated = tests.iter().any(|t| t.mode != FailureMode::NoEffect);
    ExperimentReport {
        tests,
        overall,
        activated,
        detected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfi_pylite::parse;

    const BASE: &str = "\
def price(qty):
    return qty * 10
def test_price():
    assert price(2) == 20
def test_zero():
    assert price(0) == 0
";

    #[test]
    fn wrong_value_fault_is_detected() {
        let pristine = parse(BASE).unwrap();
        let faulty = parse(&BASE.replace("qty * 10", "qty * 11")).unwrap();
        let report = run_experiment(&pristine, &faulty, &MachineConfig::default());
        assert!(report.activated);
        assert!(report.detected);
        assert_eq!(report.overall, FailureMode::WrongOutput);
        // qty = 0 masks the fault: that test still passes.
        let zero = report.tests.iter().find(|t| t.name == "test_zero").unwrap();
        assert_eq!(zero.mode, FailureMode::NoEffect);
    }

    #[test]
    fn equivalent_mutation_is_not_activated() {
        let pristine = parse(BASE).unwrap();
        let faulty = parse(&BASE.replace("qty * 10", "10 * qty")).unwrap();
        let report = run_experiment(&pristine, &faulty, &MachineConfig::default());
        assert!(!report.activated);
        assert!(!report.detected);
        assert_eq!(report.overall, FailureMode::NoEffect);
    }

    #[test]
    fn crash_fault_reports_kind() {
        let pristine = parse(BASE).unwrap();
        let faulty = parse(&BASE.replace(
            "    return qty * 10",
            "    raise TimeoutError(\"injected\")\n    return qty * 10",
        ))
        .unwrap();
        let report = run_experiment(&pristine, &faulty, &MachineConfig::default());
        assert_eq!(
            report.overall,
            FailureMode::CrashUnhandled("TimeoutError".into())
        );
        assert!(report.detected);
    }

    #[test]
    fn module_level_fault_fails_loading() {
        let pristine = parse(BASE).unwrap();
        let faulty = parse(&format!("raise RuntimeError(\"boot\")\n{BASE}")).unwrap();
        let report = run_experiment(&pristine, &faulty, &MachineConfig::default());
        assert!(report.detected);
        assert_eq!(
            report.overall,
            FailureMode::CrashUnhandled("RuntimeError".into())
        );
    }
}
