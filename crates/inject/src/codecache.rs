//! Content-addressed cache of compiled PyLite code objects.
//!
//! Compilation is deterministic — a module's bytecode is a pure function
//! of its AST, and the AST fingerprint (`nfi_pylite::fingerprint`) is a
//! pure function of the printed source — so a compiled [`Code`] object
//! can be shared by every run of the same module: every test of a suite,
//! every scheduler seed of an exploration sweep, every campaign replay.
//! This is the "compile once, run many" half of the cold-path overhaul;
//! without it the harness recompiled the same pristine and mutant
//! modules once *per test per seed*.
//!
//! The cache is keyed like `nfi_core`'s `MutantCache`: by module
//! fingerprint, so compiled mutants are content-addressed too — two
//! plans producing the same mutated source share one compile.
//!
//! Compiled code is `Rc`-based and therefore not `Send`, so unlike
//! [`crate::memo::Memo`] the table itself is **thread-local** (each
//! executor thread warms its own map — free of locks on the hot path),
//! while the hit/miss/eviction/entry counters are process-wide atomics
//! so `CacheStats` aggregates all threads, exactly like the other cache
//! sections in `/v1/metrics`. Eviction is the same exact LRU by logical
//! use-clock as `Memo`, applied per thread.

use crate::memo::CacheStats;
use nfi_pylite::code::Code;
use nfi_pylite::compile::compile_module;
use nfi_pylite::{Module, PyliteError};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-thread entry cap of the code cache. The whole 12-program corpus
/// plus every distinct mutant of a large campaign stays well below this;
/// the bound exists so a long-lived service streaming arbitrary programs
/// through one worker thread cannot grow without limit.
pub const CODE_CACHE_CAPACITY: usize = 4096;

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);
/// Entries resident across all live threads (each thread's map
/// subtracts its length when the thread exits).
static ENTRIES: AtomicU64 = AtomicU64::new(0);

struct CodeEntry {
    code: Rc<Code>,
    last_used: u64,
}

#[derive(Default)]
struct ThreadTable {
    map: HashMap<u64, CodeEntry>,
    clock: u64,
}

impl Drop for ThreadTable {
    fn drop(&mut self) {
        ENTRIES.fetch_sub(self.map.len() as u64, Ordering::Relaxed);
    }
}

thread_local! {
    static TABLE: RefCell<ThreadTable> = RefCell::new(ThreadTable::default());
}

/// The process-wide compiled-code cache (a zero-sized facade over
/// thread-local tables plus global counters).
pub struct CodeCache {
    _priv: (),
}

static GLOBAL: CodeCache = CodeCache { _priv: () };

impl CodeCache {
    /// The process-wide cache.
    pub fn global() -> &'static CodeCache {
        &GLOBAL
    }

    /// Returns the compiled code for a module whose fingerprint is
    /// `module_fp`, compiling on a miss. Hits return the thread-resident
    /// `Rc<Code>` without any work. Compile errors are returned and not
    /// cached (they are rare, cheap to reproduce, and keeping them out
    /// keeps the table homogeneous).
    ///
    /// # Errors
    ///
    /// Propagates [`nfi_pylite::compile::compile_module`] errors.
    pub fn compile(&self, module: &Module, module_fp: u64) -> Result<Rc<Code>, PyliteError> {
        let hit = TABLE.with(|t| {
            let mut t = t.borrow_mut();
            t.clock += 1;
            let clock = t.clock;
            t.map.get_mut(&module_fp).map(|e| {
                e.last_used = clock;
                Rc::clone(&e.code)
            })
        });
        if let Some(code) = hit {
            HITS.fetch_add(1, Ordering::Relaxed);
            return Ok(code);
        }
        let code = compile_module(module)?;
        MISSES.fetch_add(1, Ordering::Relaxed);
        TABLE.with(|t| {
            let mut t = t.borrow_mut();
            while t.map.len() >= CODE_CACHE_CAPACITY && !t.map.contains_key(&module_fp) {
                let Some(oldest) = t
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k)
                else {
                    break;
                };
                t.map.remove(&oldest);
                ENTRIES.fetch_sub(1, Ordering::Relaxed);
                EVICTIONS.fetch_add(1, Ordering::Relaxed);
            }
            t.clock += 1;
            let clock = t.clock;
            if t.map
                .insert(
                    module_fp,
                    CodeEntry {
                        code: Rc::clone(&code),
                        last_used: clock,
                    },
                )
                .is_none()
            {
                ENTRIES.fetch_add(1, Ordering::Relaxed);
            }
        });
        Ok(code)
    }

    /// Fingerprints the module and delegates to [`CodeCache::compile`].
    ///
    /// # Errors
    ///
    /// Propagates compile errors.
    pub fn compile_unkeyed(&self, module: &Module) -> Result<Rc<Code>, PyliteError> {
        self.compile(module, nfi_pylite::fingerprint(module))
    }

    /// Aggregated counters across all threads. `entries` counts every
    /// live thread's resident entries; `capacity` is the per-thread cap.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: HITS.load(Ordering::Relaxed),
            misses: MISSES.load(Ordering::Relaxed),
            entries: ENTRIES.load(Ordering::Relaxed) as usize,
            evictions: EVICTIONS.load(Ordering::Relaxed),
            capacity: Some(CODE_CACHE_CAPACITY),
        }
    }

    /// Drops the calling thread's entries and zeroes the global counters
    /// (cold-start benches; entries warmed by *other* threads stay
    /// resident there but are removed from the entry count they already
    /// surrendered on their thread's exit or here on ours).
    pub fn clear(&self) {
        TABLE.with(|t| {
            let mut t = t.borrow_mut();
            ENTRIES.fetch_sub(t.map.len() as u64, Ordering::Relaxed);
            t.map.clear();
            t.clock = 0;
        });
        HITS.store(0, Ordering::Relaxed);
        MISSES.store(0, Ordering::Relaxed);
        EVICTIONS.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfi_pylite::{fingerprint, parse, Machine, MachineConfig};

    // Counters are process-global and other test threads may touch them,
    // so the assertions here rely on thread-local observables (`Rc`
    // pointer identity) and per-call deltas on unique modules instead of
    // absolute counter values.

    #[test]
    fn second_compile_returns_the_same_rc() {
        let module = parse("x_cc_a = 1\nprint(x_cc_a)\n").unwrap();
        let fp = fingerprint(&module);
        let cache = CodeCache::global();
        let first = cache.compile(&module, fp).unwrap();
        let second = cache.compile(&module, fp).unwrap();
        assert!(Rc::ptr_eq(&first, &second), "hit must share the compile");
    }

    #[test]
    fn cached_code_runs_identically_to_fresh_compile() {
        let src = "def f(n):\n    return n * 3\nprint(f(14))\n";
        let module = parse(src).unwrap();
        let fp = fingerprint(&module);
        let cached = CodeCache::global().compile(&module, fp).unwrap();
        let mut m1 = Machine::new(MachineConfig::default());
        let out_cached = m1.run_code(cached);
        let mut m2 = Machine::new(MachineConfig::default());
        let out_fresh = m2.run_module(&module).unwrap();
        assert_eq!(out_cached.output, out_fresh.output);
        assert_eq!(out_cached.steps, out_fresh.steps);
    }

    #[test]
    fn distinct_modules_get_distinct_entries() {
        let a = parse("y_cc_one = 1\n").unwrap();
        let b = parse("y_cc_two = 2\n").unwrap();
        let cache = CodeCache::global();
        let ca = cache.compile(&a, fingerprint(&a)).unwrap();
        let cb = cache.compile(&b, fingerprint(&b)).unwrap();
        assert!(!Rc::ptr_eq(&ca, &cb));
    }

    #[test]
    fn compile_errors_are_not_cached() {
        let module = parse("break\n").unwrap();
        let fp = fingerprint(&module);
        let cache = CodeCache::global();
        assert!(cache.compile(&module, fp).is_err());
        assert!(cache.compile(&module, fp).is_err());
    }

    #[test]
    fn hits_accumulate_on_repeated_compiles() {
        let module = parse("z_cc_hits = 41 + 1\n").unwrap();
        let fp = fingerprint(&module);
        let cache = CodeCache::global();
        cache.compile(&module, fp).unwrap();
        let before = cache.stats().hits;
        cache.compile(&module, fp).unwrap();
        assert!(cache.stats().hits > before);
    }
}
