//! Curated incident-style fault scenarios.
//!
//! §IV-1 closes with: "to ensure a diverse and realistic dataset, we aim
//! to incorporate fault scenarios from open-source projects, documented
//! incidents, and expert simulations." This module provides that third
//! source: a curated catalogue of incident write-up style descriptions
//! (inspired by the recurring patterns in public cloud postmortems:
//! connection-pool exhaustion, thundering retries, expired sessions,
//! stuck workers, double charges, ...), each labelled with its fault
//! class.
//!
//! The catalogue serves two purposes:
//!
//! 1. **Dataset augmentation** — [`incident_training_records`] converts
//!    incidents into fine-tuning records by synthesizing the matching
//!    faulty code against a corpus program.
//! 2. **NLP evaluation** — the incidents are held-out, more colloquial
//!    phrasings than the operator templates, so classifier accuracy on
//!    them measures generalization (tested below).

use crate::DatasetRecord;
use nfi_sfi::FaultClass;

/// One curated incident scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Incident {
    /// Stable identifier.
    pub id: &'static str,
    /// Incident-report style description.
    pub description: &'static str,
    /// Ground-truth fault class.
    pub class: FaultClass,
}

/// The curated incident catalogue.
pub fn catalogue() -> &'static [Incident] {
    &[
        Incident {
            id: "inc-pool-exhaustion",
            description: "Database connections were checked out of the pool but never closed after a code change; over the next hours the pool was exhausted and requests began failing. Leak the connection handle the same way.",
            class: FaultClass::ResourceLeak,
        },
        Incident {
            id: "inc-slow-upstream",
            description: "An upstream dependency became extremely slow; calls that normally complete in milliseconds stalled for a minute due to missing deadline propagation. Simulate the same stall with a timeout.",
            class: FaultClass::Timing,
        },
        Incident {
            id: "inc-retry-storm",
            description: "A transient gateway error was retried in a tight loop without backoff, so the payment service saw the same request many times. Duplicate the call to the payment api twice.",
            class: FaultClass::Interface,
        },
        Incident {
            id: "inc-lost-update",
            description: "Two workers read and wrote the same counter concurrently without the lock, so increments were lost under load. Introduce the same race condition on shared state.",
            class: FaultClass::Concurrency,
        },
        Incident {
            id: "inc-swallowed-error",
            description: "The exception from the billing step was caught and ignored without recovery, so failures were silently swallowed and orders shipped unpaid.",
            class: FaultClass::ExceptionHandling,
        },
        Incident {
            id: "inc-off-by-one",
            description: "A report paginated one row short on every page because a boundary comparison was off by one in the loop.",
            class: FaultClass::WrongValue,
        },
        Incident {
            id: "inc-missing-validation",
            description: "A refactor accidentally removed the call to the validation step, so malformed records were accepted and corrupted downstream state. Omit the validation call the same way.",
            class: FaultClass::Omission,
        },
        Incident {
            id: "inc-buffer-smash",
            description: "A fixed-capacity ring buffer was written past its bounds when a burst arrived, overflowing the buffer and crashing the ingester.",
            class: FaultClass::BufferOverflow,
        },
        Incident {
            id: "inc-stuck-worker",
            description: "A worker held the queue lock and never released it after an early return, so every other worker deadlocked waiting on the lock.",
            class: FaultClass::Concurrency,
        },
        Incident {
            id: "inc-session-expiry",
            description: "Sessions expired while requests were still in flight because a stalled dependency delayed them past the TTL; users were logged out mid-checkout. Simulate the delay.",
            class: FaultClass::Timing,
        },
        Incident {
            id: "inc-wrong-config",
            description: "A wrong constant was assigned to the rate limit during deploy, an incorrect value ten times lower than intended, throttling all traffic.",
            class: FaultClass::WrongValue,
        },
        Incident {
            id: "inc-fd-leak",
            description: "File descriptors leaked on the error path because close was only called on success; after enough failures the process could not open sockets. Never close the handle on that path.",
            class: FaultClass::ResourceLeak,
        },
    ]
}

/// Converts incidents into fine-tuning records by synthesizing the
/// matching fault against a target corpus program. Incidents whose class
/// cannot be synthesized for the program are skipped.
pub fn incident_training_records(program: &nfi_corpus::SeedProgram) -> Vec<DatasetRecord> {
    let Ok(module) = program.module() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for incident in catalogue() {
        let spec = nfi_nlp::analyze(incident.description, Some(&module));
        let llm = nfi_llm::FaultLlm::untrained(nfi_llm::LlmConfig::default());
        let cands = llm.candidates(&spec, &module);
        let Some(cand) = cands.iter().find(|c| c.class == incident.class) else {
            continue;
        };
        out.push(DatasetRecord {
            id: format!("{}:{}", program.name, incident.id),
            program: program.name.to_string(),
            operator: format!("incident:{}", cand.pattern),
            class: incident.class,
            description: incident.description.to_string(),
            function: cand.target_function.clone(),
            line: 0,
            code_before: nfi_pylite::print_module(&module),
            code_after: cand.snippet.clone(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_has_unique_ids_and_covers_all_classes() {
        let cat = catalogue();
        let mut ids: Vec<_> = cat.iter().map(|i| i.id).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate incident ids");
        for class in FaultClass::ALL {
            assert!(
                cat.iter().any(|i| i.class == class),
                "no incident covers {class}"
            );
        }
    }

    #[test]
    fn nlp_classifier_generalizes_to_incident_phrasing() {
        // The incidents are phrased like postmortems, not like the
        // operator templates; the lexicon classifier should still get
        // most of them right.
        let cat = catalogue();
        let correct = cat
            .iter()
            .filter(|i| {
                let spec = nfi_nlp::analyze(i.description, None);
                spec.class == Some(i.class) || spec.secondary_class == Some(i.class)
            })
            .count();
        assert!(
            correct * 4 >= cat.len() * 3,
            "classifier got {correct}/{} incidents",
            cat.len()
        );
    }

    #[test]
    fn incidents_convert_to_training_records() {
        let program = nfi_corpus::by_name("ecommerce").unwrap();
        let records = incident_training_records(program);
        assert!(
            records.len() >= catalogue().len() / 2,
            "only {} incidents converted",
            records.len()
        );
        for r in &records {
            assert!(r.operator.starts_with("incident:"));
            assert!(!r.code_after.is_empty());
            nfi_pylite::parse(&r.code_after)
                .unwrap_or_else(|e| panic!("{}: snippet unparseable: {e}", r.id));
        }
    }

    #[test]
    fn incident_records_mix_into_datasets() {
        let program = nfi_corpus::by_name("banking").unwrap();
        let mut ds = crate::generate(
            &[*program],
            &crate::DatasetConfig {
                per_program_cap: 10,
                seed: 1,
            },
        );
        let before = ds.records.len();
        ds.records.extend(incident_training_records(program));
        assert!(ds.records.len() > before);
        // The merged dataset still serializes.
        let text = crate::jsonl::encode_all(&ds.records);
        assert_eq!(
            crate::jsonl::decode_all(&text).unwrap().len(),
            ds.records.len()
        );
    }
}
