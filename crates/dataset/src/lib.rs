//! # nfi-dataset — the fine-tuning dataset factory (§IV-1)
//!
//! Reproduces the paper's data-generation strategy: "we leverage an
//! existing software fault-injection tool \[ProFIPy] ... to generate a
//! dataset encompassing a wide array of fault scenarios across different
//! Python software systems ... documenting both the fault conditions and
//! the resultant code changes."
//!
//! [`generate`] sweeps the seed corpus with the full `nfi-sfi` operator
//! registry, pairing every applied mutation with a templated
//! natural-language description of the fault condition (multiple seeded
//! phrasings per operator, [`describe`]). Records serialize to JSONL via
//! a hand-rolled writer ([`jsonl`]) to keep the offline dependency set
//! minimal.
//!
//! ```
//! use nfi_dataset::{generate, DatasetConfig};
//!
//! let programs = [*nfi_corpus::by_name("kvcache").unwrap()];
//! let ds = generate(&programs, &DatasetConfig { per_program_cap: 16, seed: 1 });
//! assert!(!ds.records.is_empty());
//! assert!(ds.records.len() <= 16);
//! ```

pub mod describe;
pub mod incidents;
pub mod jsonl;

use nfi_corpus::SeedProgram;
use nfi_llm::TrainingRecord;
use nfi_pylite::{print_block, print_module};
use nfi_sfi::{Campaign, FaultClass};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// One dataset row: an NL fault condition plus the code change.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetRecord {
    /// Stable id (`program:operator:line:index`).
    pub id: String,
    /// Seed program name.
    pub program: String,
    /// Operator mnemonic.
    pub operator: String,
    /// Fault class.
    pub class: FaultClass,
    /// Natural-language fault description.
    pub description: String,
    /// Function containing the fault, when not module level.
    pub function: Option<String>,
    /// Source line of the injection site.
    pub line: u32,
    /// Pristine code of the mutated region.
    pub code_before: String,
    /// Faulty code of the mutated region.
    pub code_after: String,
}

impl DatasetRecord {
    /// Converts to the LLM's fine-tuning record shape.
    pub fn to_training(&self) -> TrainingRecord {
        TrainingRecord {
            id: self.id.clone(),
            description: self.description.clone(),
            class: self.class,
            snippet: self.code_after.clone(),
            operator: self.operator.clone(),
            program: self.program.clone(),
        }
    }
}

/// Dataset generation parameters.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Maximum records per seed program (sampled when exceeded).
    pub per_program_cap: usize,
    /// Sampling / phrasing seed.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            per_program_cap: 200,
            seed: 0xDA7A,
        }
    }
}

/// A generated dataset.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// All records.
    pub records: Vec<DatasetRecord>,
}

impl Dataset {
    /// Records per fault class.
    pub fn class_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for r in &self.records {
            *m.entry(r.class.key()).or_insert(0) += 1;
        }
        m
    }

    /// Records per operator.
    pub fn operator_counts(&self) -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        for r in &self.records {
            *m.entry(r.operator.clone()).or_insert(0) += 1;
        }
        m
    }

    /// Converts all records for LLM fine-tuning.
    pub fn to_training_records(&self) -> Vec<TrainingRecord> {
        self.records
            .iter()
            .map(DatasetRecord::to_training)
            .collect()
    }

    /// Seeded shuffle + split into (train, eval) by fraction.
    pub fn split(
        &self,
        train_fraction: f64,
        seed: u64,
    ) -> (Vec<DatasetRecord>, Vec<DatasetRecord>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut all = self.records.clone();
        all.shuffle(&mut rng);
        let n_train = ((all.len() as f64) * train_fraction).round() as usize;
        let eval = all.split_off(n_train.min(all.len()));
        (all, eval)
    }
}

/// Generates a dataset by sweeping the corpus with the full operator
/// registry (capped and seeded per program).
pub fn generate(programs: &[SeedProgram], config: &DatasetConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut records = Vec::new();
    for program in programs {
        let Ok(module) = program.module() else {
            continue;
        };
        let campaign = Campaign::full(&module);
        let mut plans = campaign.plans().to_vec();
        plans.shuffle(&mut rng);
        plans.truncate(config.per_program_cap);
        for (i, plan) in plans.iter().enumerate() {
            let Some(fault) = campaign.apply(plan) else {
                continue;
            };
            let region_before = region_source(&module, plan.site.function.as_deref());
            let region_after = region_source(&fault.module, plan.site.function.as_deref());
            let description = describe::render(plan.operator, &plan.site, program.name, &mut rng);
            records.push(DatasetRecord {
                id: format!(
                    "{}:{}:{}:{}",
                    program.name, plan.operator, plan.site.line, i
                ),
                program: program.name.to_string(),
                operator: plan.operator.to_string(),
                class: plan.class,
                description,
                function: plan.site.function.clone(),
                line: plan.site.line,
                code_before: region_before,
                code_after: region_after,
            });
        }
    }
    Dataset { records }
}

/// The source of the mutated region: the named function when present,
/// the whole module otherwise.
fn region_source(module: &nfi_pylite::Module, function: Option<&str>) -> String {
    match function.and_then(|f| module.find_def(f)) {
        Some(def) => print_block(std::slice::from_ref(def), 0),
        None => print_module(module),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dataset() -> Dataset {
        let programs = [*nfi_corpus::by_name("kvcache").unwrap()];
        generate(
            &programs,
            &DatasetConfig {
                per_program_cap: 30,
                seed: 7,
            },
        )
    }

    #[test]
    fn generation_produces_capped_records() {
        let ds = small_dataset();
        assert!(!ds.records.is_empty());
        assert!(ds.records.len() <= 30);
    }

    #[test]
    fn records_document_condition_and_change() {
        let ds = small_dataset();
        for r in &ds.records {
            assert!(!r.description.is_empty(), "{}: empty description", r.id);
            assert_ne!(
                r.code_before, r.code_after,
                "{}: mutation must change the region",
                r.id
            );
            // The faulty region must be parseable PyLite.
            nfi_pylite::parse(&r.code_after)
                .unwrap_or_else(|e| panic!("{}: code_after unparseable: {e}", r.id));
        }
    }

    #[test]
    fn full_corpus_covers_many_classes() {
        let ds = generate(
            nfi_corpus::all(),
            &DatasetConfig {
                per_program_cap: 40,
                seed: 3,
            },
        );
        let counts = ds.class_counts();
        assert!(
            counts.len() >= 6,
            "expected at least 6 fault classes, got {counts:?}"
        );
    }

    #[test]
    fn split_partitions_all_records() {
        let ds = small_dataset();
        let (train, eval) = ds.split(0.8, 5);
        assert_eq!(train.len() + eval.len(), ds.records.len());
        assert!(!train.is_empty());
        // Deterministic per seed.
        let (train2, _) = ds.split(0.8, 5);
        assert_eq!(train[0].id, train2[0].id);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = small_dataset();
        let b = small_dataset();
        assert_eq!(a.records.len(), b.records.len());
        assert_eq!(a.records[0].id, b.records[0].id);
        assert_eq!(a.records[0].description, b.records[0].description);
    }

    #[test]
    fn training_records_carry_snippets() {
        let ds = small_dataset();
        let training = ds.to_training_records();
        assert_eq!(training.len(), ds.records.len());
        assert_eq!(training[0].snippet, ds.records[0].code_after);
    }
}
