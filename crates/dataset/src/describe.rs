//! Natural-language description templates per operator.
//!
//! Each operator has several phrasings; a seeded RNG picks one so the
//! dataset has linguistic variety ("to ensure a diverse and realistic
//! dataset", §IV-1) while staying reproducible.

use nfi_sfi::Site;
use rand::rngs::StdRng;
use rand::Rng;

/// Renders an NL fault condition for an operator application.
pub fn render(operator: &str, site: &Site, program: &str, rng: &mut StdRng) -> String {
    let loc = match &site.function {
        Some(f) => format!("in the {f} function of the {program} service"),
        None => format!("at module level of the {program} service"),
    };
    let d = &site.detail;
    let options: Vec<String> = match operator {
        "MFC" => vec![
            format!("Simulate a missing call to {d} {loc}."),
            format!("The call to {d} is accidentally omitted {loc}."),
            format!("Skip invoking {d} {loc} so its side effects never happen."),
        ],
        "MIA" => vec![
            format!("Remove the guard `if {d}` {loc} so the guarded code always executes."),
            format!("The condition `{d}` is no longer checked {loc}."),
        ],
        "MIEB" => vec![
            format!("Drop the else branch ({d}) {loc}."),
            format!("The fallback path is missing {loc}: the else branch was deleted."),
        ],
        "MVIV" => vec![
            format!("The variable {d} is never initialized {loc}."),
            format!("Simulate a missing initialization of {d} {loc}."),
        ],
        "MLPA" => vec![
            format!(
                "Skip the update step of {d} {loc} (a small part of the algorithm is missing)."
            ),
            format!("The accumulator {d} is not updated {loc}."),
        ],
        "MRS" => vec![
            format!("Return None instead of `{d}` {loc}."),
            format!("The result `{d}` is dropped {loc}: the function returns nothing."),
        ],
        "WVAV" => vec![
            format!("Assign a wrong value (perturbing {d}) {loc}."),
            format!("A wrong constant replaces {d} {loc}."),
        ],
        "WAEP" => vec![
            format!("Use the wrong arithmetic operator ({d}) {loc}."),
            format!("An arithmetic expression uses the wrong operator ({d}) {loc}."),
        ],
        "WLEC" => vec![
            format!("Invert the branch condition `{d}` {loc}."),
            format!("The logical condition `{d}` is negated {loc}."),
        ],
        "OBOE" => vec![
            format!("Introduce an off-by-one boundary ({d}) {loc}."),
            format!("The loop boundary is off by one ({d}) {loc}."),
        ],
        "WPFV" => vec![
            format!("Pass a wrong argument value (perturbing {d}) {loc}."),
            format!("A call receives the wrong parameter (was {d}) {loc}."),
        ],
        "SDC" => vec![
            format!("Call {d} twice instead of once {loc} (duplicate submission)."),
            format!("Duplicate the invocation of {d} {loc}."),
        ],
        "EHS" => vec![
            format!("Swallow {d} exceptions without any recovery logic {loc}."),
            format!("The except handler for {d} does nothing {loc}: errors are silently ignored."),
        ],
        "EHW" => vec![
            format!("Catch the wrong exception kind instead of {d} {loc}."),
            format!("The handler {loc} expects the wrong error type (was {d})."),
        ],
        "DFR" => vec![
            format!("Make {d} fail with a TimeoutError as if a dependency timed out {loc}."),
            format!("Simulate a dependency timeout: {d} raises a TimeoutError {loc}."),
        ],
        "LRA" => vec![
            format!(
                "Access shared state without acquiring lock `{d}` {loc}, opening a race condition."
            ),
            format!("Remove the `{d}` lock acquire/release pair {loc} (race window)."),
        ],
        "LRM" => vec![
            format!(
                "Never release lock `{d}` after acquiring it {loc} (deadlock under contention)."
            ),
            format!("The release of lock `{d}` is missing {loc}."),
        ],
        "RLK" => vec![
            format!("Leak the resource `{d}` by never closing it {loc}."),
            format!("The handle `{d}` is never closed {loc} (resource leak)."),
        ],
        "BCS" => vec![
            format!("Allocate the buffer with half its intended capacity ({d}) {loc}."),
            format!("The buffer {loc} is undersized (intended capacity {d})."),
        ],
        "BWO" => vec![
            format!("Write to the buffer without checking `{d}` {loc} (bounds check removed)."),
            format!("The capacity guard `{d}` is missing {loc}, allowing overflow."),
        ],
        "TDL" => vec![
            format!("Delay 60 seconds before calling {d} {loc} (slow dependency)."),
            format!("A long stall precedes the call to {d} {loc}."),
        ],
        "STL" => vec![
            format!("Stretch the existing sleep of {d} seconds by 100x {loc}."),
            format!("The delay of {d} seconds becomes 100 times longer {loc}."),
        ],
        other => vec![format!("Apply fault operator {other} ({d}) {loc}.")],
    };
    options[rng.gen_range(0..options.len())].clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfi_pylite::ast::NodeId;
    use rand::SeedableRng;

    fn site() -> Site {
        Site {
            stmt_id: NodeId(1),
            function: Some("process_transaction".into()),
            line: 10,
            detail: "charge_payment".into(),
        }
    }

    #[test]
    fn known_operators_mention_detail_and_location() {
        let mut rng = StdRng::seed_from_u64(1);
        for op in ["MFC", "MIA", "EHS", "LRA", "RLK", "TDL"] {
            let text = render(op, &site(), "ecommerce", &mut rng);
            assert!(text.contains("ecommerce"), "{op}: {text}");
            assert!(text.contains("process_transaction"), "{op}: {text}");
        }
    }

    #[test]
    fn module_level_sites_say_module_level() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = Site {
            function: None,
            ..site()
        };
        let text = render("MVIV", &s, "kvcache", &mut rng);
        assert!(text.contains("module level"));
    }

    #[test]
    fn phrasing_varies_with_rng_state() {
        let mut rng = StdRng::seed_from_u64(2);
        let texts: Vec<String> = (0..8)
            .map(|_| render("MFC", &site(), "p", &mut rng))
            .collect();
        let unique: std::collections::BTreeSet<_> = texts.iter().collect();
        assert!(unique.len() > 1, "expected phrasing variety: {texts:?}");
    }

    #[test]
    fn unknown_operator_gets_generic_phrase() {
        let mut rng = StdRng::seed_from_u64(3);
        let text = render("ZZZ", &site(), "p", &mut rng);
        assert!(text.contains("ZZZ"));
    }
}
