//! Hand-rolled JSONL serialization for dataset records.
//!
//! `serde_json` is not in the offline dependency allowlist, so records
//! are written with a small purpose-built encoder and read back with a
//! minimal flat-object parser (strings / integers / null — exactly what
//! [`DatasetRecord`] needs). Round-tripping is property-tested.

use crate::DatasetRecord;
use nfi_sfi::FaultClass;
use std::collections::BTreeMap;

/// Escapes a string for JSON.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Encodes one record as a single JSON line (no trailing newline).
pub fn encode(r: &DatasetRecord) -> String {
    let function = match &r.function {
        Some(f) => format!("\"{}\"", escape(f)),
        None => "null".to_string(),
    };
    format!(
        "{{\"id\":\"{}\",\"program\":\"{}\",\"operator\":\"{}\",\"class\":\"{}\",\"description\":\"{}\",\"function\":{},\"line\":{},\"code_before\":\"{}\",\"code_after\":\"{}\"}}",
        escape(&r.id),
        escape(&r.program),
        escape(&r.operator),
        r.class.key(),
        escape(&r.description),
        function,
        r.line,
        escape(&r.code_before),
        escape(&r.code_after),
    )
}

/// Encodes a whole dataset as JSONL text.
pub fn encode_all(records: &[DatasetRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&encode(r));
        out.push('\n');
    }
    out
}

/// Decodes one JSON line back into a record.
///
/// # Errors
///
/// Returns a message describing the first structural problem.
pub fn decode(line: &str) -> Result<DatasetRecord, String> {
    let fields = parse_flat_object(line)?;
    let get = |k: &str| -> Result<&JsonValue, String> {
        fields.get(k).ok_or_else(|| format!("missing field `{k}`"))
    };
    let string = |k: &str| -> Result<String, String> {
        match get(k)? {
            JsonValue::Str(s) => Ok(s.clone()),
            other => Err(format!("field `{k}` is not a string: {other:?}")),
        }
    };
    let class_key = string("class")?;
    let class = FaultClass::from_key(&class_key)
        .ok_or_else(|| format!("unknown fault class `{class_key}`"))?;
    let function = match get("function")? {
        JsonValue::Null => None,
        JsonValue::Str(s) => Some(s.clone()),
        other => return Err(format!("field `function` invalid: {other:?}")),
    };
    let line_no = match get("line")? {
        JsonValue::Num(n) => *n as u32,
        other => return Err(format!("field `line` is not a number: {other:?}")),
    };
    Ok(DatasetRecord {
        id: string("id")?,
        program: string("program")?,
        operator: string("operator")?,
        class,
        description: string("description")?,
        function,
        line: line_no,
        code_before: string("code_before")?,
        code_after: string("code_after")?,
    })
}

/// Decodes JSONL text (blank lines skipped).
///
/// # Errors
///
/// Reports the first undecodable line with its number.
pub fn decode_all(text: &str) -> Result<Vec<DatasetRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(decode(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Str(String),
    Num(f64),
    Null,
}

/// Parses a flat (non-nested) JSON object of string/number/null values.
fn parse_flat_object(s: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let chars: Vec<char> = s.trim().chars().collect();
    let mut i = 0usize;
    let mut out = BTreeMap::new();
    expect(&chars, &mut i, '{')?;
    skip_ws(&chars, &mut i);
    if peek(&chars, i) == Some('}') {
        return Ok(out);
    }
    loop {
        skip_ws(&chars, &mut i);
        let key = parse_string(&chars, &mut i)?;
        skip_ws(&chars, &mut i);
        expect(&chars, &mut i, ':')?;
        skip_ws(&chars, &mut i);
        let value = match peek(&chars, i) {
            Some('"') => JsonValue::Str(parse_string(&chars, &mut i)?),
            Some('n') => {
                for expected in ['n', 'u', 'l', 'l'] {
                    expect(&chars, &mut i, expected)?;
                }
                JsonValue::Null
            }
            Some(c) if c.is_ascii_digit() || c == '-' => {
                let start = i;
                while peek(&chars, i)
                    .map(|c| {
                        c.is_ascii_digit()
                            || c == '-'
                            || c == '.'
                            || c == 'e'
                            || c == 'E'
                            || c == '+'
                    })
                    .unwrap_or(false)
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                JsonValue::Num(text.parse().map_err(|_| format!("bad number `{text}`"))?)
            }
            other => return Err(format!("unexpected value start {other:?} at {i}")),
        };
        out.insert(key, value);
        skip_ws(&chars, &mut i);
        match peek(&chars, i) {
            Some(',') => {
                i += 1;
            }
            Some('}') => break,
            other => return Err(format!("expected `,` or `}}`, found {other:?}")),
        }
    }
    Ok(out)
}

fn peek(chars: &[char], i: usize) -> Option<char> {
    chars.get(i).copied()
}

fn skip_ws(chars: &[char], i: &mut usize) {
    while peek(chars, *i).map(|c| c.is_whitespace()).unwrap_or(false) {
        *i += 1;
    }
}

fn expect(chars: &[char], i: &mut usize, c: char) -> Result<(), String> {
    if peek(chars, *i) == Some(c) {
        *i += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{c}` at {}, found {:?}",
            i,
            peek(chars, *i)
        ))
    }
}

fn parse_string(chars: &[char], i: &mut usize) -> Result<String, String> {
    expect(chars, i, '"')?;
    let mut out = String::new();
    loop {
        match peek(chars, *i) {
            None => return Err("unterminated string".to_string()),
            Some('"') => {
                *i += 1;
                return Ok(out);
            }
            Some('\\') => {
                *i += 1;
                match peek(chars, *i) {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('u') => {
                        let hex: String = chars
                            .get(*i + 1..*i + 5)
                            .map(|s| s.iter().collect())
                            .unwrap_or_default();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *i += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *i += 1;
            }
            Some(c) => {
                out.push(c);
                *i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> DatasetRecord {
        DatasetRecord {
            id: "p:MFC:3:0".into(),
            program: "ecommerce".into(),
            operator: "MFC".into(),
            class: FaultClass::Omission,
            description: "Skip the \"critical\" call\nwith newline".into(),
            function: Some("process_transaction".into()),
            line: 3,
            code_before: "def f():\n    g()\n".into(),
            code_after: "def f():\n    pass\n".into(),
        }
    }

    #[test]
    fn roundtrip_single_record() {
        let r = record();
        let encoded = encode(&r);
        let decoded = decode(&encoded).unwrap();
        assert_eq!(r, decoded);
    }

    #[test]
    fn roundtrip_with_null_function() {
        let r = DatasetRecord {
            function: None,
            ..record()
        };
        assert_eq!(decode(&encode(&r)).unwrap(), r);
    }

    #[test]
    fn roundtrip_whole_dataset() {
        let records = vec![
            record(),
            DatasetRecord {
                id: "x".into(),
                ..record()
            },
        ];
        let text = encode_all(&records);
        assert_eq!(decode_all(&text).unwrap(), records);
    }

    #[test]
    fn escape_handles_control_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode("not json").is_err());
        assert!(decode("{\"id\":\"x\"}").is_err(), "missing fields");
        assert!(decode_all("{bad}\n").is_err());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = format!("\n{}\n\n", encode(&record()));
        assert_eq!(decode_all(&text).unwrap().len(), 1);
    }
}
