//! Hand-rolled JSONL serialization for dataset records.
//!
//! `serde_json` is not in the offline dependency allowlist, so records
//! are written and read back with the workspace's shared flat JSON
//! codec ([`nfi_sfi::jsontext`] — the same one behind campaign plan
//! files and shard documents), specialized here to [`DatasetRecord`].
//! Round-tripping is property-tested.

use crate::DatasetRecord;
pub use nfi_sfi::jsontext::escape;
use nfi_sfi::jsontext::{get_opt_str, get_str, get_u64, parse_flat_object};
use nfi_sfi::FaultClass;

/// Encodes one record as a single JSON line (no trailing newline).
pub fn encode(r: &DatasetRecord) -> String {
    let function = match &r.function {
        Some(f) => format!("\"{}\"", escape(f)),
        None => "null".to_string(),
    };
    format!(
        "{{\"id\":\"{}\",\"program\":\"{}\",\"operator\":\"{}\",\"class\":\"{}\",\"description\":\"{}\",\"function\":{},\"line\":{},\"code_before\":\"{}\",\"code_after\":\"{}\"}}",
        escape(&r.id),
        escape(&r.program),
        escape(&r.operator),
        r.class.key(),
        escape(&r.description),
        function,
        r.line,
        escape(&r.code_before),
        escape(&r.code_after),
    )
}

/// Encodes a whole dataset as JSONL text.
pub fn encode_all(records: &[DatasetRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&encode(r));
        out.push('\n');
    }
    out
}

/// Decodes one JSON line back into a record.
///
/// # Errors
///
/// Returns a message describing the first structural problem.
pub fn decode(line: &str) -> Result<DatasetRecord, String> {
    let fields = parse_flat_object(line)?;
    let class_key = get_str(&fields, "class")?;
    let class = FaultClass::from_key(&class_key)
        .ok_or_else(|| format!("unknown fault class `{class_key}`"))?;
    Ok(DatasetRecord {
        id: get_str(&fields, "id")?,
        program: get_str(&fields, "program")?,
        operator: get_str(&fields, "operator")?,
        class,
        description: get_str(&fields, "description")?,
        function: get_opt_str(&fields, "function")?,
        line: u32::try_from(get_u64(&fields, "line")?)
            .map_err(|_| "field `line` does not fit in u32".to_string())?,
        code_before: get_str(&fields, "code_before")?,
        code_after: get_str(&fields, "code_after")?,
    })
}

/// Decodes JSONL text (blank lines skipped).
///
/// # Errors
///
/// Reports the first undecodable line with its number.
pub fn decode_all(text: &str) -> Result<Vec<DatasetRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(decode(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> DatasetRecord {
        DatasetRecord {
            id: "p:MFC:3:0".into(),
            program: "ecommerce".into(),
            operator: "MFC".into(),
            class: FaultClass::Omission,
            description: "Skip the \"critical\" call\nwith newline".into(),
            function: Some("process_transaction".into()),
            line: 3,
            code_before: "def f():\n    g()\n".into(),
            code_after: "def f():\n    pass\n".into(),
        }
    }

    #[test]
    fn roundtrip_single_record() {
        let r = record();
        let encoded = encode(&r);
        let decoded = decode(&encoded).unwrap();
        assert_eq!(r, decoded);
    }

    #[test]
    fn roundtrip_with_null_function() {
        let r = DatasetRecord {
            function: None,
            ..record()
        };
        assert_eq!(decode(&encode(&r)).unwrap(), r);
    }

    #[test]
    fn roundtrip_whole_dataset() {
        let records = vec![
            record(),
            DatasetRecord {
                id: "x".into(),
                ..record()
            },
        ];
        let text = encode_all(&records);
        assert_eq!(decode_all(&text).unwrap(), records);
    }

    #[test]
    fn escape_handles_control_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode("not json").is_err());
        assert!(decode("{\"id\":\"x\"}").is_err(), "missing fields");
        assert!(decode_all("{bad}\n").is_err());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = format!("\n{}\n\n", encode(&record()));
        assert_eq!(decode_all(&text).unwrap().len(), 1);
    }
}
