//! # nfi-corpus — seed programs for fault-injection experiments
//!
//! Twelve small but realistic PyLite services, each shipping its own
//! `test_*` suite. They play the role of the "different Python software
//! systems" the paper's §IV-1 dataset generation sweeps over, and of the
//! applications under test in the end-to-end pipeline.
//!
//! Every program is verified (in this crate's tests) to parse, run its
//! module body cleanly, and pass its entire embedded test suite on the
//! pristine source — a precondition for differential fault-injection
//! experiments.
//!
//! ```
//! let p = nfi_corpus::by_name("ecommerce").expect("present");
//! assert!(p.source.contains("def process_transaction"));
//! assert_eq!(nfi_corpus::all().len(), 12);
//! ```

use nfi_pylite::analysis::ModuleIndex;
use nfi_pylite::{parse, Module, PyliteError};

/// One embedded seed program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedProgram {
    /// Short unique name (e.g. `"ecommerce"`).
    pub name: &'static str,
    /// Application domain, for reporting.
    pub domain: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// PyLite source text.
    pub source: &'static str,
}

impl SeedProgram {
    /// Parses the program.
    ///
    /// # Errors
    ///
    /// Propagates parse errors (none are expected for embedded sources;
    /// the crate test suite enforces this).
    pub fn module(&self) -> Result<Module, PyliteError> {
        parse(self.source)
    }

    /// Names of the program's embedded `test_*` functions.
    pub fn test_names(&self) -> Vec<String> {
        let module = self.module().expect("embedded corpus source parses");
        ModuleIndex::build(&module)
            .test_functions()
            .into_iter()
            .map(|s| s.to_string())
            .collect()
    }

    /// Names of the program's non-test functions (injection candidates).
    pub fn target_functions(&self) -> Vec<String> {
        let module = self.module().expect("embedded corpus source parses");
        ModuleIndex::build(&module)
            .functions
            .iter()
            .filter(|f| !f.name.starts_with("test_"))
            .map(|f| f.name.clone())
            .collect()
    }
}

macro_rules! programs {
    ($(($name:literal, $domain:literal, $desc:literal, $file:literal)),* $(,)?) => {
        &[$(SeedProgram {
            name: $name,
            domain: $domain,
            description: $desc,
            source: include_str!(concat!("../programs/", $file)),
        }),*]
    };
}

/// All embedded seed programs, in stable order.
pub fn all() -> &'static [SeedProgram] {
    programs![
        (
            "ecommerce",
            "web-commerce",
            "order processing with payment gateway and stock reservation",
            "ecommerce.py"
        ),
        (
            "banking",
            "finance",
            "lock-guarded account ledger with transfers and audit trail",
            "banking.py"
        ),
        (
            "kvcache",
            "infrastructure",
            "LRU cache with hit/miss statistics",
            "kvcache.py"
        ),
        (
            "jobqueue",
            "infrastructure",
            "work queue drained by a pool of cooperative workers",
            "jobqueue.py"
        ),
        (
            "inventory",
            "logistics",
            "warehouse stock with reservations and releases",
            "inventory.py"
        ),
        (
            "ratelimiter",
            "infrastructure",
            "token-bucket rate limiter on the virtual clock",
            "ratelimiter.py"
        ),
        (
            "filestore",
            "storage",
            "handle-based file store exercising resource cleanup",
            "filestore.py"
        ),
        (
            "sessions",
            "web",
            "session manager with TTL expiry",
            "sessions.py"
        ),
        (
            "metrics",
            "observability",
            "metric series aggregation: mean, peak, percentiles",
            "metrics.py"
        ),
        (
            "orderbook",
            "finance",
            "limit order book with price-time matching",
            "orderbook.py"
        ),
        (
            "textindex",
            "search",
            "inverted text index with AND queries",
            "textindex.py"
        ),
        (
            "pipeline",
            "concurrency",
            "bounded producer/consumer pipeline with backpressure",
            "pipeline.py"
        ),
    ]
}

/// Finds a seed program by name.
pub fn by_name(name: &str) -> Option<&'static SeedProgram> {
    all().iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfi_pylite::{Machine, MachineConfig, RunStatus};

    #[test]
    fn twelve_programs_with_unique_names() {
        let names: Vec<_> = all().iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 12);
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn every_program_parses() {
        for p in all() {
            p.module()
                .unwrap_or_else(|e| panic!("{} failed to parse: {e}", p.name));
        }
    }

    #[test]
    fn every_program_has_tests_and_targets() {
        for p in all() {
            assert!(
                p.test_names().len() >= 3,
                "{} needs at least 3 tests, has {}",
                p.name,
                p.test_names().len()
            );
            assert!(
                !p.target_functions().is_empty(),
                "{} needs injection targets",
                p.name
            );
        }
    }

    #[test]
    fn pristine_programs_pass_their_suites() {
        for p in all() {
            for test in p.test_names() {
                let mut m = Machine::new(MachineConfig::default());
                let module_out = m
                    .run_source(p.source)
                    .unwrap_or_else(|e| panic!("{} compile: {e}", p.name));
                assert!(
                    matches!(module_out.status, RunStatus::Completed),
                    "{} module body failed: {:?}",
                    p.name,
                    module_out.status
                );
                let out = m.call(&test, vec![]).unwrap();
                assert!(
                    matches!(out.status, RunStatus::Completed),
                    "{}::{} failed: {:?}\noutput: {}",
                    p.name,
                    test,
                    out.status,
                    out.output
                );
                assert!(
                    out.task_failures.is_empty(),
                    "{}::{} spawned-task failures: {:?}",
                    p.name,
                    test,
                    out.task_failures
                );
            }
        }
    }

    #[test]
    fn pristine_programs_report_no_races_or_leaks() {
        for p in all() {
            for test in p.test_names() {
                let mut m = Machine::new(MachineConfig::default());
                m.run_source(p.source).unwrap();
                let out = m.call(&test, vec![]).unwrap();
                assert!(
                    out.races.is_empty(),
                    "{}::{} raced: {:?}",
                    p.name,
                    test,
                    out.races
                );
                assert!(
                    out.leaks.is_empty(),
                    "{}::{} leaked: {:?}",
                    p.name,
                    test,
                    out.leaks
                );
                assert!(
                    out.overflows.is_empty(),
                    "{}::{} overflowed: {:?}",
                    p.name,
                    test,
                    out.overflows
                );
            }
        }
    }

    #[test]
    fn pristine_suites_pass_under_many_schedules() {
        // Concurrency-heavy programs must pass for any scheduler seed.
        for name in ["banking", "jobqueue", "pipeline"] {
            let p = by_name(name).unwrap();
            for seed in 0..5u64 {
                for test in p.test_names() {
                    let mut m = Machine::new(MachineConfig {
                        seed,
                        quantum: 5,
                        ..MachineConfig::default()
                    });
                    m.run_source(p.source).unwrap();
                    let out = m.call(&test, vec![]).unwrap();
                    assert!(
                        matches!(out.status, RunStatus::Completed),
                        "{name}::{test} seed {seed}: {:?}\n{}",
                        out.status,
                        out.output
                    );
                    assert!(
                        out.races.is_empty(),
                        "{name}::{test} seed {seed} raced: {:?}",
                        out.races
                    );
                }
            }
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("ecommerce").is_some());
        assert!(by_name("not-a-program").is_none());
    }
}
