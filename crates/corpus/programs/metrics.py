series = []

def record(v):
    series.append(v)
    return len(series)

def mean(xs):
    if len(xs) == 0:
        return 0
    return sum(xs) / len(xs)

def peak(xs):
    if len(xs) == 0:
        return 0
    return max(xs)

def percentile(xs, p):
    if len(xs) == 0:
        return 0
    ordered = sorted(xs)
    idx = (len(ordered) - 1) * p // 100
    return ordered[idx]

def summarize(xs):
    report = {}
    report["mean"] = mean(xs)
    report["peak"] = peak(xs)
    report["p50"] = percentile(xs, 50)
    return report

def test_mean_and_peak():
    r = summarize([2, 4, 6])
    assert r["mean"] == 4
    assert r["peak"] == 6

def test_percentile_median():
    assert percentile([9, 1, 5], 50) == 5
    assert percentile([4], 99) == 4

def test_empty_series_is_zero():
    assert mean([]) == 0
    assert peak([]) == 0
    assert percentile([], 50) == 0

def test_record_appends():
    record(3)
    record(7)
    assert len(series) == 2
    assert peak(series) == 7
