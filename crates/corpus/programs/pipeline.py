m = lock()
queue = []
limit = 4
consumed = []

def push(item):
    while True:
        m.acquire()
        if len(queue) < limit:
            queue.append(item)
            m.release()
            return True
        m.release()
        sleep(1)

def pull():
    while True:
        m.acquire()
        if len(queue) > 0:
            item = queue.pop(0)
            m.release()
            return item
        m.release()
        sleep(1)

def transform(item):
    return item * item

def producer(n):
    for i in range(n):
        push(i + 1)

def consumer(n):
    for i in range(n):
        item = pull()
        m.acquire()
        consumed.append(transform(item))
        m.release()

def test_pipeline_moves_all_items():
    t1 = spawn(producer, 6)
    t2 = spawn(consumer, 6)
    join(t1)
    join(t2)
    assert len(consumed) == 6
    assert len(queue) == 0

def test_backpressure_bounds_queue():
    t1 = spawn(producer, 8)
    t2 = spawn(consumer, 8)
    join(t1)
    join(t2)
    assert len(queue) <= limit
    assert len(consumed) == 8

def test_transform_squares():
    assert transform(5) == 25

def test_consumed_in_order():
    t1 = spawn(producer, 3)
    t2 = spawn(consumer, 3)
    join(t1)
    join(t2)
    assert consumed[0] == 1
    assert consumed[1] == 4
    assert consumed[2] == 9
