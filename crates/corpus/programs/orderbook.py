bids = []
asks = []
fills = []

def log_fill(price, qty):
    entry = []
    entry.append(price)
    entry.append(qty)
    fills.append(entry)

def best_bid():
    best = 0
    for b in bids:
        if b[0] > best:
            best = b[0]
    return best

def match_ask(price, qty):
    i = 0
    while i < len(bids):
        bid = bids[i]
        if bid[0] >= price and bid[1] == qty:
            bids.pop(i)
            log_fill(bid[0], qty)
            return True
        i = i + 1
    return False

def place_bid(price, qty):
    order = []
    order.append(price)
    order.append(qty)
    bids.append(order)
    return len(bids)

def place_ask(price, qty):
    if match_ask(price, qty):
        return True
    order = []
    order.append(price)
    order.append(qty)
    asks.append(order)
    return False

def test_crossing_ask_fills():
    place_bid(101, 5)
    assert place_ask(100, 5)
    assert len(fills) == 1
    assert len(bids) == 0

def test_non_crossing_ask_rests():
    place_bid(99, 5)
    assert not place_ask(100, 5)
    assert len(asks) == 1
    assert len(bids) == 1

def test_best_bid_tracks_highest():
    place_bid(98, 1)
    place_bid(103, 1)
    place_bid(100, 1)
    assert best_bid() == 103

def test_fill_records_bid_price():
    place_bid(105, 2)
    place_ask(104, 2)
    assert fills[0][0] == 105
    assert fills[0][1] == 2
