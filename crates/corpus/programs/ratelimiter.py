rate = 2
burst = 4
state = {}
state["tokens"] = 4
state["last"] = 0.0

def refill():
    t = now()
    elapsed = t - state["last"]
    state["last"] = t
    tokens = state["tokens"] + elapsed * rate
    if tokens > burst:
        tokens = burst
    state["tokens"] = tokens
    return tokens

def allow():
    refill()
    if state["tokens"] >= 1:
        state["tokens"] = state["tokens"] - 1
        return True
    return False

def drain():
    n = 0
    while allow():
        n = n + 1
    return n

def test_burst_then_deny():
    n = 0
    for i in range(6):
        if allow():
            n = n + 1
    assert n == 4

def test_refill_after_wait():
    drain()
    assert not allow()
    sleep(1)
    assert allow()

def test_tokens_capped_at_burst():
    sleep(100)
    assert refill() == 4

def test_drain_empties_bucket():
    assert drain() == 4
    assert not allow()
