inventory = {}
inventory["widget"] = 10
inventory["gadget"] = 4
audit = []

def validate_order(details):
    qty = details.get("qty", 0)
    item = details.get("item", "")
    if qty <= 0:
        raise ValueError("quantity must be positive")
    if item not in inventory:
        raise KeyError("unknown item")
    return qty

def reserve_stock(item, qty):
    left = inventory[item]
    if left < qty:
        raise ValueError("insufficient stock")
    inventory[item] = left - qty
    return left - qty

def charge_payment(details, qty):
    price = details.get("price", 5)
    total = price * qty
    audit.append(total)
    return total

def process_transaction(details):
    qty = validate_order(details)
    reserve_stock(details["item"], qty)
    total = charge_payment(details, qty)
    return total

def test_process_ok():
    d = {}
    d["item"] = "widget"
    d["qty"] = 2
    d["price"] = 7
    assert process_transaction(d) == 14
    assert inventory["widget"] == 8

def test_validate_rejects_bad_qty():
    d = {}
    d["item"] = "widget"
    d["qty"] = 0
    ok = False
    try:
        process_transaction(d)
    except ValueError as e:
        ok = True
    assert ok

def test_unknown_item_raises():
    d = {}
    d["item"] = "nope"
    d["qty"] = 1
    ok = False
    try:
        process_transaction(d)
    except KeyError as e:
        ok = True
    assert ok

def test_audit_records_totals():
    d = {}
    d["item"] = "gadget"
    d["qty"] = 1
    d["price"] = 3
    process_transaction(d)
    assert len(audit) == 1
    assert audit[0] == 3
