stock = {}
stock["bolt"] = 50
stock["nut"] = 30
reservations = []

def available(item):
    return stock.get(item, 0)

def log_reservation(item, qty):
    entry = []
    entry.append(item)
    entry.append(qty)
    reservations.append(entry)

def reserve(item, qty):
    have = available(item)
    if qty <= 0:
        raise ValueError("bad quantity")
    if have < qty:
        raise ValueError("not enough stock")
    stock[item] = have - qty
    log_reservation(item, qty)
    return have - qty

def release(item, qty):
    stock[item] = stock.get(item, 0) + qty
    return stock[item]

def test_reserve_decrements():
    assert reserve("bolt", 10) == 40
    assert len(reservations) == 1

def test_release_restores():
    reserve("nut", 5)
    assert release("nut", 5) == 30

def test_overdraw_rejected():
    ok = False
    try:
        reserve("bolt", 100)
    except ValueError as e:
        ok = True
    assert ok
    assert stock["bolt"] == 50

def test_zero_quantity_rejected():
    ok = False
    try:
        reserve("nut", 0)
    except ValueError as e:
        ok = True
    assert ok
