index = {}
docs = []

def tokenize(text):
    return text.split(" ")

def add_doc(text):
    doc_id = len(docs)
    docs.append(text)
    for w in tokenize(text):
        postings = index.setdefault(w, [])
        if doc_id not in postings:
            postings.append(doc_id)
    return doc_id

def lookup(word):
    return index.get(word, [])

def search_and(a, b):
    hits = []
    for d in lookup(a):
        if d in lookup(b):
            hits.append(d)
    return hits

def test_add_and_lookup():
    assert add_doc("rust is fast") == 0
    assert len(lookup("rust")) == 1
    assert len(lookup("absent")) == 0

def test_and_query_intersects():
    add_doc("parallel fault injection")
    add_doc("fault model coverage")
    add_doc("parallel coverage tools")
    hits = search_and("fault", "parallel")
    assert len(hits) == 1
    assert hits[0] == 0

def test_duplicate_words_index_once():
    d = add_doc("echo echo echo")
    postings = lookup("echo")
    assert len(postings) == 1
    assert postings[0] == d

def test_tokenize_splits_words():
    assert len(tokenize("a b c")) == 3
