def open_store(name):
    return open_handle(name)

def put(h, key, value):
    h.write(key)
    h.write(value)
    return h

def entry_count(h):
    data = h.read_all()
    return len(data) // 2

def close_store(h):
    if not h.is_closed():
        h.close()
    return True

def save_all(name, entries):
    h = open_store(name)
    n = 0
    for e in entries:
        put(h, n, e)
        n = n + 1
    close_store(h)
    return n

def test_save_all_closes():
    assert save_all("db", [5, 6, 7]) == 3

def test_put_then_count():
    h = open_store("tmp")
    put(h, 1, 10)
    put(h, 2, 20)
    assert entry_count(h) == 2
    close_store(h)

def test_double_close_is_safe():
    h = open_store("x")
    close_store(h)
    assert close_store(h)
    assert h.is_closed()

def test_write_to_closed_raises():
    h = open_store("y")
    close_store(h)
    ok = False
    try:
        h.write(1)
    except IOError as e:
        ok = True
    assert ok
