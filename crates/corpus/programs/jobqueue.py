m = lock()
pending = []
done = []

def enqueue(job):
    m.acquire()
    pending.append(job)
    m.release()
    return len(pending)

def take():
    m.acquire()
    if len(pending) == 0:
        m.release()
        return -1
    job = pending.pop(0)
    m.release()
    return job

def process(job):
    return job * 2

def worker():
    while True:
        job = take()
        if job == -1:
            break
        result = process(job)
        m.acquire()
        done.append(result)
        m.release()

def test_workers_drain_queue():
    for i in range(6):
        enqueue(i + 1)
    t1 = spawn(worker)
    t2 = spawn(worker)
    join(t1)
    join(t2)
    assert len(done) == 6
    assert len(pending) == 0

def test_take_on_empty_returns_sentinel():
    assert take() == -1

def test_process_doubles():
    assert process(21) == 42

def test_enqueue_reports_depth():
    assert enqueue(7) == 1
    assert enqueue(9) == 2
