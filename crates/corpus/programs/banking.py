m = lock()
balances = {}
balances["alice"] = 100
balances["bob"] = 100
trail = []

def record(amount):
    trail.append(amount)

def deposit(account, amount):
    m.acquire()
    balances[account] = balances[account] + amount
    record(amount)
    m.release()

def withdraw(account, amount):
    m.acquire()
    have = balances[account]
    if have < amount:
        m.release()
        raise ValueError("insufficient funds")
    balances[account] = have - amount
    record(0 - amount)
    m.release()

def transfer(src, dst, amount):
    withdraw(src, amount)
    deposit(dst, amount)

def shuttle(rounds):
    for i in range(rounds):
        transfer("alice", "bob", 1)
        transfer("bob", "alice", 1)

def test_concurrent_transfers_preserve_total():
    t1 = spawn(shuttle, 5)
    t2 = spawn(shuttle, 5)
    join(t1)
    join(t2)
    assert balances["alice"] + balances["bob"] == 200

def test_withdraw_guards_balance():
    ok = False
    try:
        withdraw("alice", 1000)
    except ValueError as e:
        ok = True
    assert ok
    assert balances["alice"] == 100

def test_deposit_updates_balance():
    deposit("bob", 25)
    assert balances["bob"] == 125
    assert len(trail) == 1

def test_transfer_moves_funds():
    transfer("alice", "bob", 40)
    assert balances["alice"] == 60
    assert balances["bob"] == 140
