ttl = 10
sessions = {}

def put_session(sid, user):
    entry = []
    entry.append(user)
    entry.append(now() + ttl)
    sessions[sid] = entry

def get_session(sid):
    entry = sessions.get(sid, None)
    if entry == None:
        return ""
    if now() > entry[1]:
        return ""
    return entry[0]

def session_count():
    n = 0
    for sid in sessions.keys():
        if get_session(sid) != "":
            n = n + 1
    return n

def evict_expired():
    removed = 0
    for sid in sessions.keys():
        if get_session(sid) == "":
            sessions.pop(sid)
            removed = removed + 1
    return removed

def test_put_get():
    put_session("s1", "alice")
    assert get_session("s1") == "alice"

def test_expiry():
    put_session("s2", "bob")
    sleep(11)
    assert get_session("s2") == ""

def test_count_skips_expired():
    put_session("a", "u1")
    sleep(11)
    put_session("b", "u2")
    assert session_count() == 1

def test_evict_removes_expired():
    put_session("a", "u1")
    sleep(11)
    assert evict_expired() == 1
    assert len(sessions) == 0

def test_missing_session_empty():
    assert get_session("nope") == ""
