capacity = 3
store = {}
order = []
stats = {}
stats["hits"] = 0
stats["misses"] = 0

def touch(key):
    if key in order:
        order.remove(key)
    order.append(key)

def evict_oldest():
    if len(order) > capacity:
        oldest = order.pop(0)
        store.pop(oldest)
        return oldest
    return ""

def put(key, value):
    store[key] = value
    touch(key)
    evict_oldest()
    return len(store)

def get(key):
    if key in store:
        stats["hits"] = stats["hits"] + 1
        touch(key)
        return store[key]
    stats["misses"] = stats["misses"] + 1
    return -1

def hit_rate():
    total = stats["hits"] + stats["misses"]
    if total == 0:
        return 0
    return stats["hits"] / total

def test_put_then_get():
    put("a", 1)
    assert get("a") == 1
    assert stats["hits"] == 1

def test_lru_evicts_oldest():
    put("a", 1)
    put("b", 2)
    put("c", 3)
    get("a")
    put("d", 4)
    assert get("b") == -1
    assert get("a") == 1

def test_miss_counts():
    assert get("ghost") == -1
    assert stats["misses"] == 1

def test_hit_rate_tracks():
    put("x", 9)
    get("x")
    get("nope")
    assert hit_rate() == 0.5
